"""Named program families: what the server can be asked to simulate.

A simulation request names a *program family* plus canonical arguments;
the registry turns that name into the ``programs(rank, P) -> generator``
factory the machine and the compiled backend both consume.  Names exist
so that (a) requests are serializable — a wire client cannot ship a
Python generator function — and (b) results are cacheable: the cache
key's *program fingerprint* (:func:`fingerprint`) hashes the family
name, its canonicalized arguments, and the family builder's source
code (the seed is a separate cache-key field), so a cached entry can
never be served across a code change that would alter results.

Families are module-level callables built from picklable program
objects, so the server's process-pool shards can rebuild them by name
on the worker side (:func:`build`).  Registering a family is one
decorator::

    @register("my_family")
    def _build_my_family(args: dict, seed: int | None):
        '''One-line description used by the stats endpoint.'''
        return MyProgram(**args)   # picklable (rank, P) -> generator

Builders must validate their arguments loudly and derive any randomness
from ``seed`` alone — the scheduler's no-shared-randomness contract
(:mod:`repro.sim.sweep`) is what makes served results bit-identical to
a serial loop.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Callable

__all__ = [
    "build",
    "families",
    "fingerprint",
    "get_family",
    "register",
]

#: name -> builder ``(args: dict, seed: int | None) -> programs``.
_REGISTRY: dict[str, Callable] = {}


def register(name: str):
    """Class/function decorator adding a family builder under ``name``."""

    def _add(builder):
        if name in _REGISTRY:
            raise ValueError(f"program family {name!r} already registered")
        _REGISTRY[name] = builder
        return builder

    return _add


def get_family(name: str) -> Callable:
    """Look up a family builder; unknown names refuse loudly."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown program family {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def families() -> dict[str, str]:
    """Registered family names with their one-line descriptions."""
    return {
        name: (inspect.getdoc(b) or "").splitlines()[0]
        if inspect.getdoc(b)
        else ""
        for name, b in sorted(_REGISTRY.items())
    }


def canonical_args(args: dict | None) -> tuple:
    """Canonicalize request arguments into a hashable, ordered form."""
    if not args:
        return ()
    try:
        return tuple(sorted(args.items()))
    except TypeError as exc:
        raise TypeError(f"program args must be sortable scalars: {exc}")


def build(name: str, args: dict | None, seed: int | None):
    """Instantiate the family: ``programs(rank, P)`` ready for any backend."""
    return get_family(name)(dict(args or {}), seed)


def fingerprint(name: str, args: dict | None) -> str:
    """The cache key's program component: name + args + builder source.

    The seed and backend are *separate* cache-key fields
    (:class:`repro.serve.cache.CacheKey`), *not* folded in here — the
    fingerprint identifies the program family text.  Hashing the
    builder's source means a code change that could alter simulated
    results also changes every affected cache key — stale entries
    become unreachable instead of silently wrong.
    """
    builder = get_family(name)
    try:
        src = inspect.getsource(builder)
    except (OSError, TypeError):  # builtins / REPL registration
        src = repr(builder)
    payload = json.dumps(
        {
            "family": name,
            "args": canonical_args(args),
            "source": hashlib.sha256(src.encode()).hexdigest(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


# ----------------------------------------------------------------------
# Built-in families.  Program objects are picklable classes so a
# process-pool shard can rebuild and run them worker-side.
# ----------------------------------------------------------------------


class _StreamProgram:
    """Rank 0 streams ``k`` messages to rank P-1; everyone else relays."""

    def __init__(self, k: int):
        self.k = k

    def __call__(self, rank: int, P: int):
        from ..sim import Recv, Send

        k = self.k
        if P == 1:
            return iter(())

        def prog():
            if rank == 0:
                for i in range(k):
                    yield Send(1, payload=i)
                return
            for _ in range(k):
                m = yield Recv()
                if rank < P - 1:
                    yield Send(rank + 1, payload=m.payload)

        return prog()


class _FloodProgram:
    """Every rank sends ``k`` messages to rank 0 (capacity-stall regime)."""

    def __init__(self, k: int):
        self.k = k

    def __call__(self, rank: int, P: int):
        from ..sim import Recv, Send

        k = self.k

        def prog():
            if rank == 0:
                for _ in range(k * (P - 1)):
                    yield Recv()
                return
            for _ in range(k):
                yield Send(0)

        return prog()


class _BcastTreeProgram:
    """Pipelined optimal-tree broadcast of ``k`` items, any ``P``.

    The tree shape is the optimal single-item broadcast tree for the
    paper's base parameters at each ``P`` (cached per instance), so one
    program object serves a grid whose ``P`` varies.
    """

    def __init__(self, k: int):
        self.k = k
        self._trees: dict[int, list[list[int]]] = {}

    def __call__(self, rank: int, P: int):
        from ..algorithms.broadcast import (
            optimal_broadcast_tree,
            pipelined_broadcast_program,
        )
        from ..core import LogPParams

        children = self._trees.get(P)
        if children is None:
            children = optimal_broadcast_tree(
                LogPParams(L=6, o=2, g=4, P=P)
            ).children
            self._trees[P] = children
        return pipelined_broadcast_program(children, range(self.k))(rank, P)


def _int_arg(args: dict, key: str, default: int, minimum: int = 1) -> int:
    val = args.pop(key, default)
    if not isinstance(val, int) or isinstance(val, bool) or val < minimum:
        raise ValueError(f"{key} must be an int >= {minimum}, got {val!r}")
    return val


def _no_extras(name: str, args: dict) -> None:
    if args:
        raise ValueError(
            f"program family {name!r} got unknown args {sorted(args)}"
        )


@register("stream")
def _build_stream(args: dict, seed: int | None):
    """Pipelined point-to-point relay stream of k messages (Section 4.1)."""
    k = _int_arg(args, "k", 16)
    _no_extras("stream", args)
    return _StreamProgram(k)


@register("flood")
def _build_flood(args: dict, seed: int | None):
    """Many-to-one flood of k messages per sender (Section 4.1.2 stalls)."""
    k = _int_arg(args, "k", 8)
    _no_extras("flood", args)
    return _FloodProgram(k)


@register("bcast_tree")
def _build_bcast_tree(args: dict, seed: int | None):
    """Pipelined optimal-tree broadcast of k items (Section 3.1 tree)."""
    k = _int_arg(args, "k", 16)
    _no_extras("bcast_tree", args)
    return _BcastTreeProgram(k)
