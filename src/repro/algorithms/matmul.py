"""Distributed matrix multiplication under LogP (Section 6.6 names it
among the algorithms whose communication reduces to a small primitive
set once data is laid out per processor).

Implements **SUMMA** (scalable universal matrix multiply): with C = A@B
block-distributed over a sqrt(P) x sqrt(P) grid, each panel step
broadcasts a column panel of A along processor rows and a row panel of
B along processor columns, then every processor accumulates a local
outer product.  The panels travel as *long messages* (the Section 5.4 /
LogGP extension), so this algorithm also exercises the bulk-transfer
machinery; real numerics are verified against numpy.

The panel width ``b`` is the classic communication/computation knob (the
paper's footnote 9 on blocked decompositions): larger panels amortize
``o`` and ``L`` over more words; the analytic model shows the tradeoff
and :func:`best_panel_width` picks the knee.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.params import LogPParams
from ..sim.machine import LogPMachine, MachineResult

__all__ = [
    "summa_program",
    "run_summa",
    "summa_time",
    "best_panel_width",
]


def _grid(P: int) -> int:
    root = math.isqrt(P)
    if root * root != P:
        raise ValueError(f"SUMMA needs a square processor count, got {P}")
    return root


def summa_time(
    p: LogPParams, n: int, b: int, flop_cost: float = 1.0
) -> float:
    """Predicted SUMMA time in cycles for an ``n x n`` multiply with
    panel width ``b`` on a sqrt(P) x sqrt(P) grid.

    Per step (there are ``n/b``): two binomial broadcasts of an
    ``(n/sqrt(P)) * b``-word panel over ``sqrt(P)`` processors — depth
    ``ceil(log2 sqrt(P))`` long-message hops of ``o + (k-1)G + L + o``
    — plus the local rank-b update ``2 b (n/sqrt(P))**2`` flops.
    """
    root = _grid(p.P)
    if n % root or (n // root) % 1:
        raise ValueError(f"n={n} must be divisible by sqrt(P)={root}")
    if b < 1 or (n // root) % b:
        raise ValueError(f"panel width {b} must divide the block {n // root}")
    G = getattr(p, "G", p.g)
    k = (n // root) * b  # panel words
    hop = p.o + (k - 1) * G + p.L + p.o
    depth = math.ceil(math.log2(root)) if root > 1 else 0
    steps = n // b
    per_step = 2 * depth * hop + flop_cost * 2 * b * (n // root) ** 2
    return steps * per_step


def best_panel_width(p: LogPParams, n: int, flop_cost: float = 1.0) -> int:
    """The panel width minimizing :func:`summa_time` (among divisors of
    the local block side)."""
    root = _grid(p.P)
    block = n // root
    candidates = [b for b in range(1, block + 1) if block % b == 0]
    return min(candidates, key=lambda b: summa_time(p, n, b, flop_cost))


def summa_program(
    A: np.ndarray, B: np.ndarray, b: int, flop_cost: float = 1.0
):
    """Program factory: SUMMA with real blocks on the simulator.

    Rank ``r`` is grid position ``(r // root, r % root)`` and owns the
    corresponding blocks of A, B and C.  Each program returns its C
    block; assemble with :func:`run_summa`.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("A and B must be square and equally sized")

    def factory(rank: int, P: int):
        from ..sim.collectives import group_broadcast
        from ..sim.program import Compute

        root = _grid(P)
        block = n // root
        if block % b:
            raise ValueError(f"panel width {b} must divide block {block}")
        row, col = rank // root, rank % root

        def run():
            rows = slice(row * block, (row + 1) * block)
            cols = slice(col * block, (col + 1) * block)
            myA = A[rows, cols].copy()
            myB = B[rows, cols].copy()
            myC = np.zeros((block, block))
            row_members = [row * root + c for c in range(root)]
            col_members = [r * root + col for r in range(root)]
            steps = n // b
            for s in range(steps):
                owner = (s * b) // block  # grid column/row holding panel s
                within = (s * b) % block
                # Panel of A: columns s*b .. s*b+b of my block-row.
                a_panel = (
                    myA[:, within : within + b].copy()
                    if col == owner
                    else None
                )
                a_panel = yield from group_broadcast(
                    rank,
                    row_members,
                    a_panel,
                    root=row * root + owner,
                    tag=("A", s),
                    words=block * b,
                )
                b_panel = (
                    myB[within : within + b, :].copy()
                    if row == owner
                    else None
                )
                b_panel = yield from group_broadcast(
                    rank,
                    col_members,
                    b_panel,
                    root=owner * root + col,
                    tag=("B", s),
                    words=block * b,
                )
                myC += a_panel @ b_panel
                yield Compute(
                    flop_cost * 2 * b * block * block, label=f"update-{s}"
                )
            return (row, col, myC)

        return run()

    return factory


def run_summa(
    params: LogPParams,
    A: np.ndarray,
    B: np.ndarray,
    b: int | None = None,
    flop_cost: float = 1.0,
    **machine_kwargs,
) -> tuple[np.ndarray, MachineResult]:
    """Run SUMMA on the simulator; returns ``(C, machine_result)`` with
    ``C == A @ B`` to machine precision.

    Long-message panels need a machine with a bulk gap: pass
    :class:`~repro.core.loggp.LogGPParams` (or panels of width such that
    ``block*b == 1``).
    """
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    root = _grid(params.P)
    if b is None:
        b = best_panel_width(params, n, flop_cost)
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(summa_program(A, B, b, flop_cost))
    block = n // root
    C = np.empty((n, n))
    for rank in range(params.P):
        row, col, blockC = res.value(rank)
        C[row * block : (row + 1) * block, col * block : (col + 1) * block] = blockC
    return C, res
