"""Connected components under LogP (Section 4.2.3).

The paper's point: efficient PRAM connectivity algorithms funnel
"pointer-jumping" queries at the processors owning component
representatives — "this leads to high contention, which the CRCW PRAM
ignores, but LogP makes apparent" — and careful implementation
("request combining", batching duplicate queries) considerably mitigates
it.

We implement a distributed hook-and-jump algorithm (the
Shiloach-Vishkin/Awerbuch-Shiloach family the paper's reference [31]
adapts) over a block-distributed vertex set:

* each processor owns ``parent[v]`` for its vertex block and the edges
  incident to it;
* each round: (1) look up the parents of all edge endpoints, (2) *hook*
  — for every edge joining different trees, request that the larger
  root adopt the smaller (owners arbitrate concurrent requests by
  minimum, a deterministic CRCW-arbitrary stand-in), (3) *jump* —
  ``parent[v] = parent[parent[v]]``, (4) globally OR the change flag;
* **naive** variant: one query message per lookup, duplicates included —
  the owners of surviving roots become hot spots;
* **combining** variant: each processor deduplicates the targets it
  queries each round and reuses each answer locally — per-round traffic
  to a root's owner drops from O(edges touching the component) to at
  most one message per (processor, root) pair.

Both variants run with real graphs on the simulator and are validated
against ``networkx.connected_components``; the benchmark compares their
receive-load histograms (hot-spot factor) and makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.params import LogPParams
from ..sim.machine import LogPMachine, MachineResult

__all__ = [
    "CCOutcome",
    "cc_program",
    "run_connected_components",
    "labels_to_sets",
    "hotspot_factor",
]


@dataclass(frozen=True, slots=True)
class CCOutcome:
    """Result of a simulated connected-components run."""

    labels: np.ndarray  # labels[v] = representative vertex of v's component
    rounds: int
    makespan: float
    machine: MachineResult
    receive_load: np.ndarray  # messages received per processor
    queries_by_round: list[np.ndarray]  # per-round lookup queries per dst

    @property
    def components(self) -> int:
        return len(np.unique(self.labels))

    def query_concentration(self) -> list[float]:
        """Per round, the fraction of lookup queries aimed at the single
        busiest processor — the paper's contention-growth signature."""
        out = []
        for counts in self.queries_by_round:
            total = counts.sum()
            out.append(float(counts.max() / total) if total else 0.0)
        return out


def labels_to_sets(labels: np.ndarray) -> list[frozenset[int]]:
    """Group vertices by component label (for comparison with networkx)."""
    groups: dict[int, set[int]] = {}
    for v, root in enumerate(labels):
        groups.setdefault(int(root), set()).add(v)
    return sorted(
        (frozenset(s) for s in groups.values()), key=lambda s: min(s)
    )


def hotspot_factor(receive_load: np.ndarray) -> float:
    """Max over mean messages received — 1.0 is perfectly balanced."""
    mean = receive_load.mean()
    return float(receive_load.max() / mean) if mean > 0 else 1.0


def _owner(v: int, n: int, P: int) -> int:
    """Block distribution: vertex v lives on processor v // ceil(n/P)."""
    chunk = -(-n // P)
    return min(v // chunk, P - 1)


def cc_program(
    n_vertices: int,
    edges: list[tuple[int, int]],
    combining: bool = True,
    lookup_cost: float = 1.0,
):
    """Program factory for distributed hook-and-jump components.

    Args:
        n_vertices: number of vertices (numbered 0..n-1).
        edges: undirected edge list; each edge is handled by the owner of
            its lower-numbered endpoint.
        combining: deduplicate per-round queries per processor (the
            contention mitigation); ``False`` sends one message per raw
            lookup.
        lookup_cost: cycles charged per local parent-table access.
    """

    def factory(rank: int, P: int):
        from ..sim.collectives import all_reduce, exchange
        from ..sim.program import Compute

        chunk = -(-n_vertices // P)
        lo = rank * chunk
        hi = min(n_vertices, lo + chunk)
        my_edges = [
            (u, v) for (u, v) in edges if _owner(min(u, v), n_vertices, P) == rank
        ]

        def lookup_round(targets: list[int], round_id, phase: str):
            """Resolve parent[t] for every t in ``targets`` (with
            duplicates as given); returns dict target -> parent."""
            if combining:
                ask = sorted(set(targets))
            else:
                ask = list(targets)
            outgoing: dict[int, list[int]] = {}
            local: dict[int, int] = {}
            for t in ask:
                w = _owner(t, n_vertices, P)
                if w == rank:
                    local[t] = parent[t - lo]
                else:
                    outgoing.setdefault(w, []).append(t)
            if sent_per_round and phase == "jump":
                # The statistic the paper calls out is specifically the
                # pointer-jumping traffic, which funnels toward the
                # owners of surviving roots as components merge.
                counts = sent_per_round[-1]
                for w, ts in outgoing.items():
                    counts[w] = counts.get(w, 0) + len(ts)
            if local:
                yield Compute(lookup_cost * len(local), label="local-lookup")
            # Queries out / in.
            qs = yield from exchange(
                rank, P, outgoing, tag=("q", phase, round_id)
            )
            if qs:
                yield Compute(lookup_cost * len(qs), label="serve-lookup")
            replies: dict[int, list[tuple[int, int]]] = {}
            for src, t in qs:
                replies.setdefault(src, []).append((t, parent[t - lo]))
            ans = yield from exchange(
                rank, P, replies, tag=("a", phase, round_id)
            )
            table = dict(local)
            for _, (t, pt) in ans:
                table[t] = pt
            return table

        def run():
            changed = True
            rounds = 0
            while True:
                flag = yield from all_reduce(
                    rank, P, 1 if changed else 0, max, tag=("go", rounds)
                )
                if not flag:
                    break
                changed = False
                rounds += 1
                sent_per_round.append({})

                # 1) look up parents of all edge endpoints.
                endpoints = [u for e in my_edges for u in e]
                ptab = yield from lookup_round(endpoints, rounds, "ep")

                # 2) hook: for each cross-tree edge, ask the larger
                #    parent's owner to point it at the smaller parent.
                hook_req: dict[int, list[tuple[int, int]]] = {}
                local_hooks: list[tuple[int, int]] = []
                for u, v in my_edges:
                    pu, pv = ptab[u], ptab[v]
                    if pu == pv:
                        continue
                    hi_p, lo_p = max(pu, pv), min(pu, pv)
                    w = _owner(hi_p, n_vertices, P)
                    if w == rank:
                        local_hooks.append((hi_p, lo_p))
                    else:
                        hook_req.setdefault(w, []).append((hi_p, lo_p))
                incoming = yield from exchange(
                    rank, P, hook_req, tag=("hook", rounds)
                )
                all_hooks = local_hooks + [hv for _, hv in incoming]
                if all_hooks:
                    yield Compute(lookup_cost * len(all_hooks), label="hook")
                best: dict[int, int] = {}
                for tgt, new in all_hooks:
                    # Only roots may be re-pointed (avoids cycles), and
                    # concurrent requests arbitrate by minimum.
                    if parent[tgt - lo] == tgt:
                        cur = best.get(tgt, tgt)
                        best[tgt] = min(cur, new)
                for tgt, new in best.items():
                    if new < parent[tgt - lo]:
                        parent[tgt - lo] = new
                        changed = True

                # 3) pointer jumping: parent[v] = parent[parent[v]].
                targets = [int(parent[i]) for i in range(hi - lo)]
                jtab = yield from lookup_round(targets, rounds, "jump")
                for i in range(hi - lo):
                    gp = jtab[int(parent[i])]
                    if gp != parent[i]:
                        parent[i] = gp
                        changed = True
                if hi > lo:
                    yield Compute(lookup_cost * (hi - lo), label="jump")

                if rounds > 4 * n_vertices + 8:
                    raise RuntimeError("components failed to converge")
            return (lo, np.array(parent, dtype=np.int64), rounds, sent_per_round)

        parent = list(range(lo, hi))
        # Per-round count of lookup queries this rank sent, by
        # destination — the contention-growth statistic ("the target of
        # increasing numbers of pointer-jumping queries as the algorithm
        # progresses").  Shared between run() and lookup_round().
        sent_per_round: list[dict[int, int]] = []
        return run()

    return factory


def run_connected_components(
    params: LogPParams,
    n_vertices: int,
    edges: list[tuple[int, int]],
    combining: bool = True,
    **machine_kwargs,
) -> CCOutcome:
    """Run distributed components on the simulator and assemble labels.

    The returned labels map every vertex to its component's minimum
    vertex (so they are directly comparable across variants and against
    networkx).
    """
    for u, v in edges:
        if not (0 <= u < n_vertices and 0 <= v < n_vertices):
            raise ValueError(f"edge ({u}, {v}) out of range")
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(cc_program(n_vertices, edges, combining))
    labels = np.empty(n_vertices, dtype=np.int64)
    rounds = 0
    per_rank_sent = []
    for rank in range(params.P):
        lo, part, r_rounds, sent = res.value(rank)
        labels[lo : lo + len(part)] = part
        rounds = max(rounds, r_rounds)
        per_rank_sent.append(sent)
    receive_load = np.zeros(params.P, dtype=np.int64)
    for r in res.results:
        receive_load[r.rank] = r.receives
    queries_by_round = []
    for rnd in range(rounds):
        counts = np.zeros(params.P, dtype=np.int64)
        for sent in per_rank_sent:
            if rnd < len(sent):
                for dst, k in sent[rnd].items():
                    counts[dst] += k
        queries_by_round.append(counts)
    return CCOutcome(
        labels=labels,
        rounds=rounds,
        makespan=res.makespan,
        machine=res,
        receive_load=receive_load,
        queries_by_round=queries_by_round,
    )
