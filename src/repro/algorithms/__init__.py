"""The paper's algorithm suite (Sections 3.3 and 4).

* :mod:`repro.algorithms.broadcast` — optimal single-item broadcast
  (Figure 3) plus linear/flat/binomial baselines;
* :mod:`repro.algorithms.summation` — optimal summation with the
  unequal input distribution (Figure 4);
* :mod:`repro.algorithms.fft` — the hybrid-layout FFT, remap schedules,
  and the remap-phase simulations behind Figures 5, 6 and 8;
* :mod:`repro.algorithms.lu` — LU decomposition layouts (Section 4.2.1);
* :mod:`repro.algorithms.sort` — splitter and bitonic sort (4.2.2);
* :mod:`repro.algorithms.components` — connected components with the
  contention study (4.2.3);
* :mod:`repro.algorithms.matmul` — SUMMA matrix multiply with
  long-message panels (Section 6.6's list);
* :mod:`repro.algorithms.stencil` — 1-D/2-D Jacobi stencils and the
  surface-to-volume argument (Section 6.4).
"""

from . import broadcast, components, fft, lu, matmul, sort, stencil, summation

__all__ = [
    "broadcast",
    "summation",
    "fft",
    "lu",
    "sort",
    "components",
    "matmul",
    "stencil",
]
