"""Stencil computations and the surface-to-volume argument (Section 6.4).

"Wherever problems have a local, regular communication pattern, such as
stencil calculation on a grid, it is easy to lay the data out so that
only a diminishing fraction of the communication is external to the
processor.  Basically, the interprocessor communication diminishes like
the surface to volume ratio and with large enough problem sizes, the
cost of communication becomes trivial."

Implemented here:

* a 1-D Jacobi relaxation on a ring of processors (one halo cell per
  neighbour per iteration);
* a 2-D five-point Jacobi on a sqrt(P) x sqrt(P) processor grid with
  halo rows/columns sent as long messages (LogGP machines) or element
  streams (plain LogP);
* closed-form per-iteration costs and the surface-to-volume
  communication share, which the benchmark sweeps against block size.

Real values flow through the halos; results are verified against serial
reference relaxations.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.params import LogPParams
from ..sim.machine import LogPMachine, MachineResult

__all__ = [
    "stencil1d_iteration_time",
    "stencil2d_iteration_time",
    "communication_share",
    "run_stencil1d",
    "run_stencil2d",
    "reference_stencil1d",
    "reference_stencil2d",
]

_W_CENTER = 0.5
_W_SIDE = 0.125  # 2D five-point: center 1/2, four neighbours 1/8
_W_SIDE_1D = 0.25  # 1D: center 1/2, two neighbours 1/4


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------


def stencil1d_iteration_time(
    p: LogPParams, cells_per_proc: int, flop_cost: float = 1.0
) -> float:
    """Per-iteration cost of the 1-D ring stencil: two halo messages
    (sent back to back) + the relaxation of the local block."""
    if cells_per_proc < 1:
        raise ValueError("cells_per_proc must be >= 1")
    halo = 2 * p.o + max(p.g, p.o) + p.L + 2 * p.o  # 2 sends, 2 recvs
    return halo + flop_cost * cells_per_proc


def stencil2d_iteration_time(
    p: LogPParams, block_side: int, flop_cost: float = 1.0, G: float | None = None
) -> float:
    """Per-iteration cost of the 2-D five-point stencil on a processor
    grid: four halo edges of ``block_side`` words + the local update.

    With a bulk gap ``G`` each edge is one long message
    (``o + (b-1)G + L + o``); otherwise each halo cell is a small
    message paced at ``max(g, o)``.
    """
    if block_side < 1:
        raise ValueError("block_side must be >= 1")
    b = block_side
    if G is not None:
        # Four bulk edges: o of setup + o of reception each, with the
        # longest stream tail and one flight paid once (edges overlap).
        halo = 4 * 2 * p.o + (b - 1) * G + p.L
    else:
        # Element streams: 4b messages paced at max(g, o).
        halo = 4 * b * max(p.g, p.o) + p.L + 2 * p.o
    return halo + flop_cost * b * b


def communication_share(
    p: LogPParams, block_side: int, flop_cost: float = 1.0, G: float | None = None
) -> float:
    """Fraction of a 2-D stencil iteration spent on halo exchange —
    the surface-to-volume ratio in time units, ~ 1/block_side."""
    total = stencil2d_iteration_time(p, block_side, flop_cost, G)
    compute = flop_cost * block_side * block_side
    return (total - compute) / total


# ----------------------------------------------------------------------
# Reference kernels
# ----------------------------------------------------------------------


def reference_stencil1d(values: np.ndarray, iterations: int) -> np.ndarray:
    """Serial 1-D periodic Jacobi: u <- w_c*u + w_s*(left + right)."""
    u = np.array(values, dtype=float)
    for _ in range(iterations):
        u = _W_CENTER * u + _W_SIDE_1D * (np.roll(u, 1) + np.roll(u, -1))
    return u


def reference_stencil2d(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Serial 2-D periodic five-point Jacobi."""
    u = np.array(grid, dtype=float)
    for _ in range(iterations):
        u = _W_CENTER * u + _W_SIDE * (
            np.roll(u, 1, 0) + np.roll(u, -1, 0)
            + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        )
    return u


# ----------------------------------------------------------------------
# Simulator programs
# ----------------------------------------------------------------------


def run_stencil1d(
    params: LogPParams,
    values: np.ndarray,
    iterations: int,
    flop_cost: float = 1.0,
    **machine_kwargs,
) -> tuple[np.ndarray, MachineResult]:
    """Distributed 1-D periodic Jacobi on a ring; returns the relaxed
    array (verified against :func:`reference_stencil1d` in tests)."""
    values = np.asarray(values, dtype=float)
    P = params.P
    if len(values) % P:
        raise ValueError(f"array length {len(values)} must divide P={P}")
    chunks = values.reshape(P, -1)

    def factory(rank: int, PP: int):
        from ..sim.program import Compute, Recv, Send

        def run():
            u = chunks[rank].copy()
            left, right = (rank - 1) % PP, (rank + 1) % PP
            for it in range(iterations):
                if PP > 1:
                    yield Send(left, payload=float(u[0]), tag=("h", it, "L"))
                    yield Send(right, payload=float(u[-1]), tag=("h", it, "R"))
                    from_right = yield Recv(tag=("h", it, "L"))
                    from_left = yield Recv(tag=("h", it, "R"))
                    lpad, rpad = from_left.payload, from_right.payload
                else:
                    lpad, rpad = float(u[-1]), float(u[0])
                padded = np.concatenate([[lpad], u, [rpad]])
                u = _W_CENTER * padded[1:-1] + _W_SIDE_1D * (
                    padded[:-2] + padded[2:]
                )
                yield Compute(flop_cost * len(u), label=f"relax-{it}")
            return u

        return run()

    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(factory)
    out = np.concatenate([res.value(r) for r in range(P)])
    return out, res


def run_stencil2d(
    params: LogPParams,
    grid: np.ndarray,
    iterations: int,
    flop_cost: float = 1.0,
    **machine_kwargs,
) -> tuple[np.ndarray, MachineResult]:
    """Distributed 2-D periodic five-point Jacobi on a sqrt(P) x sqrt(P)
    processor grid.  Halo edges travel as long messages when the machine
    has a bulk gap (LogGPParams), else as element streams."""
    grid = np.asarray(grid, dtype=float)
    n = grid.shape[0]
    if grid.shape != (n, n):
        raise ValueError("grid must be square")
    root = math.isqrt(params.P)
    if root * root != params.P:
        raise ValueError(f"2-D stencil needs square P, got {params.P}")
    if n % root:
        raise ValueError(f"grid side {n} must divide sqrt(P)={root}")
    b = n // root
    bulk = getattr(params, "G", None) is not None

    def factory(rank: int, PP: int):
        from ..sim.program import Compute, Recv, Send

        r0, c0 = rank // root, rank % root

        def neighbor(dr: int, dc: int) -> int:
            return ((r0 + dr) % root) * root + (c0 + dc) % root

        def send_edge(dst, edge, tag):
            if dst == rank:
                return
                yield  # pragma: no cover
            if bulk:
                yield Send(dst, payload=edge.tolist(), tag=tag, words=len(edge))
            else:
                for i, v in enumerate(edge):
                    yield Send(dst, payload=(i, float(v)), tag=tag)

        def recv_edge(src, tag, mine):
            if src == rank:
                return mine
                yield  # pragma: no cover
            if bulk:
                msg = yield Recv(tag=tag)
                return np.asarray(msg.payload)
            out = np.empty(b)
            for _ in range(b):
                msg = yield Recv(tag=tag)
                i, v = msg.payload
                out[i] = v
            return out

        def run():
            u = grid[r0 * b : (r0 + 1) * b, c0 * b : (c0 + 1) * b].copy()
            up, down = neighbor(-1, 0), neighbor(1, 0)
            leftp, rightp = neighbor(0, -1), neighbor(0, 1)
            for it in range(iterations):
                yield from send_edge(up, u[0, :], ("n", it, "U"))
                yield from send_edge(down, u[-1, :], ("n", it, "D"))
                yield from send_edge(leftp, u[:, 0], ("n", it, "L"))
                yield from send_edge(rightp, u[:, -1], ("n", it, "R"))
                from_down = yield from recv_edge(down, ("n", it, "U"), u[0, :])
                from_up = yield from recv_edge(up, ("n", it, "D"), u[-1, :])
                from_right = yield from recv_edge(rightp, ("n", it, "L"), u[:, 0])
                from_left = yield from recv_edge(leftp, ("n", it, "R"), u[:, -1])
                padded = np.pad(u, 1)
                padded[0, 1:-1] = from_up
                padded[-1, 1:-1] = from_down
                padded[1:-1, 0] = from_left
                padded[1:-1, -1] = from_right
                u = _W_CENTER * padded[1:-1, 1:-1] + _W_SIDE * (
                    padded[:-2, 1:-1] + padded[2:, 1:-1]
                    + padded[1:-1, :-2] + padded[1:-1, 2:]
                )
                yield Compute(flop_cost * b * b, label=f"relax-{it}")
            return u

        return run()

    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(factory)
    out = np.empty((n, n))
    for rank in range(params.P):
        r0, c0 = rank // root, rank % root
        out[r0 * b : (r0 + 1) * b, c0 * b : (c0 + 1) * b] = res.value(rank)
    return out, res
