"""Optimal single-item broadcast under LogP (Section 3.3, Figure 3).

"The main idea is simple: all processors that have received the datum
transmit it as quickly as possible, while ensuring that no processor
receives more than one message."  The source injects a message every
``max(g, o)`` cycles; each message lands ``L + 2o`` after its send
starts; every recipient immediately becomes the root of a smaller
broadcast tree.  The resulting optimal tree is *unbalanced*, with
fan-out determined by the relative values of L, o and g.

This module builds that tree by greedy earliest-delivery construction
(provably optimal for single-item broadcast: the k-th earliest possible
delivery time is achieved by giving the k-th message to the sender that
can deliver soonest), renders it as an explicit
:class:`~repro.core.schedule.Schedule` for the Figure 3 Gantt panel, and
provides the baseline trees (linear chain, flat, binomial) the ablation
benchmark compares against.

For the paper's example — ``P=8, L=6, g=4, o=2`` — the tree delivers to
the last processor at time 24, with the root's children receiving at
10, 14, 18, 22 (Figure 3's node labels).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule

__all__ = [
    "BroadcastTree",
    "FoldedTree",
    "FoldedTreeClass",
    "optimal_broadcast_tree",
    "optimal_broadcast_tree_folded",
    "optimal_broadcast_time",
    "tree_delivery_times",
    "tree_delivery_times_folded",
    "linear_tree",
    "flat_tree",
    "binomial_tree",
    "binomial_tree_folded",
    "broadcast_schedule",
    "broadcast_program",
    "pipelined_tree_time",
    "pipelined_broadcast_program",
    "best_pipelined_tree",
    "ft_heartbeat_config",
    "ft_broadcast_program",
    "ft_reroute_cost",
    "ft_broadcast_bound",
]


@dataclass(slots=True)
class BroadcastTree:
    """An explicit broadcast tree with its delivery schedule.

    Attributes:
        params: the machine the tree was built for.
        root: the source processor.
        parent: ``parent[r]`` is r's parent (``None`` for the root).
        children: ``children[r]`` lists r's children in send order.
        recv_time: ``recv_time[r]`` is when r has the datum and can begin
            sending it on (0 for the root) — the node labels of Figure 3.
        send_start: ``send_start[(src, dst)]`` is when src begins the
            o-cycle injection of the message to dst.
    """

    params: LogPParams
    root: int
    parent: list[int | None]
    children: list[list[int]]
    recv_time: list[float]
    send_start: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def completion_time(self) -> float:
        """Time at which the last processor has received the datum."""
        return max(self.recv_time)

    def depth(self) -> int:
        """Longest root-to-leaf path (in messages), in one BFS pass."""
        best = 0
        depth = [0] * self.params.P
        stack = [self.root]
        while stack:
            node = stack.pop()
            d = depth[node] + 1
            for child in self.children[node]:
                depth[child] = d
                if d > best:
                    best = d
                stack.append(child)
        return best

    def fanout(self, rank: int) -> int:
        return len(self.children[rank])


def optimal_broadcast_tree(p: LogPParams, root: int = 0) -> BroadcastTree:
    """Build the optimal broadcast tree by greedy earliest delivery.

    Maintains a priority queue keyed by the earliest time an informed
    processor can *start its next send*; each pop delivers the datum to
    the next uninformed processor at ``start + L + 2o``, which then joins
    the queue itself.  Ranks are assigned in delivery order (the root's
    first child is processor ``root+1``, etc.), which reproduces the
    layout of Figure 3 up to the paper's arbitrary processor naming.
    """
    if not 0 <= root < p.P:
        raise ValueError(f"root {root} out of range for P={p.P}")
    P = p.P
    parent: list[int | None] = [None] * P
    children: list[list[int]] = [[] for _ in range(P)]
    recv_time = [0.0] * P
    send_start: dict[tuple[int, int], float] = {}
    if P == 1:
        return BroadcastTree(p, root, parent, children, recv_time, send_start)

    interval = p.send_interval
    deliver = p.L + 2 * p.o
    # Heap of (next send start, tiebreak, sender rank).
    heap: list[tuple[float, int, int]] = [(0.0, 0, root)]
    tie = 1
    # Unassigned ranks, in the order they will be named.
    pending = [r for r in range(P) if r != root]
    for new in pending:
        start, _, sender = heapq.heappop(heap)
        parent[new] = sender
        children[sender].append(new)
        recv_time[new] = start + deliver
        send_start[(sender, new)] = start
        heapq.heappush(heap, (start + interval, tie, sender))
        tie += 1
        heapq.heappush(heap, (recv_time[new], tie, new))
        tie += 1
    return BroadcastTree(p, root, parent, children, recv_time, send_start)


def optimal_broadcast_time(p: LogPParams) -> float:
    """Completion time of the optimal broadcast (24 for the Figure 3
    parameters ``P=8, L=6, g=4, o=2``)."""
    return optimal_broadcast_tree(p).completion_time


def tree_delivery_times(
    p: LogPParams, children: list[list[int]], root: int = 0
) -> list[float]:
    """Delivery times for an arbitrary explicit tree.

    ``children[r]`` is in send order; r's k-th send starts
    ``k * max(g, o)`` after r is ready, and lands ``L + 2o`` later.
    """
    P = p.P
    recv_time = [0.0] * P
    interval = p.send_interval
    deliver = p.L + 2 * p.o
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for k, child in enumerate(children[node]):
            if child in seen:
                raise ValueError(f"node {child} appears twice in the tree")
            seen.add(child)
            recv_time[child] = recv_time[node] + k * interval + deliver
            stack.append(child)
    if len(seen) != P:
        raise ValueError(
            f"tree reaches {len(seen)} of {P} processors"
        )
    return recv_time


def linear_tree(P: int, root: int = 0) -> list[list[int]]:
    """Chain: root -> next -> next ... (the worst reasonable tree)."""
    children: list[list[int]] = [[] for _ in range(P)]
    order = [root] + [r for r in range(P) if r != root]
    for a, b in zip(order, order[1:]):
        children[a].append(b)
    return children


def flat_tree(P: int, root: int = 0) -> list[list[int]]:
    """Star: the root sends to everyone itself (gap-bound)."""
    children: list[list[int]] = [[] for _ in range(P)]
    children[root] = [r for r in range(P) if r != root]
    return children


def binomial_tree(P: int, root: int = 0) -> list[list[int]]:
    """The classic parameter-oblivious binomial broadcast tree."""
    from ..sim.collectives import binomial_children

    return [binomial_children(r, P, root) for r in range(P)]


# ----------------------------------------------------------------------
# Class-compact trees: the huge-P forms (P = 2^20 without per-rank
# objects).  ``repro.sim.compiled.fold.fold_tree`` consumes these
# directly in Θ(C).
# ----------------------------------------------------------------------


@dataclass(slots=True)
class FoldedTreeClass:
    """One equivalence class of interchangeable tree ranks.

    Attributes:
        index: position in :attr:`FoldedTree.classes` (topological:
            ``parent < index``).
        size: number of member ranks.
        rep: the smallest member rank.
        depth: hops from the root (0 for the root class).
        parent: index of *a* class containing a parent of every
            member (-1 for the root class).  All candidate parents
            produce the same arrival form; members' actual parents
            may span several classes.
        parent_send: 0-based send index within ``parent`` whose
            arrival is this class's arrival (-1 for the root class).
        children: child class index per send, in send order —
            ``len(children)`` is the class fanout.
        recv_lattice: ``(a, b)`` — members receive the datum at
            ``a * max(g, o) + b * (L + 2o)``.
    """

    index: int
    size: int
    rep: int
    depth: int
    parent: int
    parent_send: int
    children: list[int]
    recv_lattice: tuple[int, int]

    @property
    def fanout(self) -> int:
        return len(self.children)


@dataclass(slots=True)
class FoldedTree:
    """A broadcast tree folded to rank equivalence classes.

    ``classes`` is topologically ordered and Θ(C); no per-rank
    structure is ever materialized.  ``classify(rank)`` maps a rank to
    its class index on demand.
    """

    P: int
    root: int
    classes: list[FoldedTreeClass]
    classify: "callable"
    source: str = "tree"
    expander: "callable | None" = None

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def expand(self) -> list[list[int]]:
        """Materialize explicit per-rank children lists — Θ(P), for
        small-P differential checks against the folded form."""
        if self.expander is None:
            raise ValueError(
                f"{self.source} FoldedTree has no expander"
            )
        return self.expander()

    def sizes(self) -> list[int]:
        return [c.size for c in self.classes]

    def depth(self) -> int:
        """Longest root-to-leaf path (in messages)."""
        return max(c.depth for c in self.classes)

    def completion_time(self, p: LogPParams) -> float:
        """Delivery time of the last class under ``p``."""
        return max(tree_delivery_times_folded(p, self))


def tree_delivery_times_folded(
    p: LogPParams, tree: FoldedTree
) -> list[float]:
    """Per-*class* delivery times (Θ(C) counterpart of
    :func:`tree_delivery_times`)."""
    interval = p.send_interval
    deliver = p.L + 2 * p.o
    return [
        a * interval + b * deliver
        for (a, b) in (c.recv_lattice for c in tree.classes)
    ]


def _min_value_subset(j: int, m: int, t: int) -> list[int]:
    """The ``j``-subset of ``{0..m-1}`` with sum ``t`` whose bit value
    ``sum(2^p)`` is minimal: greedily take the smallest feasible
    maximum position, then recurse below it."""
    out: list[int] = []
    while j:
        for h in range(j - 1, m):
            rem = t - h
            lo = (j - 1) * (j - 2) // 2
            hi = (j - 1) * (2 * h - j) // 2
            if lo <= rem <= hi:
                out.append(h)
                t, m, j = rem, h, j - 1
                break
        else:  # pragma: no cover - callers pass feasible (j, m, t)
            raise ValueError(f"infeasible subset ({j}, {m}, {t})")
    return out


def binomial_tree_folded(P: int, root: int = 0) -> FoldedTree:
    """Class-compact binomial tree for ``P`` a power of two.

    A rank's schedule is determined by ``(d, S, h)`` — the popcount,
    bit-position sum, and highest bit of its root-relative rank: its
    arrival lattice is ``(d*(k-1) - S, d)`` (each hop adding bit ``p``
    is its parent's send number ``k-1-p``) and its fanout is
    ``k-1-h``.  Classes are enumerated directly on that lattice —
    Θ(C·k) with C ≈ k⁴/12 — and sized by a distinct-subset-sum DP,
    never touching the ``P`` ranks.  The partition is exactly what
    :func:`repro.sim.compiled.fold.fold_program` discovers on the
    explicit :func:`binomial_tree` (pinned in ``tests/test_fold.py``:
    386 classes at P = 2^10, 6196 at 2^20).

    Raises ``ValueError`` for non-powers of two, where truncation
    makes fanout depend on the rank value, not its class — build
    :func:`binomial_tree` explicitly there.
    """
    if P < 1 or P & (P - 1):
        raise ValueError(
            f"binomial_tree_folded needs a power-of-two P, got {P}: "
            "truncated binomial trees are not class-compact; use "
            "binomial_tree() + fold_program()"
        )
    if not 0 <= root < P:
        raise ValueError(f"root {root} out of range for P={P}")
    k = P.bit_length() - 1
    root_cls = FoldedTreeClass(
        index=0, size=1, rep=root, depth=0, parent=-1,
        parent_send=-1, children=[], recv_lattice=(0, 0),
    )
    classes = [root_cls]
    if P == 1:
        return FoldedTree(
            P=1, root=root, classes=classes,
            classify=lambda rank: 0, source="binomial",
            expander=lambda: [[]],
        )

    # cnt[m][j][t]: j-subsets of {0..m-1} with sum t.
    max_t = k * (k - 1) // 2 + 1
    cnt = [[[0] * max_t for _ in range(k + 1)] for _ in range(k + 1)]
    for m in range(k + 1):
        cnt[m][0][0] = 1
    for m in range(1, k + 1):
        for j in range(1, k + 1):
            row, prev, take = cnt[m][j], cnt[m - 1][j], cnt[m - 1][j - 1]
            for t in range(max_t):
                row[t] = prev[t] + (take[t - m + 1] if t >= m - 1 else 0)

    index_of: dict[tuple[int, int, int], int] = {}
    # (d, h, S): d set bits, highest h, position-sum S — enumerated in
    # depth order, which is topological.
    for d in range(1, k + 1):
        for h in range(d - 1, k):
            lo = (d - 1) * (d - 2) // 2
            hi = (d - 1) * (2 * h - d) // 2
            for S in range(h + lo, h + hi + 1):
                size = cnt[h][d - 1][S - h]
                if not size:  # pragma: no cover - range is exact
                    continue
                rel = (1 << h) + sum(
                    1 << p
                    for p in _min_value_subset(d - 1, h, S - h)
                )
                if d == 1:
                    parent, psend = 0, k - 1 - h
                else:
                    low = rel ^ (1 << h)
                    h2 = low.bit_length() - 1
                    parent = index_of[(d - 1, h2, S - h)]
                    psend = k - 1 - h
                idx = len(classes)
                index_of[(d, h, S)] = idx
                classes.append(
                    FoldedTreeClass(
                        index=idx, size=size,
                        rep=(rel + root) % P, depth=d,
                        parent=parent, parent_send=psend,
                        children=[],
                        recv_lattice=(d * (k - 1) - S, d),
                    )
                )
    # i-th send of a fanout-f class adds bit k-1-i (largest subtree
    # first), producing a child of fanout i.
    for key, idx in index_of.items():
        d, h, S = key
        cls = classes[idx]
        cls.children = [
            index_of[(d + 1, k - 1 - i, S + k - 1 - i)]
            for i in range(k - 1 - h)
        ]
    root_cls.children = [
        index_of[(1, k - 1 - i, k - 1 - i)] for i in range(k)
    ]

    def classify(rank: int) -> int:
        if not 0 <= rank < P:
            raise IndexError(f"rank {rank} out of range 0..{P - 1}")
        rel = (rank - root) % P
        if rel == 0:
            return 0
        d = rel.bit_count()
        h = rel.bit_length() - 1
        S = sum(p for p in range(k) if rel >> p & 1)
        return index_of[(d, h, S)]

    return FoldedTree(
        P=P, root=root, classes=classes, classify=classify,
        source="binomial", expander=lambda: binomial_tree(P, root),
    )


class _Cohort:
    """A batch of greedy-interchangeable ranks during folded
    construction: same informed lattice point, hence the same float
    history.  ``blocks`` lists the members' contiguous slot runs in
    member order; ``pops`` mirrors ``children`` with the slot range
    each send round produced (for :meth:`FoldedTree` expansion)."""

    __slots__ = (
        "blocks", "size", "lattice", "parent", "parent_send",
        "round", "children", "pops", "cut",
    )

    def __init__(self, blocks, size, lattice, parent, parent_send):
        self.blocks = blocks
        self.size = size
        self.lattice = lattice
        self.parent = parent
        self.parent_send = parent_send
        self.round = 0
        self.children: list[int] = []
        self.pops: list[tuple[int, int]] = []
        self.cut: int | None = None


def optimal_broadcast_tree_folded(
    p: LogPParams, root: int = 0
) -> FoldedTree:
    """Greedy-optimal broadcast tree, folded during construction.

    Runs the same earliest-delivery greedy as
    :func:`optimal_broadcast_tree` but over *cohorts* — batches of
    ranks informed at the same delivery-lattice point
    ``a·max(g,o) + b·(L+2o)`` — so time and memory track the class
    count, not Θ(P log P).  All ranks delivered in one heap pop run
    are interchangeable (identical delivery time and identical
    futures), so cohorts merge by lattice point per run; distinct
    lattice points that collide in float are kept apart — they are
    distinct arrival *forms* and the generic fold would split them.
    The final partial run splits at most one cohort by fanout.

    The result has the same delivery-time multiset, completion time,
    and class structure as :func:`optimal_broadcast_tree`, with a
    canonical rank naming that groups each run's deliveries by
    lattice point instead of interleaving them (the scalar greedy's
    naming is itself arbitrary — see its docstring).  ``expand()``
    materializes explicit children lists for differential checks at
    small P; ``tests/test_fold.py`` pins both directions.

    Raises :class:`repro.sim.compiled.fold.FoldError` in the
    degenerate corner ``max(g, o) == L + 2o``, where a sender's next
    send ties its own previous delivery and re-sends interleave with
    deliveries at the same instant.
    """
    from ..sim.compiled.fold import FoldError

    if not 0 <= root < p.P:
        raise ValueError(f"root {root} out of range for P={p.P}")
    P = p.P
    interval = p.send_interval
    deliver = p.L + 2 * p.o
    if P > 1 and interval == deliver:
        raise FoldError(
            f"degenerate greedy lattice: send interval {interval} "
            f"equals delivery time {deliver}, so a sender's next "
            "send ties its own previous delivery and batches "
            "interleave per rank — build the explicit "
            "optimal_broadcast_tree instead"
        )

    cohorts = [_Cohort([], 1, (0, 0), -1, -1)]
    if P > 1:
        heap: list[tuple[float, int, int]] = [(0.0, 0, 0)]
        seq = 1
        remaining = P - 1
        next_slot = 0
        while remaining:
            t = heap[0][0]
            run: list[int] = []
            while heap and heap[0][0] == t:
                run.append(heapq.heappop(heap)[2])
            born_map: dict[tuple[int, int], int] = {}
            for ci in run:
                if not remaining:
                    break
                c = cohorts[ci]
                take = min(c.size, remaining)
                born = (c.lattice[0] + c.round, c.lattice[1] + 1)
                child = born_map.get(born)
                if child is None:
                    child = len(cohorts)
                    born_map[born] = child
                    cohorts.append(
                        _Cohort([(next_slot, take)], take, born,
                                ci, c.round)
                    )
                    heapq.heappush(heap, (t + deliver, seq, child))
                    seq += 1
                else:
                    b = cohorts[child]
                    last = b.blocks[-1]
                    if last[0] + last[1] == next_slot:
                        b.blocks[-1] = (last[0], last[1] + take)
                    else:
                        b.blocks.append((next_slot, take))
                    b.size += take
                c.children.append(child)
                c.pops.append((next_slot, take))
                next_slot += take
                remaining -= take
                if take < c.size:
                    c.cut = take
                else:
                    c.round += 1
                    heapq.heappush(heap, (t + interval, seq, ci))
                    seq += 1

    # Regroup cohorts into classes keyed (lattice, fanout): equal
    # lattice = equal arrival form, equal fanout = equal skeleton.
    classes: list[FoldedTreeClass] = []
    index_of: dict[tuple, int] = {}
    cls_of_cohort: list[int] = [-1] * len(cohorts)
    cls_blocks: list[list[tuple[int, int]]] = []
    suffix_cls: dict[int, int] = {}

    def _get(key, size, rep, depth, parent, psend, lattice):
        idx = index_of.get(key)
        if idx is None:
            idx = len(classes)
            index_of[key] = idx
            classes.append(
                FoldedTreeClass(
                    index=idx, size=size, rep=rep, depth=depth,
                    parent=parent, parent_send=psend, children=[],
                    recv_lattice=lattice,
                )
            )
            cls_blocks.append([])
        else:
            cls = classes[idx]
            cls.size += size
            if rep < cls.rep:
                cls.rep = rep
        return idx

    def _rank(slot: int) -> int:
        return slot if slot < root else slot + 1

    def _split_blocks(blocks, count):
        head, tail, need = [], [], count
        for first, size in blocks:
            if need >= size:
                head.append((first, size))
                need -= size
            elif need > 0:
                head.append((first, need))
                tail.append((first + need, size - need))
                need = 0
            else:
                tail.append((first, size))
        return head, tail

    for ci, c in enumerate(cohorts):
        if ci == 0:
            cls_of_cohort[0] = _get(
                ("root",), 1, root, 0, -1, -1, (0, 0)
            )
            continue
        depth = c.lattice[1]
        parent = cls_of_cohort[c.parent]
        rep = _rank(min(first for first, _ in c.blocks))
        if c.cut is None:
            idx = _get(
                (c.lattice, c.round), c.size, rep,
                depth, parent, c.parent_send, c.lattice,
            )
            cls_blocks[idx].extend(c.blocks)
        else:
            # The final partial pop: the member prefix sent one more
            # round than the suffix.
            head, tail = _split_blocks(c.blocks, c.cut)
            idx = _get(
                (c.lattice, c.round + 1), c.cut,
                _rank(min(first for first, _ in head)),
                depth, parent, c.parent_send, c.lattice,
            )
            cls_blocks[idx].extend(head)
            idx2 = _get(
                (c.lattice, c.round), c.size - c.cut,
                _rank(min(first for first, _ in tail)),
                depth, parent, c.parent_send, c.lattice,
            )
            cls_blocks[idx2].extend(tail)
            suffix_cls[ci] = idx2
            # idx stays the prefix class: children of a cut cohort
            # resolve their parent link against the larger fanout.
        cls_of_cohort[ci] = idx

    for ci, c in enumerate(cohorts):
        kids = [cls_of_cohort[ch] for ch in c.children]
        cls = classes[cls_of_cohort[ci]]
        if not cls.children and kids:
            cls.children = kids
        if c.cut is not None and c.round:
            scls = classes[suffix_cls[ci]]
            if not scls.children:
                # The suffix missed the final (partial) round.
                scls.children = kids[: c.round]

    blocks: list[tuple[int, int, int]] = []
    for idx, bl in enumerate(cls_blocks):
        for first, size in bl:
            blocks.append((first, size, idx))
    blocks.sort()
    starts = [b[0] for b in blocks]
    owner = [b[2] for b in blocks]

    from bisect import bisect_right

    root_cls = cls_of_cohort[0]

    def classify(rank: int) -> int:
        if not 0 <= rank < P:
            raise IndexError(f"rank {rank} out of range 0..{P - 1}")
        if rank == root:
            return root_cls
        slot = rank if rank < root else rank - 1
        return owner[bisect_right(starts, slot) - 1]

    def _expand() -> list[list[int]]:
        children: list[list[int]] = [[] for _ in range(P)]
        for ci, c in enumerate(cohorts):
            if ci == 0:
                members = [root]
            else:
                members = [
                    _rank(s)
                    for first, size in c.blocks
                    for s in range(first, first + size)
                ]
            for start, take in c.pops:
                for j in range(take):
                    children[members[j]].append(_rank(start + j))
        return children

    return FoldedTree(
        P=P, root=root, classes=classes, classify=classify,
        source="optimal", expander=_expand,
    )


def broadcast_schedule(tree: BroadcastTree) -> Schedule:
    """Render a broadcast tree as an explicit activity schedule — the
    right-hand panel of Figure 3 (send/receive overhead bars per
    processor, messages in flight between them)."""
    p = tree.params
    sched = Schedule(p)
    for (src, dst), start in sorted(tree.send_start.items(), key=lambda kv: kv[1]):
        inject = start + p.o
        arrive = inject + p.L
        recv_start = arrive
        recv_end = arrive + p.o
        sched.add_interval(src, start, start + p.o, Activity.SEND, f"->{dst}")
        sched.add_interval(dst, recv_start, recv_end, Activity.RECV, f"<-{src}")
        sched.add_message(
            MessageRecord(
                src=src,
                dst=dst,
                send_start=start,
                inject=inject,
                arrive=arrive,
                recv_start=recv_start,
                recv_end=recv_end,
                tag="bcast",
            )
        )
    sched.sort_all()
    return sched


def pipelined_tree_time(
    p: LogPParams, children: list[list[int]], k: int, root: int = 0
) -> float:
    """Predicted time to broadcast ``k`` items over an explicit tree
    with pipelining (Section 3.1's "long streams ... pipelined through
    the network").

    Steady-state throughput at a node with fanout ``f`` that also
    receives the stream is one item per
    ``max(g, f * max(g, o), o * (f + 1))`` cycles (its send port, its
    send overhead for f copies, plus the receive overhead share); the
    stream's completion is the single-item delivery time of the last
    leaf plus ``(k-1)`` periods of the bottleneck node.

    Exact (verified against the simulator across the test grid) when
    each relay can interleave one receive and its sends smoothly per
    period — in particular whenever ``max(g, o) >= 2o`` for fanout-1
    relays.  When ``g < 2o`` relays fall into receive/send bursts that
    add up to ``~(2o - g)`` of pipeline skew per hop, and this closed
    form is a lower bound.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    single = max(tree_delivery_times(p, children, root))
    period = 0.0
    for r in range(p.P):
        f = len(children[r])
        if f == 0:
            continue
        recv_o = 0.0 if r == root else p.o
        node_period = max(
            p.g, f * max(p.g, p.o), f * p.o + recv_o
        )
        period = max(period, node_period)
    return single + (k - 1) * period


def pipelined_broadcast_program(children: list[list[int]], items, root: int = 0):
    """Program factory: stream ``items`` down an explicit tree.

    Every non-root node alternates receive/forward per item; items are
    tagged with their index so ordering is preserved under any latency
    model.  Programs return the received item list (the root returns the
    original items).
    """
    items = list(items)

    def factory(rank: int, P: int):
        from ..sim.program import Recv, Send

        def run():
            got = list(items) if rank == root else []
            for idx in range(len(items)):
                if rank != root:
                    msg = yield Recv(tag=("pipe", idx))
                    got.append(msg.payload)
                for child in children[rank]:
                    yield Send(child, payload=got[idx], tag=("pipe", idx))
            return got

        return run()

    return factory


def best_pipelined_tree(
    p: LogPParams,
    k: int,
    root: int = 0,
    *,
    backend: str | None = None,
    fold: str = "auto",
) -> tuple[str, list[list[int]]]:
    """Pick the best of {optimal single-item tree, binomial, chain} for
    a ``k``-item pipelined broadcast.

    Captures the paper's point that the right structure depends on the
    message-stream length: latency-optimal (bushy) trees win for one
    item, deep low-fanout trees win for long streams.

    By default candidates are ranked by the closed-form
    :func:`pipelined_tree_time` prediction (a lower bound when
    ``g < 2o``).  Pass ``backend`` (``"machine"``, ``"compiled"`` or
    ``"auto"``; see :func:`repro.sim.sweep.grid_map`) to rank by *exact
    executed* makespan instead — each candidate tree's program runs
    through the chosen simulation backend.  ``fold`` is forwarded to
    :func:`~repro.sim.sweep.grid_map` on that path: the default
    ``"auto"`` evaluates each candidate by rank equivalence classes
    when its schedule folds, which is what makes ranking candidates at
    very large ``P`` tractable.
    """
    candidates = {
        "optimal-single": optimal_broadcast_tree(p, root).children,
        "binomial": binomial_tree(p.P, root),
        "chain": linear_tree(p.P, root),
    }
    if backend is None:
        score = {
            name: pipelined_tree_time(p, children, k, root)
            for name, children in candidates.items()
        }
    else:
        from ..sim.sweep import grid_map

        score = {
            name: grid_map(
                pipelined_broadcast_program(children, range(k), root),
                [p],
                backend=backend,
                fold=fold,
            )[0][0]
            for name, children in candidates.items()
        }
    best = min(candidates, key=score.__getitem__)
    return best, candidates[best]


def broadcast_program(tree: BroadcastTree, value):
    """Program factory that executes ``tree`` on the simulator.

    Returns a factory suitable for
    :func:`repro.sim.machine.run_programs`; every processor's program
    returns the broadcast value, and the run's makespan equals
    ``tree.completion_time`` on a deterministic machine.
    """
    from ..sim.collectives import tree_broadcast

    children = tree.children

    def factory(rank: int, P: int):
        return tree_broadcast(rank, P, value if rank == tree.root else None,
                              children, root=tree.root)

    return factory


# ----------------------------------------------------------------------
# Fault-tolerant broadcast: detector sizing and the degradation bound
# ----------------------------------------------------------------------


def ft_heartbeat_config(
    p: LogPParams,
    *,
    root: int = 0,
    slack: float = 2.0,
    horizon: float | None = None,
):
    """A feasible heartbeat detector for the self-healing collectives.

    Heartbeats are real traffic: each beat occupies the emitter's send
    port for ``max(g, o)`` and the watcher's receive port for ``g``
    (see ``LogPMachine._on_hb_tick``).  Under
    :func:`~repro.sim.collectives.ft_watch_edges` the busiest rank (the
    root) exchanges beats with all ``P - 1`` others, so the period must
    exceed ``(P - 1) * max(g, o)`` or the port backlog diverges and the
    detector suspects *live* ranks.  ``slack`` (>= 1.5) leaves port
    headroom for the application's own messages.  The timeout carries an
    extra ``L + 2o`` of first-beat flight slack: on latency-dominated
    machines (``L`` larger than the period) the very first beat is still
    in the network when a bare multiple-of-period timeout would already
    have expired, and a watcher that has heard *nothing yet* must not
    suspect a live peer at startup.
    """
    from ..sim.collectives import ft_watch_edges
    from ..sim.faults import HeartbeatConfig

    if slack < 1.5:
        raise ValueError(
            f"slack must be >= 1.5 (port headroom for app traffic), "
            f"got {slack}"
        )
    period = slack * (p.P - 1) * max(p.g, p.o)
    return HeartbeatConfig(
        period=period,
        timeout=2.5 * period + p.L + 2.0 * p.o,
        edges=ft_watch_edges(p.P, root),
        horizon=horizon,
    )


def ft_broadcast_program(
    value,
    *,
    root: int = 0,
    poll: float = 16.0,
    deadline: float | None = None,
):
    """Program factory running the self-healing broadcast; every
    surviving rank's program returns the broadcast value."""
    from ..sim.collectives import ft_broadcast

    def factory(rank: int, P: int):
        return ft_broadcast(
            rank,
            P,
            value if rank == root else None,
            root=root,
            poll=poll,
            deadline=deadline,
        )

    return factory


def ft_reroute_cost(p: LogPParams, poll: float) -> float:
    """Worst-case extra cycles one crash adds *beyond* detection.

    After the orphan's detector flags the dead parent (checked every
    ``poll`` cycles), the orphan sends a re-graft request one hop up
    (``L + 2o``), the adopter answers with the payload (``L + 2o``),
    and in the worst case (the root's first child dying at time 0) the
    whole orphaned subtree — depth ``ceil(log2 P) - 1`` — re-broadcasts
    behind it.  One heartbeat round of port contention
    (``(P - 1) * max(g, o)``) covers beats interleaving with the
    re-route traffic on the adopter's ports.
    """
    import math

    hop = p.L + 2 * p.o
    depth = max(math.ceil(math.log2(p.P)) - 1, 0) if p.P > 1 else 0
    subtree = depth * (hop + p.send_interval)
    contention = (p.P - 1) * p.send_interval
    return poll + 2 * hop + subtree + contention


def ft_broadcast_bound(
    p: LogPParams,
    heartbeat,
    poll: float,
    fault_free: float,
    crashes: int,
) -> float:
    """Degradation bound: makespan under ``crashes`` crash-stop faults
    of non-root ranks is at most
    ``fault_free + crashes * (detect_delay + reroute_cost)``.

    ``fault_free`` is the measured makespan of the *same* self-healing
    program with the detector attached and no faults — the bound charges
    crashes for re-routing, not the protocol for existing.  Asserted
    across a seeded crash sweep in ``tests/test_ft_collectives.py``.
    """
    return fault_free + crashes * (
        heartbeat.detect_delay() + ft_reroute_cost(p, poll)
    )
