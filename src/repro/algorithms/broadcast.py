"""Optimal single-item broadcast under LogP (Section 3.3, Figure 3).

"The main idea is simple: all processors that have received the datum
transmit it as quickly as possible, while ensuring that no processor
receives more than one message."  The source injects a message every
``max(g, o)`` cycles; each message lands ``L + 2o`` after its send
starts; every recipient immediately becomes the root of a smaller
broadcast tree.  The resulting optimal tree is *unbalanced*, with
fan-out determined by the relative values of L, o and g.

This module builds that tree by greedy earliest-delivery construction
(provably optimal for single-item broadcast: the k-th earliest possible
delivery time is achieved by giving the k-th message to the sender that
can deliver soonest), renders it as an explicit
:class:`~repro.core.schedule.Schedule` for the Figure 3 Gantt panel, and
provides the baseline trees (linear chain, flat, binomial) the ablation
benchmark compares against.

For the paper's example — ``P=8, L=6, g=4, o=2`` — the tree delivers to
the last processor at time 24, with the root's children receiving at
10, 14, 18, 22 (Figure 3's node labels).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule

__all__ = [
    "BroadcastTree",
    "optimal_broadcast_tree",
    "optimal_broadcast_time",
    "tree_delivery_times",
    "linear_tree",
    "flat_tree",
    "binomial_tree",
    "broadcast_schedule",
    "broadcast_program",
    "pipelined_tree_time",
    "pipelined_broadcast_program",
    "best_pipelined_tree",
    "ft_heartbeat_config",
    "ft_broadcast_program",
    "ft_reroute_cost",
    "ft_broadcast_bound",
]


@dataclass(slots=True)
class BroadcastTree:
    """An explicit broadcast tree with its delivery schedule.

    Attributes:
        params: the machine the tree was built for.
        root: the source processor.
        parent: ``parent[r]`` is r's parent (``None`` for the root).
        children: ``children[r]`` lists r's children in send order.
        recv_time: ``recv_time[r]`` is when r has the datum and can begin
            sending it on (0 for the root) — the node labels of Figure 3.
        send_start: ``send_start[(src, dst)]`` is when src begins the
            o-cycle injection of the message to dst.
    """

    params: LogPParams
    root: int
    parent: list[int | None]
    children: list[list[int]]
    recv_time: list[float]
    send_start: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def completion_time(self) -> float:
        """Time at which the last processor has received the datum."""
        return max(self.recv_time)

    def depth(self) -> int:
        """Longest root-to-leaf path (in messages)."""
        best = 0
        for r in range(self.params.P):
            d = 0
            node: int | None = r
            while self.parent[node] is not None:  # type: ignore[index]
                node = self.parent[node]  # type: ignore[index]
                d += 1
            best = max(best, d)
        return best

    def fanout(self, rank: int) -> int:
        return len(self.children[rank])


def optimal_broadcast_tree(p: LogPParams, root: int = 0) -> BroadcastTree:
    """Build the optimal broadcast tree by greedy earliest delivery.

    Maintains a priority queue keyed by the earliest time an informed
    processor can *start its next send*; each pop delivers the datum to
    the next uninformed processor at ``start + L + 2o``, which then joins
    the queue itself.  Ranks are assigned in delivery order (the root's
    first child is processor ``root+1``, etc.), which reproduces the
    layout of Figure 3 up to the paper's arbitrary processor naming.
    """
    if not 0 <= root < p.P:
        raise ValueError(f"root {root} out of range for P={p.P}")
    P = p.P
    parent: list[int | None] = [None] * P
    children: list[list[int]] = [[] for _ in range(P)]
    recv_time = [0.0] * P
    send_start: dict[tuple[int, int], float] = {}
    if P == 1:
        return BroadcastTree(p, root, parent, children, recv_time, send_start)

    interval = p.send_interval
    deliver = p.L + 2 * p.o
    # Heap of (next send start, tiebreak, sender rank).
    heap: list[tuple[float, int, int]] = [(0.0, 0, root)]
    tie = 1
    # Unassigned ranks, in the order they will be named.
    pending = [r for r in range(P) if r != root]
    for new in pending:
        start, _, sender = heapq.heappop(heap)
        parent[new] = sender
        children[sender].append(new)
        recv_time[new] = start + deliver
        send_start[(sender, new)] = start
        heapq.heappush(heap, (start + interval, tie, sender))
        tie += 1
        heapq.heappush(heap, (recv_time[new], tie, new))
        tie += 1
    return BroadcastTree(p, root, parent, children, recv_time, send_start)


def optimal_broadcast_time(p: LogPParams) -> float:
    """Completion time of the optimal broadcast (24 for the Figure 3
    parameters ``P=8, L=6, g=4, o=2``)."""
    return optimal_broadcast_tree(p).completion_time


def tree_delivery_times(
    p: LogPParams, children: list[list[int]], root: int = 0
) -> list[float]:
    """Delivery times for an arbitrary explicit tree.

    ``children[r]`` is in send order; r's k-th send starts
    ``k * max(g, o)`` after r is ready, and lands ``L + 2o`` later.
    """
    P = p.P
    recv_time = [0.0] * P
    interval = p.send_interval
    deliver = p.L + 2 * p.o
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for k, child in enumerate(children[node]):
            if child in seen:
                raise ValueError(f"node {child} appears twice in the tree")
            seen.add(child)
            recv_time[child] = recv_time[node] + k * interval + deliver
            stack.append(child)
    if len(seen) != P:
        raise ValueError(
            f"tree reaches {len(seen)} of {P} processors"
        )
    return recv_time


def linear_tree(P: int, root: int = 0) -> list[list[int]]:
    """Chain: root -> next -> next ... (the worst reasonable tree)."""
    children: list[list[int]] = [[] for _ in range(P)]
    order = [root] + [r for r in range(P) if r != root]
    for a, b in zip(order, order[1:]):
        children[a].append(b)
    return children


def flat_tree(P: int, root: int = 0) -> list[list[int]]:
    """Star: the root sends to everyone itself (gap-bound)."""
    children: list[list[int]] = [[] for _ in range(P)]
    children[root] = [r for r in range(P) if r != root]
    return children


def binomial_tree(P: int, root: int = 0) -> list[list[int]]:
    """The classic parameter-oblivious binomial broadcast tree."""
    from ..sim.collectives import binomial_children

    return [binomial_children(r, P, root) for r in range(P)]


def broadcast_schedule(tree: BroadcastTree) -> Schedule:
    """Render a broadcast tree as an explicit activity schedule — the
    right-hand panel of Figure 3 (send/receive overhead bars per
    processor, messages in flight between them)."""
    p = tree.params
    sched = Schedule(p)
    for (src, dst), start in sorted(tree.send_start.items(), key=lambda kv: kv[1]):
        inject = start + p.o
        arrive = inject + p.L
        recv_start = arrive
        recv_end = arrive + p.o
        sched.add_interval(src, start, start + p.o, Activity.SEND, f"->{dst}")
        sched.add_interval(dst, recv_start, recv_end, Activity.RECV, f"<-{src}")
        sched.add_message(
            MessageRecord(
                src=src,
                dst=dst,
                send_start=start,
                inject=inject,
                arrive=arrive,
                recv_start=recv_start,
                recv_end=recv_end,
                tag="bcast",
            )
        )
    sched.sort_all()
    return sched


def pipelined_tree_time(
    p: LogPParams, children: list[list[int]], k: int, root: int = 0
) -> float:
    """Predicted time to broadcast ``k`` items over an explicit tree
    with pipelining (Section 3.1's "long streams ... pipelined through
    the network").

    Steady-state throughput at a node with fanout ``f`` that also
    receives the stream is one item per
    ``max(g, f * max(g, o), o * (f + 1))`` cycles (its send port, its
    send overhead for f copies, plus the receive overhead share); the
    stream's completion is the single-item delivery time of the last
    leaf plus ``(k-1)`` periods of the bottleneck node.

    Exact (verified against the simulator across the test grid) when
    each relay can interleave one receive and its sends smoothly per
    period — in particular whenever ``max(g, o) >= 2o`` for fanout-1
    relays.  When ``g < 2o`` relays fall into receive/send bursts that
    add up to ``~(2o - g)`` of pipeline skew per hop, and this closed
    form is a lower bound.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    single = max(tree_delivery_times(p, children, root))
    period = 0.0
    for r in range(p.P):
        f = len(children[r])
        if f == 0:
            continue
        recv_o = 0.0 if r == root else p.o
        node_period = max(
            p.g, f * max(p.g, p.o), f * p.o + recv_o
        )
        period = max(period, node_period)
    return single + (k - 1) * period


def pipelined_broadcast_program(children: list[list[int]], items, root: int = 0):
    """Program factory: stream ``items`` down an explicit tree.

    Every non-root node alternates receive/forward per item; items are
    tagged with their index so ordering is preserved under any latency
    model.  Programs return the received item list (the root returns the
    original items).
    """
    items = list(items)

    def factory(rank: int, P: int):
        from ..sim.program import Recv, Send

        def run():
            got = list(items) if rank == root else []
            for idx in range(len(items)):
                if rank != root:
                    msg = yield Recv(tag=("pipe", idx))
                    got.append(msg.payload)
                for child in children[rank]:
                    yield Send(child, payload=got[idx], tag=("pipe", idx))
            return got

        return run()

    return factory


def best_pipelined_tree(
    p: LogPParams, k: int, root: int = 0, *, backend: str | None = None
) -> tuple[str, list[list[int]]]:
    """Pick the best of {optimal single-item tree, binomial, chain} for
    a ``k``-item pipelined broadcast.

    Captures the paper's point that the right structure depends on the
    message-stream length: latency-optimal (bushy) trees win for one
    item, deep low-fanout trees win for long streams.

    By default candidates are ranked by the closed-form
    :func:`pipelined_tree_time` prediction (a lower bound when
    ``g < 2o``).  Pass ``backend`` (``"machine"``, ``"compiled"`` or
    ``"auto"``; see :func:`repro.sim.sweep.grid_map`) to rank by *exact
    executed* makespan instead — each candidate tree's program runs
    through the chosen simulation backend.
    """
    candidates = {
        "optimal-single": optimal_broadcast_tree(p, root).children,
        "binomial": binomial_tree(p.P, root),
        "chain": linear_tree(p.P, root),
    }
    if backend is None:
        score = {
            name: pipelined_tree_time(p, children, k, root)
            for name, children in candidates.items()
        }
    else:
        from ..sim.sweep import grid_map

        score = {
            name: grid_map(
                pipelined_broadcast_program(children, range(k), root),
                [p],
                backend=backend,
            )[0][0]
            for name, children in candidates.items()
        }
    best = min(candidates, key=score.__getitem__)
    return best, candidates[best]


def broadcast_program(tree: BroadcastTree, value):
    """Program factory that executes ``tree`` on the simulator.

    Returns a factory suitable for
    :func:`repro.sim.machine.run_programs`; every processor's program
    returns the broadcast value, and the run's makespan equals
    ``tree.completion_time`` on a deterministic machine.
    """
    from ..sim.collectives import tree_broadcast

    children = tree.children

    def factory(rank: int, P: int):
        return tree_broadcast(rank, P, value if rank == tree.root else None,
                              children, root=tree.root)

    return factory


# ----------------------------------------------------------------------
# Fault-tolerant broadcast: detector sizing and the degradation bound
# ----------------------------------------------------------------------


def ft_heartbeat_config(
    p: LogPParams,
    *,
    root: int = 0,
    slack: float = 2.0,
    horizon: float | None = None,
):
    """A feasible heartbeat detector for the self-healing collectives.

    Heartbeats are real traffic: each beat occupies the emitter's send
    port for ``max(g, o)`` and the watcher's receive port for ``g``
    (see ``LogPMachine._on_hb_tick``).  Under
    :func:`~repro.sim.collectives.ft_watch_edges` the busiest rank (the
    root) exchanges beats with all ``P - 1`` others, so the period must
    exceed ``(P - 1) * max(g, o)`` or the port backlog diverges and the
    detector suspects *live* ranks.  ``slack`` (>= 1.5) leaves port
    headroom for the application's own messages.  The timeout carries an
    extra ``L + 2o`` of first-beat flight slack: on latency-dominated
    machines (``L`` larger than the period) the very first beat is still
    in the network when a bare multiple-of-period timeout would already
    have expired, and a watcher that has heard *nothing yet* must not
    suspect a live peer at startup.
    """
    from ..sim.collectives import ft_watch_edges
    from ..sim.faults import HeartbeatConfig

    if slack < 1.5:
        raise ValueError(
            f"slack must be >= 1.5 (port headroom for app traffic), "
            f"got {slack}"
        )
    period = slack * (p.P - 1) * max(p.g, p.o)
    return HeartbeatConfig(
        period=period,
        timeout=2.5 * period + p.L + 2.0 * p.o,
        edges=ft_watch_edges(p.P, root),
        horizon=horizon,
    )


def ft_broadcast_program(
    value,
    *,
    root: int = 0,
    poll: float = 16.0,
    deadline: float | None = None,
):
    """Program factory running the self-healing broadcast; every
    surviving rank's program returns the broadcast value."""
    from ..sim.collectives import ft_broadcast

    def factory(rank: int, P: int):
        return ft_broadcast(
            rank,
            P,
            value if rank == root else None,
            root=root,
            poll=poll,
            deadline=deadline,
        )

    return factory


def ft_reroute_cost(p: LogPParams, poll: float) -> float:
    """Worst-case extra cycles one crash adds *beyond* detection.

    After the orphan's detector flags the dead parent (checked every
    ``poll`` cycles), the orphan sends a re-graft request one hop up
    (``L + 2o``), the adopter answers with the payload (``L + 2o``),
    and in the worst case (the root's first child dying at time 0) the
    whole orphaned subtree — depth ``ceil(log2 P) - 1`` — re-broadcasts
    behind it.  One heartbeat round of port contention
    (``(P - 1) * max(g, o)``) covers beats interleaving with the
    re-route traffic on the adopter's ports.
    """
    import math

    hop = p.L + 2 * p.o
    depth = max(math.ceil(math.log2(p.P)) - 1, 0) if p.P > 1 else 0
    subtree = depth * (hop + p.send_interval)
    contention = (p.P - 1) * p.send_interval
    return poll + 2 * hop + subtree + contention


def ft_broadcast_bound(
    p: LogPParams,
    heartbeat,
    poll: float,
    fault_free: float,
    crashes: int,
) -> float:
    """Degradation bound: makespan under ``crashes`` crash-stop faults
    of non-root ranks is at most
    ``fault_free + crashes * (detect_delay + reroute_cost)``.

    ``fault_free`` is the measured makespan of the *same* self-healing
    program with the detector attached and no faults — the bound charges
    crashes for re-routing, not the protocol for existing.  Asserted
    across a seeded crash sweep in ``tests/test_ft_collectives.py``.
    """
    return fault_free + crashes * (
        heartbeat.detect_delay() + ft_reroute_cost(p, poll)
    )
