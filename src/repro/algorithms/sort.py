"""Parallel sorting under LogP (Section 4.2.2).

"Since processors handle large subproblems, sort algorithms can be
designed with a basic structure of alternating phases of local
computation and general communication."  Two algorithms:

* **Splitter sort** (the paper's [7], a.k.a. sample sort): a fast global
  step identifies ``P-1`` splitter values dividing the data into ``P``
  nearly equal chunks; the data is remapped using the splitters; each
  processor then sorts locally.  Exactly the compute-remap-compute shape
  of the hybrid FFT.
* **Bitonic sort**: the classic network algorithm as the structured-
  communication baseline — ``log P (log P + 1)/2`` compare-split rounds,
  each exchanging whole ``n/P``-element chunks between partners.

Both run with real keys on the discrete-event simulator and both have
closed-form LogP predictions.  The splitter sort's sample size follows
the standard oversampling analysis (``s`` samples per processor bound
the largest bucket by roughly ``n/P (1 + 1/s)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.params import LogPParams
from ..sim.machine import LogPMachine, MachineResult

__all__ = [
    "splitter_sort_time",
    "bitonic_sort_time",
    "column_sort_time",
    "splitter_sort_program",
    "run_splitter_sort",
    "bitonic_sort_program",
    "run_bitonic_sort",
    "column_sort_program",
    "run_column_sort",
    "SortOutcome",
]


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------


def splitter_sort_time(
    p: LogPParams, n: int, oversample: int = 8, compare_cost: float = 1.0
) -> float:
    """Predicted splitter-sort time in cycles.

    Local sort ``(n/P) log2(n/P)`` comparisons, a gather of ``s*P``
    samples + splitter broadcast (two ``log P``-depth tree phases), the
    key remap as a ``g*(n/P) + L`` h-relation, and the final local sort
    of an ``(n/P)(1 + 1/s)``-sized bucket.
    """
    if n < p.P:
        raise ValueError(f"n={n} smaller than P={p.P}")
    m = n / p.P
    depth = math.ceil(math.log2(p.P)) if p.P > 1 else 0
    local1 = compare_cost * m * max(1.0, math.log2(max(m, 2)))
    sample_gather = depth * (p.L + 2 * p.o) + oversample * p.P * p.g
    splitter_bcast = depth * (p.L + 2 * p.o) + (p.P - 1) * p.g
    remap = p.g * m + p.L
    bucket = m * (1 + 1.0 / oversample)
    local2 = compare_cost * bucket * max(1.0, math.log2(max(bucket, 2)))
    return local1 + sample_gather + splitter_bcast + remap + local2


def bitonic_sort_time(
    p: LogPParams, n: int, compare_cost: float = 1.0
) -> float:
    """Predicted bitonic-sort time in cycles.

    After a local sort, ``log P (log P + 1)/2`` compare-split rounds each
    exchange a full ``n/P``-chunk (``g*(n/P) + L``) and merge
    (``n/P`` comparisons).
    """
    if n < p.P:
        raise ValueError(f"n={n} smaller than P={p.P}")
    m = n / p.P
    lp = int(math.log2(p.P)) if p.P > 1 else 0
    rounds = lp * (lp + 1) // 2
    local = compare_cost * m * max(1.0, math.log2(max(m, 2)))
    per_round = p.g * m + p.L + compare_cost * m
    return local + rounds * per_round


# ----------------------------------------------------------------------
# Splitter (sample) sort on the simulator
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SortOutcome:
    """Result of a simulated parallel sort."""

    sorted_values: np.ndarray
    makespan: float
    machine: MachineResult
    max_bucket: int  # largest per-processor bucket after the remap


def splitter_sort_program(
    chunks: list[np.ndarray], oversample: int = 8, compare_cost: float = 1.0
):
    """Program factory for splitter sort with real keys.

    ``chunks[r]`` is rank r's initial data.  Phases: local sort; every
    rank sends ``oversample`` regular samples to rank 0; rank 0 sorts the
    sample and broadcasts ``P-1`` splitters; keys are redistributed with
    the irregular :func:`~repro.sim.collectives.exchange`; each rank
    merges its bucket.  Returns rank r's final sorted bucket (bucket
    boundaries are the splitters, so concatenation in rank order is the
    globally sorted sequence).
    """

    def factory(rank: int, P: int):
        from ..sim.collectives import binomial_broadcast, exchange
        from ..sim.program import Compute, Recv, Send

        def run():
            keys = np.sort(np.asarray(chunks[rank], dtype=np.float64))
            m = len(keys)
            if m:
                yield Compute(
                    compare_cost * m * max(1.0, math.log2(max(m, 2))),
                    label="local-sort",
                )
            # Regular sampling.
            s = min(oversample, m) if m else 0
            if s:
                idx = (np.arange(s) * m) // s
                sample = keys[idx]
            else:
                sample = np.empty(0)
            if rank != 0:
                for v in sample:
                    yield Send(0, payload=float(v), tag="sample")
                splitters = None
            else:
                collected = list(sample)
                # Rank 0 can't know how many samples others hold only if
                # chunks are empty; send counts first for robustness.
                for _ in range(P - 1):
                    msg = yield Recv(tag="sample-count")
                    for _ in range(msg.payload):
                        smsg = yield Recv(tag="sample")
                        collected.append(smsg.payload)
                allsamp = np.sort(np.asarray(collected))
                cut = [
                    allsamp[(len(allsamp) * j) // P] for j in range(1, P)
                ] if len(allsamp) else []
                yield Compute(
                    max(1.0, len(allsamp) * math.log2(max(len(allsamp), 2))),
                    label="sort-samples",
                )
                splitters = np.asarray(cut)
            splitters = yield from binomial_broadcast(
                rank, P, splitters, root=0, tag="splitters"
            )
            # Partition local keys by splitter bucket and redistribute.
            bucket_of = np.searchsorted(splitters, keys, side="right")
            outgoing: dict[int, list[float]] = {}
            mine: list[float] = []
            for v, b in zip(keys, bucket_of):
                if int(b) == rank:
                    mine.append(float(v))
                else:
                    outgoing.setdefault(int(b), []).append(float(v))
            received = yield from exchange(rank, P, outgoing, tag="keys")
            bucket = np.asarray(mine + [v for _, v in received])
            if len(bucket):
                yield Compute(
                    compare_cost
                    * len(bucket)
                    * max(1.0, math.log2(max(len(bucket), 2))),
                    label="final-sort",
                )
            return np.sort(bucket)

        def run_with_counts():
            # Wrap: ranks != 0 must announce their sample count first.
            if rank != 0:
                from ..sim.program import Send as S

                m = len(chunks[rank])
                s = min(oversample, m) if m else 0
                yield S(0, payload=s, tag="sample-count")
            result = yield from run()
            return result

        return run_with_counts()

    return factory


def run_splitter_sort(
    params: LogPParams,
    data: np.ndarray,
    oversample: int = 8,
    **machine_kwargs,
) -> SortOutcome:
    """Split ``data`` evenly, run splitter sort on the simulator, and
    return the verified globally sorted array."""
    data = np.asarray(data, dtype=np.float64)
    chunks = [np.array(c) for c in np.array_split(data, params.P)]
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(splitter_sort_program(chunks, oversample))
    buckets = [res.value(r) for r in range(params.P)]
    merged = np.concatenate(buckets) if buckets else np.empty(0)
    return SortOutcome(
        sorted_values=merged,
        makespan=res.makespan,
        machine=res,
        max_bucket=max((len(b) for b in buckets), default=0),
    )


# ----------------------------------------------------------------------
# Bitonic sort on the simulator
# ----------------------------------------------------------------------


def bitonic_sort_program(chunks: list[np.ndarray], compare_cost: float = 1.0):
    """Program factory for bitonic sort (hypercube compare-split).

    Requires power-of-two ``P`` and equal chunk sizes.  Each round, rank
    r exchanges its whole chunk with partner ``r ^ bit`` and keeps the
    lower or upper half of the merged sequence according to the bitonic
    direction rule; rank order then yields the sorted sequence.
    """
    sizes = {len(c) for c in chunks}
    if len(sizes) != 1:
        raise ValueError("bitonic sort needs equal chunk sizes")

    def factory(rank: int, P: int):
        if P & (P - 1):
            raise ValueError(f"bitonic sort needs power-of-two P, got {P}")
        from ..sim.program import Compute, Recv, Send

        def run():
            keys = np.sort(np.asarray(chunks[rank], dtype=np.float64))
            m = len(keys)
            if m:
                yield Compute(
                    compare_cost * m * max(1.0, math.log2(max(m, 2))),
                    label="local-sort",
                )
            lp = int(math.log2(P))
            for stage in range(1, lp + 1):
                for step in range(stage - 1, -1, -1):
                    partner = rank ^ (1 << step)
                    ascending = ((rank >> stage) & 1) == 0
                    for v in keys:
                        yield Send(partner, payload=float(v), tag=("bt", stage, step))
                    other = np.empty(m)
                    for i in range(m):
                        msg = yield Recv(tag=("bt", stage, step))
                        other[i] = msg.payload
                    merged = np.sort(np.concatenate([keys, other]))
                    keep_low = (rank < partner) == ascending
                    keys = merged[:m] if keep_low else merged[m:]
                    yield Compute(compare_cost * 2 * m, label="merge-split")
            return keys

        return run()

    return factory


# ----------------------------------------------------------------------
# Column sort (Leighton) on the simulator
# ----------------------------------------------------------------------


def column_sort_time(
    p: LogPParams, n: int, compare_cost: float = 1.0
) -> float:
    """Predicted columnsort time: four local sorts, two all-to-all
    transposes (each an ``n/P``-relation like the FFT remap), and two
    half-column shifts to a neighbour."""
    if n < p.P:
        raise ValueError(f"n={n} smaller than P={p.P}")
    r = n / p.P
    local = compare_cost * r * max(1.0, math.log2(max(r, 2)))
    transpose = p.g * r * (1 - 1 / p.P) + p.L
    shift = p.g * (r / 2) + p.L
    return 4 * local + 2 * transpose + 2 * shift


def column_sort_program(chunks: list[np.ndarray], compare_cost: float = 1.0):
    """Program factory for Leighton's columnsort.

    The paper names it directly: "column sort consists of a series of
    local sorts and remap steps, similar to our FFT algorithm."  Rank j
    owns column j of an r x s matrix (s = P, r = len(chunk)); the eight
    steps are: sort columns; transpose-reshape (an all-to-all remap);
    sort; untranspose (the inverse remap); sort; shift by r/2 with
    +/-inf boundaries (a neighbour exchange); sort; unshift.  Requires
    ``r >= 2 (s-1)**2``; the concatenation of the final columns in rank
    order is the sorted sequence.
    """
    sizes = {len(c) for c in chunks}
    if len(sizes) != 1:
        raise ValueError("column sort needs equal chunk sizes")
    r = sizes.pop()
    s = len(chunks)
    if r % 2:
        raise ValueError(f"column height r={r} must be even")
    if r < 2 * (s - 1) ** 2:
        raise ValueError(
            f"columnsort needs r >= 2(s-1)^2: r={r}, s={s}"
        )

    def factory(rank: int, P: int):
        from ..sim.collectives import exchange
        from ..sim.program import Compute

        def run():
            col = np.sort(np.asarray(chunks[rank], dtype=np.float64))

            def charge_sort(length):
                return Compute(
                    compare_cost * length * max(1.0, math.log2(max(length, 2))),
                    label="col-sort",
                )

            yield charge_sort(r)

            # Step 2: transpose-reshape.  Column-major position of my
            # element i is m = rank*r + i; it moves to column m % s,
            # height m // s.
            out: dict[int, list] = {}
            keep: list[tuple[int, float]] = []
            for i, v in enumerate(col):
                m = rank * r + i
                dst, pos = m % s, m // s
                if dst == rank:
                    keep.append((pos, float(v)))
                else:
                    out.setdefault(dst, []).append((pos, float(v)))
            got = yield from exchange(rank, P, out, tag="cs-T")
            col = np.empty(r)
            for pos, v in keep + [pv for _, pv in got]:
                col[pos] = v
            col.sort()  # step 3
            yield charge_sort(r)

            # Step 4: untranspose.  My element at height i sits at
            # row-major-ish position m = i*s + rank; it returns to
            # column m // r, height m % r.
            out, keep = {}, []
            for i, v in enumerate(col):
                m = i * s + rank
                dst, pos = m // r, m % r
                if dst == rank:
                    keep.append((pos, float(v)))
                else:
                    out.setdefault(dst, []).append((pos, float(v)))
            got = yield from exchange(rank, P, out, tag="cs-U")
            col = np.empty(r)
            for pos, v in keep + [pv for _, pv in got]:
                col[pos] = v
            col.sort()  # step 5
            yield charge_sort(r)

            # Step 6: shift by r/2.  Shifted column j holds the lower
            # half of column j-1 on top of the upper half of column j;
            # rank s-1 also owns the overflow column (lower half of
            # column s-1 plus +inf padding); virtual -inf padding fills
            # shifted column 0's top.
            half = r // 2
            out = {}
            if rank + 1 < s:
                out[rank + 1] = [("low", col[half:].tolist())]
            got = yield from exchange(rank, P, out, tag="cs-S")
            prev_low = (
                got[0][1][1] if got else [-math.inf] * half
            )
            mine = np.asarray(list(prev_low) + col[:half].tolist())
            mine.sort()  # step 7 on my shifted column
            yield charge_sort(r)
            overflow = None
            if rank == s - 1:
                overflow = np.asarray(
                    col[half:].tolist() + [math.inf] * half
                )
                overflow.sort()
                yield charge_sort(r)

            # Step 8: unshift — shifted column j returns its top half to
            # column j-1's bottom; the overflow column's finite values
            # return to column s-1's bottom.
            out = {}
            if rank > 0:
                out[rank - 1] = [("top", mine[:half].tolist())]
            got = yield from exchange(rank, P, out, tag="cs-V")
            if rank == s - 1:
                low_back = overflow[:half].tolist()
            else:
                low_back = got[0][1][1]
            col = np.asarray(mine[half:].tolist() + list(low_back))
            return col

        return run()

    return factory


def run_column_sort(
    params: LogPParams, data: np.ndarray, **machine_kwargs
) -> SortOutcome:
    """Split ``data`` into P equal columns and columnsort it on the
    simulator; returns the verified globally sorted array."""
    data = np.asarray(data, dtype=np.float64)
    P = params.P
    if len(data) % P:
        raise ValueError(f"data length {len(data)} must divide P={P}")
    chunks = list(data.reshape(P, -1))
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(column_sort_program(chunks))
    merged = np.concatenate([res.value(rank) for rank in range(P)])
    return SortOutcome(
        sorted_values=merged,
        makespan=res.makespan,
        machine=res,
        max_bucket=len(data) // P,
    )


def run_bitonic_sort(
    params: LogPParams, data: np.ndarray, **machine_kwargs
) -> SortOutcome:
    """Pad, split, and bitonic-sort ``data`` on the simulator.

    Pads with ``+inf`` to a multiple of ``P`` (padding removed from the
    returned array).
    """
    data = np.asarray(data, dtype=np.float64)
    P = params.P
    pad = (-len(data)) % P
    padded = np.concatenate([data, np.full(pad, np.inf)])
    chunks = list(padded.reshape(P, -1))
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(bitonic_sort_program(chunks))
    merged = np.concatenate([res.value(r) for r in range(P)])
    merged = merged[np.isfinite(merged)]
    return SortOutcome(
        sorted_values=merged,
        makespan=res.makespan,
        machine=res,
        max_bucket=len(padded) // P,
    )
