"""Optimal summation under LogP (Section 3.3, Figure 4).

The problem: sum as many values as possible within a deadline ``T``
("to obtain an optimal algorithm for the summation of n input values we
first consider how to sum as many values as possible within a fixed
amount of time T").  The communication pattern is a tree with the same
shape as the optimal broadcast tree, time-reversed:

* a node whose partial sum must be complete at time ``d`` receives from
  its j-th child a partial sum whose reception+add ends at
  ``d - j*step`` (``step = max(g, o+1)``: the receive gap, or the
  ``o``-cycle reception plus the 1-cycle add, whichever binds);
* that child must therefore have *sent* — i.e. completed its own sum —
  at ``d - (L + 2o + 1) - j*step``;
* between receptions the parent performs ``step - o - 1`` additions of
  local input values, and before its earliest reception it sums a
  leading chain of local inputs from time 0;
* a child is only worth having if its transmitted partial sum represents
  at least ``o`` additions (otherwise receiving it costs more than
  summing locally) — the paper's pruning rule;
* the inputs are *not* equally distributed over processors: each node's
  local input count falls out of its schedule.

For the paper's example — ``T=28, P=8, L=5, g=4, o=2`` — the tree has
root deadline 28, root children at deadlines 18, 14, 10, 6, grandchild
deadlines 8 and 4 under the first child and 4 under the second — exactly
the node labels of Figure 4 — and sums 79 input values.

The whole schedule is executable on the simulator
(:func:`summation_program`), where real floats flow up the tree and the
makespan must equal ``T`` exactly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace

from ..core.params import LogPParams

__all__ = [
    "SummationNode",
    "SummationTree",
    "optimal_summation_tree",
    "summation_capacity",
    "summation_time",
    "balanced_reduction_time",
    "summation_program",
    "simulated_summation_time",
    "distribute_inputs",
    "heal_summation_tree",
]


def _step(p: LogPParams) -> float:
    """Spacing between a node's consecutive reception slots.

    Each reception costs ``o`` and is followed by a 1-cycle add, and
    consecutive receptions must be ``g`` apart — so slots are
    ``max(g, o + 1)`` apart.  (The paper's ``g - o - 1`` local additions
    between messages presumes ``g >= o + 1``.)
    """
    return max(p.g, p.o + 1)


def _child_offset(p: LogPParams) -> float:
    """A child's completion deadline precedes its parent's receive-add
    deadline by ``L + 2o + 1``: send overhead + flight + receive overhead
    + the 1-cycle add ("the remote processor must have sent the value at
    time T - 1 - L - 2o")."""
    return p.L + 2 * p.o + 1


@dataclass(slots=True)
class SummationNode:
    """One processor's role in the summation tree."""

    rank: int
    deadline: float  # time its partial sum is complete (root: T)
    parent: int | None
    children: list[int] = field(default_factory=list)  # receive order: j=0 last
    local_inputs: int = 0
    leading_chain: float = 0.0  # cycles of initial local summing


@dataclass(slots=True)
class SummationTree:
    """The full summation schedule for deadline ``T``.

    ``nodes[r]`` describes processor ``r``; ``nodes[root].deadline == T``.
    ``total_values`` is the capacity: how many inputs get summed.
    """

    params: LogPParams
    T: float
    root: int
    nodes: list[SummationNode]

    @property
    def total_values(self) -> int:
        return sum(n.local_inputs for n in self.nodes)

    @property
    def processors_used(self) -> int:
        return len(self.nodes)

    def deadlines(self) -> list[float]:
        return [n.deadline for n in self.nodes]


def optimal_summation_tree(p: LogPParams, T: float) -> SummationTree:
    """Build the optimal summation tree for deadline ``T`` on ``p.P``
    processors, by time-reversing the greedy broadcast construction.

    Candidate child slots are expanded best-deadline-first; a slot is
    viable while its deadline allows at least ``o`` additions (the
    pruning rule) and processors remain.
    """
    if T < 0:
        raise ValueError(f"deadline T must be >= 0, got {T}")
    step = _step(p)
    offset = _child_offset(p)

    nodes = [SummationNode(rank=0, deadline=float(T), parent=None)]
    if p.P > 1:
        # Max-heap (negated deadline) of candidate slots:
        # (deadline, tiebreak, parent_rank).
        heap: list[tuple[float, int, int]] = []
        tie = 0
        first = T - offset
        if _viable(first, p):
            heapq.heappush(heap, (-first, tie, 0))
            tie += 1
        while heap and len(nodes) < p.P:
            neg_d, _, parent = heapq.heappop(heap)
            d = -neg_d
            rank = len(nodes)
            nodes.append(SummationNode(rank=rank, deadline=d, parent=parent))
            nodes[parent].children.append(rank)
            # Parent's next (one step earlier) slot.
            nxt = d - step
            if _viable(nxt, p):
                heapq.heappush(heap, (-nxt, tie, parent))
                tie += 1
            # New node's own first child slot.
            child = d - offset
            if _viable(child, p):
                heapq.heappush(heap, (-child, tie, rank))
                tie += 1

    tree = SummationTree(params=p, T=float(T), root=0, nodes=nodes)
    _fill_schedule(tree)
    return tree


def _viable(deadline: float, p: LogPParams) -> bool:
    """A subtree rooted at this deadline transmits >= o additions.

    A leaf with deadline ``d`` performs ``floor(d)`` additions; an
    internal node performs at least as many, so ``d >= o`` (and
    ``d >= 0``) is the viability test.  With ``o == 0`` a child must
    still carry at least one value, which any ``d >= 0`` leaf does.
    """
    return deadline >= max(p.o, 0.0)


def _fill_schedule(tree: SummationTree) -> None:
    """Compute each node's local input count and leading local chain."""
    p = tree.params
    step = _step(p)
    for node in tree.nodes:
        m = len(node.children)
        if m == 0:
            # Pure local summing for the whole deadline.
            node.leading_chain = node.deadline
            node.local_inputs = int(math.floor(node.deadline)) + 1
            continue
        # Receive-add for child j ends at deadline - j*step; the earliest
        # reception (child j = m-1) starts at:
        first_recv = node.deadline - 1 - (m - 1) * step - p.o
        if first_recv < 0:
            raise ValueError(
                f"infeasible schedule: node {node.rank} deadline "
                f"{node.deadline} cannot fit {m} receptions"
            )
        node.leading_chain = first_recv
        chain_adds = int(math.floor(first_recv))
        between = int(step - p.o - 1) * (m - 1)
        node.local_inputs = (chain_adds + 1) + between


def summation_capacity(p: LogPParams, T: float) -> int:
    """``C(T)``: the maximum number of values ``p.P`` processors can sum
    in time ``T`` (79 for the Figure 4 parameters)."""
    return optimal_summation_tree(p, T).total_values


def summation_time(p: LogPParams, n: int) -> float:
    """Minimum deadline ``T`` such that ``n`` values can be summed —
    the inverse of :func:`summation_capacity`, by binary search over
    integer deadlines (capacities step at integer T for integer params).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    lo, hi = 0, 1
    while summation_capacity(p, hi) < n:
        lo, hi = hi, hi * 2
        if hi > 10**9:
            raise ValueError(f"n={n} unreachable (capacity saturated)")
    while lo < hi:
        mid = (lo + hi) // 2
        if summation_capacity(p, mid) >= n:
            hi = mid
        else:
            lo = mid + 1
    return float(lo)


def balanced_reduction_time(p: LogPParams, n: int) -> float:
    """Baseline: equal distribution + binomial-tree reduction.

    Every processor sums ``ceil(n/P)`` local values, then a binomial
    reduction of depth ``ceil(log2 P)`` combines partials.  A level
    costs ``L + 2o + 1`` (send, fly, receive, add), but on
    bandwidth-starved machines the receive gap binds instead: a node
    receives one partial per level, and consecutive receptions must
    start ``g`` apart, so each level costs at least ``g + o + 1``.
    This is what a parameter-oblivious implementation does, and what
    the optimal schedule beats by overlapping local work with
    reception.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    local = math.ceil(n / p.P) - 1
    depth = math.ceil(math.log2(p.P)) if p.P > 1 else 0
    level = max(p.L + 2 * p.o + 1, p.g + p.o + 1)
    return local + depth * level


def simulated_summation_time(
    tree: SummationTree, values=None, *, backend: str = "auto"
) -> float:
    """Executed makespan of ``tree``'s schedule on a simulation backend.

    Runs :func:`summation_program` through
    :func:`repro.sim.sweep.grid_map` at ``tree.params`` — the compiled
    fast path under ``backend="auto"``/``"compiled"``, the event
    machine under ``"machine"``; the value is identical either way.
    Equals ``tree.T`` exactly when the root's schedule is tight.

    ``values`` defaults to all-ones (only the timing is of interest
    here; use :func:`summation_program` directly to check sums).
    """
    if values is None:
        values = [1.0] * tree.total_values
    inputs = distribute_inputs(tree, values)
    from ..sim.sweep import grid_map

    [(makespan, _)] = grid_map(
        summation_program(tree, inputs), [tree.params], backend=backend
    )
    return makespan


def distribute_inputs(tree: SummationTree, values) -> list[list[float]]:
    """Split ``values`` (length ``tree.total_values``) into per-processor
    input lists following the tree's (unequal) distribution."""
    values = list(values)
    if len(values) != tree.total_values:
        raise ValueError(
            f"expected {tree.total_values} values, got {len(values)}"
        )
    out: list[list[float]] = []
    pos = 0
    for node in tree.nodes:
        out.append(values[pos : pos + node.local_inputs])
        pos += node.local_inputs
    return out


def summation_program(tree: SummationTree, inputs: list[list[float]]):
    """Program factory executing the summation schedule on the simulator.

    Processor ``r`` runs node ``r``'s schedule: sum the leading chain of
    local inputs, then alternately receive a child's partial sum, add it
    (1 cycle) and sum ``step - o - 1`` more local inputs, finally send
    the partial to the parent at the node's deadline.  On a deterministic
    machine the run's makespan equals ``tree.T`` exactly (when the root's
    schedule is tight) and the root's program returns the true sum.

    Ranks without a node in the tree idle (nodes are matched to
    processors by ``node.rank``, so healed trees — whose surviving
    roles are scattered over the physical ranks — execute directly;
    see :func:`heal_summation_tree`).
    """
    p = tree.params
    step = _step(p)
    by_rank = {
        node.rank: (node, inputs[i]) for i, node in enumerate(tree.nodes)
    }

    def factory(rank: int, P: int):
        def idle():
            return None
            yield  # pragma: no cover - makes this a generator

        if rank not in by_rank:
            return idle()
        node, my_inputs = by_rank[rank]
        vals = list(my_inputs)

        def run():
            from ..sim.program import Compute, Recv, Send

            acc = 0.0
            m = len(node.children)
            # Leading chain: sum chain_adds+1 local inputs in
            # leading_chain cycles (leaves: the whole deadline).
            chain_adds = int(math.floor(node.leading_chain))
            take = chain_adds + 1
            acc = sum(vals[:take])
            consumed = take
            if node.leading_chain > 0:
                yield Compute(node.leading_chain, label="local-chain")
            # Receive children j = m-1 (earliest) down to j = 0 (last).
            for idx in range(m):
                msg = yield Recv(tag="sum")
                acc += msg.payload
                yield Compute(1, label="add-partial")
                if idx != m - 1:
                    extra = int(step - p.o - 1)
                    if extra > 0:
                        acc += sum(vals[consumed : consumed + extra])
                        consumed += extra
                        yield Compute(extra, label="local-between")
            if node.parent is not None:
                yield Send(node.parent, payload=acc, tag="sum")
                return None
            return acc

        return run()

    return factory


def heal_summation_tree(tree: SummationTree, dead) -> SummationTree:
    """Statically replan a summation around dead processors.

    Rebuilds the optimal summation schedule on the survivors for the
    *same* ``tree.total_values`` inputs — the dead ranks' leaves are
    re-assigned into the survivors' local chains and the deadline grows
    to the minimum ``T'`` at which the shrunken machine can cover them
    (``T' >= tree.T``, with equality when the tree had processors to
    spare).  Node roles are relabeled onto the surviving physical
    ranks, so the healed tree runs directly through
    :func:`summation_program` on the original ``P``-processor machine
    (dead ranks idle); surplus capacity at ``T'`` is trimmed off the
    deepest nodes' local chains.

    This is the static half of the self-healing story: recovery *before*
    launch, given a failure detector's verdict.  The dynamic half —
    re-routing mid-reduction when a rank dies under the protocol — is
    :func:`repro.sim.collectives.ft_reduce`.
    """
    dead = frozenset(dead)
    P = tree.params.P
    bad = [r for r in dead if not 0 <= r < P]
    if bad:
        raise ValueError(f"dead ranks {sorted(bad)} outside 0..{P - 1}")
    survivors = [r for r in range(P) if r not in dead]
    if not survivors:
        raise ValueError("no survivors: every processor is dead")
    n = tree.total_values
    q = replace(tree.params, P=len(survivors))
    healed_T = summation_time(q, n)
    base = optimal_summation_tree(q, healed_T)

    # Relabel logical roles 0..k onto the surviving physical ranks.
    nodes = [
        SummationNode(
            rank=survivors[node.rank],
            deadline=node.deadline,
            parent=None if node.parent is None else survivors[node.parent],
            children=[survivors[c] for c in node.children],
            local_inputs=node.local_inputs,
            leading_chain=node.leading_chain,
        )
        for node in base.nodes
    ]

    # Trim surplus capacity (deepest roles first) so the healed tree
    # covers exactly the original inputs.
    excess = base.total_values - n
    for node in reversed(nodes):
        if excess <= 0:
            break
        cut = min(excess, node.local_inputs)
        node.local_inputs -= cut
        excess -= cut

    return SummationTree(
        params=tree.params, T=float(healed_T), root=survivors[0], nodes=nodes
    )
