"""The FFT case study (Section 4.1, Figures 5-8).

The paper works through the n-input butterfly: data placement (cyclic,
blocked, and the hybrid layout that turns ``log P`` exchange phases into
one all-to-all remap), the communication *schedule* for that remap
(naive = everyone floods destination 0 first; staggered = processor i
starts at destination i+1 and wraps), and a quantitative CM-5 prediction.

This module implements all of it with real numerics:

* a from-scratch radix-2 decimation-in-frequency FFT whose stage
  structure *is* the paper's butterfly (column 1 pairs rows differing in
  the most significant bit; outputs emerge in bit-reversed order, as the
  paper notes);
* the three layouts, with remote-reference counting per column — the
  Figure 5 exhibit;
* a multi-processor in-memory execution of the hybrid algorithm (for
  numerical validation against ``numpy.fft``) and a full data-carrying
  execution on the discrete-event simulator (for timing validation);
* the remap-phase simulation used by the Figure 6 and Figure 8
  benchmarks: per-point send loops with naive/staggered destination
  order, optional per-processor compute jitter (the "processors
  gradually drift out of sync" effect), optional hardware barrier every
  ``n/P**2`` messages (the paper's fix), and a double-network ``g/2``
  variant.

All butterfly work is charged at 1 cycle per node, matching the model's
convention; the CM-5 calibration (4.5 us per butterfly, Section 4.1.4)
lives in :mod:`repro.machines.cm5`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.params import LogPParams
from ..sim.latency import LatencyModel
from ..sim.machine import LogPMachine, MachineResult
from ..sim.program import Barrier, Compute, Poll, Recv, Send

__all__ = [
    "bit_reverse_permutation",
    "fft_dif",
    "fft_natural",
    "cyclic_proc",
    "blocked_proc",
    "cyclic_rows",
    "blocked_rows",
    "LayoutColumnCost",
    "remote_reference_profile",
    "hybrid_fft_inmemory",
    "distributed_fft_program",
    "run_distributed_fft",
    "RemapResult",
    "remap_program",
    "simulate_remap",
    "remap_time_grid",
    "remap_message_count",
]


# ----------------------------------------------------------------------
# Local FFT kernel (the butterfly itself)
# ----------------------------------------------------------------------


def _check_pow2(n: int, name: str = "n") -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"{name} must be a power of two >= 1, got {n}")
    return int(math.log2(n))


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices ``rev`` such that ``x[rev]`` bit-reverses ``log2 n``-bit
    row numbers (the reordering the paper notes FFT outputs need)."""
    bits = _check_pow2(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev = (rev << 1) | ((np.arange(n) >> b) & 1)
    return rev


def fft_dif(x: np.ndarray) -> np.ndarray:
    """Radix-2 decimation-in-frequency FFT; output in bit-reversed order.

    Stage ``s`` (0-based) pairs rows differing in bit ``log2(n)-1-s`` —
    stage 0 pairs rows differing in the most significant bit, exactly the
    paper's butterfly column 1.  One stage costs ``n`` butterfly node
    updates (``n/2`` butterflies), 10 flops each for complex data.
    """
    x = np.asarray(x, dtype=np.complex128).copy()
    n = x.shape[0]
    bits = _check_pow2(n)
    for s in range(bits):
        m = n >> s
        half = m >> 1
        blocks = x.reshape(-1, m)
        u = blocks[:, :half].copy()
        v = blocks[:, half:].copy()
        w = np.exp(-2j * np.pi * np.arange(half) / m)
        blocks[:, :half] = u + v
        blocks[:, half:] = (u - v) * w
    return x


def fft_natural(x: np.ndarray) -> np.ndarray:
    """DIF FFT with the bit-reversal applied — directly comparable to
    ``numpy.fft.fft``."""
    out = fft_dif(x)
    return out[bit_reverse_permutation(out.shape[0])]


def _dif_stage_rows(
    values: np.ndarray, rows: np.ndarray, s: int, n: int
) -> None:
    """Apply DIF stage ``s`` in place to a subset of rows.

    ``rows`` (sorted, globally numbered) must be closed under flipping
    bit ``log2(n)-1-s`` — i.e. the stage must be local to this
    processor's layout, which is exactly what the layout analysis
    guarantees for the phases each layout keeps local.
    """
    bits = _check_pow2(n)
    if not 0 <= s < bits:
        raise ValueError(f"stage {s} out of range for n={n}")
    m = n >> s
    half = m >> 1
    lower = (rows & half) == 0
    low_rows = rows[lower]
    partner_pos = np.searchsorted(rows, low_rows | half)
    if partner_pos.max(initial=-1) >= len(rows) or not np.array_equal(
        rows[partner_pos], low_rows | half
    ):
        raise ValueError(
            f"stage {s} is not local to this row set (bit {bits - 1 - s})"
        )
    low_pos = np.flatnonzero(lower)
    u = values[low_pos]
    v = values[partner_pos]
    w = np.exp(-2j * np.pi * (low_rows & (half - 1)) / m)
    values[low_pos] = u + v
    values[partner_pos] = (u - v) * w


# ----------------------------------------------------------------------
# Layouts (Section 4.1.1, Figure 5)
# ----------------------------------------------------------------------


def cyclic_proc(r: int | np.ndarray, n: int, P: int):
    """Cyclic layout: row ``r`` lives on processor ``r mod P``."""
    return r % P


def blocked_proc(r: int | np.ndarray, n: int, P: int):
    """Blocked layout: row ``r`` lives on processor ``r // (n/P)``."""
    return r // (n // P)


def cyclic_rows(rank: int, n: int, P: int) -> np.ndarray:
    """Rows owned by ``rank`` under the cyclic layout (sorted)."""
    return np.arange(rank, n, P, dtype=np.int64)


def blocked_rows(rank: int, n: int, P: int) -> np.ndarray:
    """Rows owned by ``rank`` under the blocked layout (sorted)."""
    chunk = n // P
    return np.arange(rank * chunk, (rank + 1) * chunk, dtype=np.int64)


@dataclass(frozen=True, slots=True)
class LayoutColumnCost:
    """Remote-reference count for one butterfly column under one layout."""

    column: int  # 1-based, as in Figure 5
    remote_nodes: int  # nodes needing a remote datum (whole machine)
    local_nodes: int


def remote_reference_profile(
    n: int, P: int, layout: str, remap_col: int | None = None
) -> list[LayoutColumnCost]:
    """Per-column remote-reference counts — the quantitative content of
    Figure 5.

    Under ``"cyclic"`` the first ``log(n/P)`` columns are fully local and
    the last ``log P`` fully remote; ``"blocked"`` is the mirror image;
    ``"hybrid"`` is local everywhere, with the single remap between
    columns ``remap_col`` and ``remap_col + 1`` (default ``log P``).
    """
    bits = _check_pow2(n)
    pbits = _check_pow2(P, "P")
    if P > n:
        raise ValueError(f"P={P} exceeds n={n}")
    out: list[LayoutColumnCost] = []
    for c in range(1, bits + 1):
        # Column c pairs rows differing in bit (bits - c) — MSB first.
        bit = bits - c
        if layout == "cyclic":
            remote = bit < pbits  # low bits determine the owner
        elif layout == "blocked":
            remote = bit >= bits - pbits
        elif layout == "hybrid":
            rc = pbits if remap_col is None else remap_col
            if not pbits <= rc <= bits - pbits:
                raise ValueError(
                    f"remap column {rc} outside [log P, log(n/P)] = "
                    f"[{pbits}, {bits - pbits}]"
                )
            remote = bit < pbits if c <= rc else bit >= bits - pbits
        else:
            raise ValueError(f"unknown layout {layout!r}")
        out.append(
            LayoutColumnCost(
                column=c,
                remote_nodes=n if remote else 0,
                local_nodes=0 if remote else n,
            )
        )
    return out


# ----------------------------------------------------------------------
# Hybrid algorithm, in-memory (numerical ground truth)
# ----------------------------------------------------------------------


def hybrid_fft_inmemory(
    x: np.ndarray, P: int, remap_col: int | None = None
) -> np.ndarray:
    """Run the hybrid-layout FFT as ``P`` cooperating memory regions.

    Phase I: every "processor" applies the first ``remap_col`` stages to
    its cyclic rows (all local).  Remap: cyclic -> blocked exchange.
    Phase III: remaining stages on blocked rows (all local).  Returns
    the transform in natural order; agrees with ``numpy.fft.fft`` to
    machine precision.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    bits = _check_pow2(n)
    pbits = _check_pow2(P, "P")
    if n < P * P and P > 1:
        raise ValueError(f"hybrid layout needs n >= P**2 (n={n}, P={P})")
    rc = pbits if remap_col is None else remap_col
    if not pbits <= rc <= bits - pbits:
        raise ValueError(
            f"remap column {rc} outside [log P, log(n/P)]"
        )

    # Phase I on cyclic rows.
    parts = []
    for rank in range(P):
        rows = cyclic_rows(rank, n, P)
        vals = x[rows].copy()
        for s in range(rc):
            _dif_stage_rows(vals, rows, s, n)
        parts.append((rows, vals))

    # Remap: reassemble globally, redistribute blocked.
    full = np.empty(n, dtype=np.complex128)
    for rows, vals in parts:
        full[rows] = vals

    # Phase III on blocked rows.
    out = np.empty(n, dtype=np.complex128)
    for rank in range(P):
        rows = blocked_rows(rank, n, P)
        vals = full[rows].copy()
        for s in range(rc, bits):
            _dif_stage_rows(vals, rows, s, n)
        out[rows] = vals

    return out[bit_reverse_permutation(n)]


# ----------------------------------------------------------------------
# Full data-carrying execution on the simulator
# ----------------------------------------------------------------------


def distributed_fft_program(
    x: np.ndarray,
    stagger: bool = True,
    remap_col: int | None = None,
    cost_per_node: float = 1.0,
):
    """Program factory: the hybrid FFT with real data on the simulator.

    Each processor computes phase I on its cyclic rows (charged
    ``cost_per_node`` cycles per butterfly node), sends each migrating
    ``(row, value)`` point-to-point during the remap (naive or staggered
    destination order), computes phase III, and returns its
    ``(rows, values)`` chunk.  Use :func:`run_distributed_fft` to
    assemble and verify.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    bits = _check_pow2(n)

    def factory(rank: int, P: int):
        pbits = _check_pow2(P, "P")
        rc = pbits if remap_col is None else remap_col

        def run():
            rows = cyclic_rows(rank, n, P)
            vals = x[rows].copy()
            for s in range(rc):
                _dif_stage_rows(vals, rows, s, n)
                yield Compute(cost_per_node * len(rows), label=f"phaseI-s{s}")

            # Remap to blocked layout.
            my_block = blocked_rows(rank, n, P)
            dest = blocked_proc(rows, n, P)
            keep = dest == rank
            outgoing: dict[int, list[tuple[int, complex]]] = {}
            for r, v, d in zip(rows[~keep], vals[~keep], dest[~keep]):
                outgoing.setdefault(int(d), []).append((int(r), complex(v)))
            expected = len(my_block) - int(keep.sum())

            order = (
                [(rank + k) % P for k in range(1, P)]
                if stagger
                else [d for d in range(P) if d != rank]
            )
            for dst in order:
                for item in outgoing.get(dst, ()):
                    yield Send(dst, payload=item, tag="remap")

            new_vals = np.empty(len(my_block), dtype=np.complex128)
            base = my_block[0]
            new_vals[rows[keep] - base] = vals[keep]
            for _ in range(expected):
                msg = yield Recv(tag="remap")
                r, v = msg.payload
                new_vals[r - base] = v

            for s in range(rc, bits):
                _dif_stage_rows(new_vals, my_block, s, n)
                yield Compute(
                    cost_per_node * len(my_block), label=f"phaseIII-s{s}"
                )
            return (my_block, new_vals)

        return run()

    return factory


def run_distributed_fft(
    params: LogPParams,
    x: np.ndarray,
    stagger: bool = True,
    remap_col: int | None = None,
    cost_per_node: float = 1.0,
    **machine_kwargs,
) -> tuple[np.ndarray, MachineResult]:
    """Execute the distributed FFT on the simulator and assemble the
    natural-order result.  Returns ``(transform, machine_result)``."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(
        distributed_fft_program(x, stagger, remap_col, cost_per_node)
    )
    full = np.empty(n, dtype=np.complex128)
    for rank in range(params.P):
        rows, vals = res.value(rank)
        full[rows] = vals
    return full[bit_reverse_permutation(n)], res


# ----------------------------------------------------------------------
# Remap-phase simulation (Figures 6 and 8)
# ----------------------------------------------------------------------


def remap_message_count(n: int, P: int) -> int:
    """Messages each processor sends during the remap:
    ``n/P - n/P**2`` (``n/P**2`` to each of the other ``P-1``)."""
    _check_pow2(n)
    _check_pow2(P, "P")
    if n < P * P and P > 1:
        raise ValueError(f"remap needs n >= P**2 (n={n}, P={P})")
    return n // P - n // (P * P)


@dataclass(frozen=True, slots=True)
class RemapResult:
    """Outcome of one remap-phase simulation."""

    params: LogPParams
    n: int
    schedule: str
    makespan: float  # cycles
    messages_per_proc: int
    total_stall: float
    cycles_per_point: float  # makespan / (n/P)

    def rate(self, bytes_per_message: float, cycle_seconds: float) -> float:
        """Per-processor communication rate in bytes/second given the
        machine's cycle length (Figure 8's MB/s axis)."""
        if self.makespan == 0:
            return 0.0
        sent = self.messages_per_proc * bytes_per_message
        return sent / (self.makespan * cycle_seconds)


def remap_program(
    n: int,
    schedule: str = "staggered",
    *,
    point_cost: float = 0.0,
    barrier_every: int | None = None,
):
    """Program factory for the cyclic->blocked remap phase.

    ``P``-generic: per-destination counts derive from the ``P`` each
    generator is built with, so one factory serves a whole parameter
    grid (including grids that vary ``P``).  Shared by
    :func:`simulate_remap` and :func:`remap_time_grid`.
    """
    if schedule not in ("staggered", "naive"):
        raise ValueError(
            f"schedule must be 'staggered' or 'naive', got {schedule!r}"
        )

    def factory(rank: int, P: int):
        per_dst = n // (P * P)
        k = remap_message_count(n, P)

        def run():
            order = (
                [(rank + j) % P for j in range(1, P)]
                if schedule == "staggered"
                else [d for d in range(P) if d != rank]
            )
            sent = 0
            for dst in order:
                for i in range(per_dst):
                    if point_cost > 0:
                        yield Compute(point_cost, label="point-loop")
                    # Active-message discipline: poll the network each
                    # iteration so reception interleaves with the send
                    # loop (the CM-5 communication layer's behaviour).
                    yield Poll()
                    yield Send(dst, payload=None, tag="remap")
                    sent += 1
                    if barrier_every and sent % barrier_every == 0:
                        yield Barrier()
            for _ in range(k):
                yield Recv(tag="remap")
            return None

        return run()

    return factory


def remap_time_grid(
    grid,
    n: int,
    schedule: str = "staggered",
    *,
    backend: str = "auto",
    point_cost: float = 0.0,
    jitter=None,
    barrier_every: int | None = None,
    double_net: bool = False,
    max_events: int = 200_000_000,
) -> list[RemapResult]:
    """Predict the remap phase across a whole ``LogPParams`` grid.

    The Figure 6/8 curves are exactly this shape — one schedule, many
    ``(L, o, g, P)`` points — so the grid goes through
    :func:`repro.sim.sweep.grid_map`: under ``backend="auto"`` /
    ``"compiled"`` the program is lowered once per distinct ``P`` and
    every point is replayed through the vectorized compiled evaluator;
    ``"machine"`` runs the event machine per point.  Results are
    identical across backends (each ``RemapResult`` matches
    :func:`simulate_remap` at that point bit-for-bit).
    """
    from ..sim.sweep import grid_map

    pts = list(grid)
    if double_net:
        from dataclasses import replace

        pts = [replace(p, g=p.g / 2, name=p._tag("2net")) for p in pts]
    factory = remap_program(
        n, schedule, point_cost=point_cost, barrier_every=barrier_every
    )
    pairs = grid_map(
        factory,
        pts,
        backend=backend,
        compute_jitter=jitter,
        max_events=max_events,
    )
    out = []
    for p, (makespan, stall) in zip(pts, pairs):
        out.append(
            RemapResult(
                params=p,
                n=n,
                schedule=schedule,
                makespan=makespan,
                messages_per_proc=remap_message_count(n, p.P),
                total_stall=stall,
                cycles_per_point=makespan / (n / p.P),
            )
        )
    return out


def simulate_remap(
    params: LogPParams,
    n: int,
    schedule: str = "staggered",
    *,
    point_cost: float = 0.0,
    jitter=None,
    barrier_every: int | None = None,
    latency: LatencyModel | None = None,
    double_net: bool = False,
    trace: bool = False,
    max_events: int = 200_000_000,
) -> RemapResult:
    """Simulate the cyclic->blocked remap phase in isolation.

    Args:
        params: machine parameters (``P`` from here).
        n: FFT size (``n >= P**2``).
        schedule: ``"staggered"`` (contention-free, Section 4.1.2) or
            ``"naive"`` (all processors walk destinations 0,1,2,...).
        point_cost: cycles of local work per point before its send — the
            paper's ~1 us/point load/store loop.
        jitter: optional ``f(rank, cycles) -> cycles`` compute jitter;
            models the processor drift that degrades the staggered
            schedule at large n (Figure 8).
        barrier_every: insert a hardware barrier after this many sends
            per processor (the paper barriers every ``n/P**2`` messages).
        latency: alternative latency model (drift can also enter here).
        double_net: halve ``g`` — the paper's both-fat-trees experiment.
            Improvement is small when the remap is overhead-limited.
        trace: keep the full schedule (memory-heavy for big runs).
    """
    if schedule not in ("staggered", "naive"):
        raise ValueError(f"schedule must be 'staggered' or 'naive', got {schedule!r}")
    p = params
    if double_net:
        from dataclasses import replace

        p = replace(p, g=p.g / 2, name=p._tag("2net"))
    k = remap_message_count(n, p.P)
    factory = remap_program(
        n, schedule, point_cost=point_cost, barrier_every=barrier_every
    )

    machine = LogPMachine(
        p,
        latency=latency,
        compute_jitter=jitter,
        trace=trace,
        max_events=max_events,
    )
    res = machine.run(factory)
    return RemapResult(
        params=p,
        n=n,
        schedule=schedule,
        makespan=res.makespan,
        messages_per_proc=k,
        total_stall=res.total_stall_time,
        cycles_per_point=res.makespan / (n / p.P),
    )
