"""LU decomposition layouts (Section 4.2.1).

The paper's linear-algebra discussion is about *where the data lives*:

* a **bad** layout makes every processor fetch the whole pivot row and
  multiplier column — ``2(n-k)g + L`` per step;
* a **column** layout halves that (only multipliers move);
* a **grid** layout cuts communication by ``sqrt(P)``;
* within the grid, **blocked** allocation idles processors as the
  active submatrix shrinks ("only one processor is active for the last
  ``n/sqrt(P)`` elimination steps"), while **scattered** (cyclic)
  allocation keeps all ``P`` busy almost to the end — "the fastest
  Linpack benchmark programs actually employ a scattered grid layout, a
  scheme whose benefits are obvious from our model."

This module provides a from-scratch partial-pivoting kernel, a
step-by-step multi-processor in-memory execution that records the
paper's statistics (communication volume, active processors, per-step
load balance) under all four layouts, a LogP time prediction for each,
and a message-passing execution of the column-cyclic algorithm on the
discrete-event simulator with real matrix data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.params import LogPParams
from ..core.analysis import lu_comm_per_step, lu_compute_per_step

__all__ = [
    "lu_factor",
    "reconstruct",
    "Layout",
    "make_layout",
    "LUStepStats",
    "LUTraceStats",
    "distributed_lu",
    "predict_lu_time",
    "lu_sim_program",
    "run_lu_on_machine",
]


# ----------------------------------------------------------------------
# Serial kernel (ground truth)
# ----------------------------------------------------------------------


def lu_factor(A: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LU with partial pivoting, from scratch: returns ``(piv, L, U)``
    with ``A[piv] == L @ U``, L unit lower triangular.

    ``piv`` is the row-permutation vector (``PA = LU`` with ``P`` the
    permutation selecting rows ``piv``).
    """
    A = np.array(A, dtype=np.float64)
    n, m = A.shape
    if n != m:
        raise ValueError(f"matrix must be square, got {A.shape}")
    piv = np.arange(n)
    for k in range(n - 1):
        p = k + int(np.argmax(np.abs(A[k:, k])))
        if A[p, k] == 0.0:
            raise np.linalg.LinAlgError(f"singular at step {k}")
        if p != k:
            A[[k, p]] = A[[p, k]]
            piv[[k, p]] = piv[[p, k]]
        A[k + 1 :, k] /= A[k, k]
        A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k, k + 1 :])
    L = np.tril(A, -1) + np.eye(n)
    U = np.triu(A)
    return piv, L, U


def reconstruct(piv: np.ndarray, L: np.ndarray, U: np.ndarray) -> np.ndarray:
    """Undo the factorization: returns the original ``A`` from
    ``(piv, L, U)``."""
    PA = L @ U
    A = np.empty_like(PA)
    A[piv] = PA
    return A


# ----------------------------------------------------------------------
# Layouts
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Layout:
    """An element-to-processor mapping for an ``n x n`` matrix.

    ``kind`` is one of ``"bad"``, ``"column-blocked"``,
    ``"column-cyclic"``, ``"grid-blocked"``, ``"grid-scattered"``.
    """

    kind: str
    n: int
    P: int

    def owner(self, i: np.ndarray | int, j: np.ndarray | int):
        """Processor owning element ``(i, j)`` (vectorized)."""
        n, P = self.n, self.P
        if self.kind == "bad":
            # Row-cyclic: forces both pivot row and multiplier column to
            # be fetched by everyone for the rank-1 update.
            return (np.asarray(i) + np.asarray(j)) % P
        if self.kind == "column-blocked":
            return np.asarray(j) // max(1, n // P)
        if self.kind == "column-cyclic":
            return np.asarray(j) % P
        root = math.isqrt(P)
        if self.kind == "grid-blocked":
            tile = max(1, n // root)
            return np.minimum(np.asarray(i) // tile, root - 1) * root + np.minimum(
                np.asarray(j) // tile, root - 1
            )
        if self.kind == "grid-scattered":
            return (np.asarray(i) % root) * root + (np.asarray(j) % root)
        raise ValueError(f"unknown layout kind {self.kind!r}")

    @property
    def analysis_kind(self) -> str:
        """The Section 4.2.1 cost-formula family this layout belongs to."""
        if self.kind == "bad":
            return "bad"
        if self.kind.startswith("column"):
            return "column"
        return "grid"


_KINDS = (
    "bad",
    "column-blocked",
    "column-cyclic",
    "grid-blocked",
    "grid-scattered",
)


def make_layout(kind: str, n: int, P: int) -> Layout:
    """Construct a layout, validating grid squareness."""
    if kind not in _KINDS:
        raise ValueError(f"layout kind must be one of {_KINDS}, got {kind!r}")
    if kind.startswith("grid"):
        root = math.isqrt(P)
        if root * root != P:
            raise ValueError(f"grid layouts need square P, got {P}")
    return Layout(kind, n, P)


# ----------------------------------------------------------------------
# In-memory multi-processor execution with statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LUStepStats:
    """Statistics for one elimination step."""

    k: int
    active_processors: int  # processors owning updated elements
    max_updates: int  # busiest processor's update count
    total_updates: int
    comm_values_received_max: int  # pivot/multiplier values at busiest proc


@dataclass(slots=True)
class LUTraceStats:
    """Aggregated statistics for a full factorization."""

    layout: Layout
    steps: list[LUStepStats] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """Sum over steps of (max - mean) update counts, normalized by
        total work — 0 means perfectly balanced."""
        excess = 0.0
        total = 0.0
        P = self.layout.P
        for s in self.steps:
            mean = s.total_updates / P
            excess += s.max_updates - mean
            total += s.total_updates / P
        return excess / total if total else 0.0

    @property
    def mean_active(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.active_processors for s in self.steps) / len(self.steps)

    def tail_active(self, frac: float = 0.1) -> float:
        """Mean active processors over the final ``frac`` of steps — the
        blocked-grid idling shows up here."""
        tail = self.steps[int(len(self.steps) * (1 - frac)) :]
        if not tail:
            return 0.0
        return sum(s.active_processors for s in tail) / len(tail)


def distributed_lu(
    A: np.ndarray, layout: Layout
) -> tuple[np.ndarray, np.ndarray, np.ndarray, LUTraceStats]:
    """Step-by-step LU under a layout, recording per-step statistics.

    The numerics are identical to :func:`lu_factor` (same pivoting); the
    layout determines which processor performs each update and how many
    pivot-row/multiplier values each processor must receive, which is
    what the statistics capture.
    """
    A = np.array(A, dtype=np.float64)
    n = A.shape[0]
    if layout.n != n:
        raise ValueError(
            f"layout built for n={layout.n}, matrix is {n}x{n}"
        )
    piv = np.arange(n)
    stats = LUTraceStats(layout=layout)
    P = layout.P
    jj, ii = np.meshgrid(np.arange(n), np.arange(n))
    owner = np.asarray(layout.owner(ii, jj))

    for k in range(n - 1):
        p = k + int(np.argmax(np.abs(A[k:, k])))
        if A[p, k] == 0.0:
            raise np.linalg.LinAlgError(f"singular at step {k}")
        if p != k:
            A[[k, p]] = A[[p, k]]
            piv[[k, p]] = piv[[p, k]]
        A[k + 1 :, k] /= A[k, k]
        sub_owner = owner[k + 1 :, k + 1 :]
        counts = np.bincount(sub_owner.ravel(), minlength=P)
        active = int((counts > 0).sum())
        # Communication: processor q updating element (i, j) needs
        # multiplier L[i, k] (owned by owner[i, k]) and pivot-row value
        # U[k, j] (owned by owner[k, j]).  Count distinct remote values
        # needed per processor.
        m = n - 1 - k
        recv_max = 0
        if m > 0:
            for q in range(P):
                mask = sub_owner == q
                if not mask.any():
                    continue
                rows_needed = np.unique(np.nonzero(mask.any(axis=1))[0] + k + 1)
                cols_needed = np.unique(np.nonzero(mask.any(axis=0))[0] + k + 1)
                mult_remote = int(
                    (np.asarray(layout.owner(rows_needed, np.full_like(rows_needed, k))) != q).sum()
                )
                pivrow_remote = int(
                    (np.asarray(layout.owner(np.full_like(cols_needed, k), cols_needed)) != q).sum()
                )
                recv_max = max(recv_max, mult_remote + pivrow_remote)
        stats.steps.append(
            LUStepStats(
                k=k,
                active_processors=active,
                max_updates=int(counts.max()) if m > 0 else 0,
                total_updates=int(counts.sum()),
                comm_values_received_max=recv_max,
            )
        )
        A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k, k + 1 :])

    L = np.tril(A, -1) + np.eye(n)
    U = np.triu(A)
    return piv, L, U, stats


def predict_lu_time(
    p: LogPParams, n: int, layout: Layout, *, from_stats: LUTraceStats | None = None
) -> float:
    """Predicted LU time in cycles under a layout.

    With ``from_stats`` the compute term uses the *measured* per-step
    maximum update count (so blocked-grid load imbalance is charged);
    otherwise the balanced closed form ``2(n-k)**2/P`` is used.  The
    communication term is the Section 4.2.1 formula for the layout's
    family, with pivot/multiplier values pipelined one per ``g``.
    """
    total = 0.0
    for k in range(n - 1):
        if from_stats is not None:
            total += 2.0 * from_stats.steps[k].max_updates
        else:
            total += lu_compute_per_step(n, k, p.P)
        total += lu_comm_per_step(p, n, k, layout.analysis_kind)
    return total


# ----------------------------------------------------------------------
# Message-passing execution on the simulator (column-cyclic)
# ----------------------------------------------------------------------


def lu_sim_program(A: np.ndarray, update_cost: float = 2.0):
    """Program factory: column-cyclic LU with real data on the simulator.

    Processor ``q`` owns columns ``j % P == q``.  At step ``k`` the owner
    of column ``k`` scales it and broadcasts the multiplier column over
    the binomial tree ("only the multipliers need be broadcast since
    pivot row elements are used only for updates of elements in the same
    column"); everyone then applies the rank-1 update to its columns,
    charged ``update_cost`` cycles per element.  Pivot search runs on
    the column owner (partial pivoting preserved exactly).

    Each program returns ``(cols, data)``; assemble with
    :func:`run_lu_on_machine`.
    """
    A = np.array(A, dtype=np.float64)
    n = A.shape[0]

    def factory(rank: int, P: int):
        from ..sim.collectives import binomial_broadcast
        from ..sim.program import Compute

        def run():
            cols = np.arange(rank, n, P)
            data = A[:, cols].copy()
            piv = np.arange(n)
            for k in range(n - 1):
                owner = k % P
                if rank == owner:
                    jloc = np.searchsorted(cols, k)
                    col = data[:, jloc]
                    p_row = k + int(np.argmax(np.abs(col[k:])))
                    yield Compute(float(n - k), label=f"pivot-{k}")
                    payload = (p_row, None)
                else:
                    payload = None
                p_row, _ = yield from binomial_broadcast(
                    rank, P, payload, root=owner, tag=("pivrow", k)
                )
                if p_row != k:
                    data[[k, p_row]] = data[[p_row, k]]
                    if rank == 0:
                        piv[[k, p_row]] = piv[[p_row, k]]
                if rank == owner:
                    jloc = np.searchsorted(cols, k)
                    data[k + 1 :, jloc] /= data[k, jloc]
                    mult = data[k + 1 :, jloc].copy()
                    yield Compute(float(n - 1 - k), label=f"scale-{k}")
                else:
                    mult = None
                mult = yield from binomial_broadcast(
                    rank, P, mult, root=owner, tag=("mult", k)
                )
                mine = cols > k
                if mine.any():
                    data[k + 1 :, mine] -= np.outer(mult, data[k, mine])
                    updates = (n - 1 - k) * int(mine.sum())
                    if updates:
                        yield Compute(update_cost * updates, label=f"update-{k}")
            if rank == 0:
                return (cols, data, piv)
            return (cols, data, None)

        return run()

    return factory


def run_lu_on_machine(
    params: LogPParams, A: np.ndarray, **machine_kwargs
) -> tuple[np.ndarray, np.ndarray, np.ndarray, "object"]:
    """Run column-cyclic LU on the simulator; returns
    ``(piv, L, U, machine_result)`` with numerics identical to
    :func:`lu_factor`."""
    from ..sim.machine import LogPMachine

    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(lu_sim_program(A))
    out = np.empty((n, n), dtype=np.float64)
    piv = None
    for rank in range(params.P):
        value = res.value(rank)
        cols, data = value[0], value[1]
        out[:, cols] = data
        if value[2] is not None:
            piv = value[2]
    L = np.tril(out, -1) + np.eye(n)
    U = np.triu(out)
    return piv, L, U, res
