"""logp-repro: a reproduction of *LogP: Towards a Realistic Model of
Parallel Computation* (Culler, Karp, Patterson, Sahay, Schauser, Santos,
Subramonian, von Eicken — PPOPP 1993).

The package provides:

* :mod:`repro.core` — the LogP model itself: the (L, o, g, P) parameter
  set, closed-form costs for communication primitives, and the paper's
  algorithm-level analyses;
* :mod:`repro.sim` — a discrete-event simulator that enforces the model's
  semantics exactly (overhead, gaps, latency bound, capacity constraint)
  and runs real programs with real data;
* :mod:`repro.algorithms` — the paper's algorithm suite: optimal broadcast
  and summation, the FFT layout/schedule study, LU decomposition layouts,
  sorting, connected components;
* :mod:`repro.topology` — real-network substrate for Section 5: topology
  metrics, unloaded message timing, packet-level saturation;
* :mod:`repro.models` — the competing models of Section 6 (PRAM, BSP,
  postal, delay) as executable baselines;
* :mod:`repro.machines` — the machine database (Table 1, the CM-5 FFT
  calibration, the Figure 2 microprocessor trend data);
* :mod:`repro.memory` — the cache simulator behind the Figure 7 study;
* :mod:`repro.viz` — ASCII Gantt charts, trees and tables.

Quickstart::

    from repro import LogPParams
    from repro.algorithms.broadcast import optimal_broadcast_tree

    cm5ish = LogPParams(L=6, o=2, g=4, P=8)
    tree = optimal_broadcast_tree(cm5ish)
    print(tree.completion_time)   # 24, as in Figure 3
"""

from .core import LogPParams

__version__ = "1.0.0"
__all__ = ["LogPParams", "__version__"]
