"""Figure 2: microprocessor performance 1987-1992.

"Microprocessor performance is advancing at a rate of 50 to 100% per
year ... The floating point SPEC benchmarks improved at about 97% per
year since 1987, and integer SPEC benchmarks improved at about 54% per
year."  Performance is expressed as multiples of the VAX-11/780.

The machines Figure 2 labels, with performance read off the plot (the
paper prints no numeric table, so these are digitizations consistent
with the stated growth rates and the plot's 0-180 axis):
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MicroprocessorPoint",
    "FIGURE2_DATA",
    "DRAM_CAPACITY_DATA",
    "fit_growth_rate",
    "figure2_growth_rates",
    "dram_growth_rate",
]


@dataclass(frozen=True, slots=True)
class MicroprocessorPoint:
    """One labeled point of Figure 2 (performance vs VAX-11/780)."""

    year: int
    machine: str
    integer: float
    floating: float


FIGURE2_DATA: tuple[MicroprocessorPoint, ...] = (
    MicroprocessorPoint(1987, "Sun 4/260", 9, 6),
    MicroprocessorPoint(1988, "MIPS M/120", 13, 12),
    MicroprocessorPoint(1989, "MIPS M2000", 20, 23),
    MicroprocessorPoint(1990, "IBM RS6000/540", 30, 44),
    MicroprocessorPoint(1991, "HP 9000/750", 50, 86),
    MicroprocessorPoint(1992, "DEC alpha", 77, 160),
)


def fit_growth_rate(years, values) -> float:
    """Annual growth rate from a log-linear least-squares fit.

    Returns the fractional yearly improvement (0.97 means 97 %/year).
    """
    years = np.asarray(years, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(years) != len(values) or len(years) < 2:
        raise ValueError("need >= 2 matching (year, value) points")
    if np.any(values <= 0):
        raise ValueError("performance values must be positive")
    slope, _ = np.polyfit(years - years[0], np.log(values), 1)
    return float(np.exp(slope) - 1.0)


def figure2_growth_rates() -> dict[str, float]:
    """Fit both Figure 2 series; the paper reports ~0.97 FP, ~0.54 int."""
    years = [p.year for p in FIGURE2_DATA]
    return {
        "floating": fit_growth_rate(years, [p.floating for p in FIGURE2_DATA]),
        "integer": fit_growth_rate(years, [p.integer for p in FIGURE2_DATA]),
    }


#: Section 2's memory claim: "Memory capacity is increasing at a rate
#: comparable to the increase in capacity of DRAM chips: quadrupling in
#: size every three years."  DRAM generations (year of volume
#: production, bits per chip).
DRAM_CAPACITY_DATA: tuple[tuple[int, int], ...] = (
    (1977, 16 * 1024),
    (1980, 64 * 1024),
    (1983, 256 * 1024),
    (1986, 1024 * 1024),
    (1989, 4 * 1024 * 1024),
    (1992, 16 * 1024 * 1024),
)


def dram_growth_rate() -> float:
    """Annual DRAM capacity growth — quadrupling per 3 years is
    ``4**(1/3) - 1 ~ 59 %`` per year."""
    years = [y for y, _ in DRAM_CAPACITY_DATA]
    bits = [b for _, b in DRAM_CAPACITY_DATA]
    return fit_growth_rate(years, bits)
