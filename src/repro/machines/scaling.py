"""Machine families as curves in the LogP parameter space (Section 7).

"The model defines a four dimensional parameter space of potential
machines.  The product line offered by a particular vendor may be
identified with a curve in this space, characterizing the system
scalability."

A :class:`MachineFamily` holds one design's fixed constants (network
cycle, channel width, send/receive overhead, per-hop delay, message
size) plus a topology whose route length and bisection grow with ``P``;
:meth:`MachineFamily.params` evaluates the family at a configuration,
giving the curve ``P -> (L, o, g)``:

* ``o`` is fixed by the node interface;
* ``L(P) = diameter(P) * r + ceil(M/w)`` grows with the topology's
  route length;
* ``g(P) = M * (P/2) / (bisection_links(P) * w)`` — with everyone
  sending across the bisection, each processor's share of the cut
  bandwidth sets its sustainable message interval.  Full-bisection
  networks (hypercube, fat tree) keep ``g`` flat; meshes pay
  ``g ~ sqrt(P)``.

The Section 7 benchmark sweeps two families and shows where each stops
scaling for each algorithm class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..core.params import LogPParams
from ..topology.topologies import Topology

__all__ = ["MachineFamily", "FAT_TREE_FAMILY", "MESH_FAMILY", "HYPERCUBE_FAMILY"]


@dataclass(frozen=True)
class MachineFamily:
    """One vendor design evaluated across configurations.

    Attributes:
        name: family label.
        topology: ``topology(P) -> Topology`` (diameter and bisection).
        w: channel width, bits per network cycle.
        overhead_cycles: ``Tsnd + Trcv`` in network cycles (``o`` is half).
        r: per-hop routing delay, cycles.
        M: message size in bits.
    """

    name: str
    topology: Callable[[int], Topology]
    w: int
    overhead_cycles: float
    r: float
    M: int = 160

    def params(self, P: int) -> LogPParams:
        """The family's LogP point at configuration ``P``."""
        topo = self.topology(P)
        L = topo.diameter() * self.r + math.ceil(self.M / self.w)
        o = self.overhead_cycles / 2
        bisection_bw = topo.bisection_width() * self.w  # bits/cycle
        g = self.M * (P / 2) / bisection_bw
        return LogPParams(L=L, o=o, g=g, P=P, name=f"{self.name}(P={P})")

    def curve(self, sizes) -> list[LogPParams]:
        """Evaluate the family along a sweep of configurations."""
        return [self.params(P) for P in sizes]


def _fat_tree(P: int) -> Topology:
    from ..topology.topologies import FatTree

    return FatTree(P)


def _mesh2d(P: int) -> Topology:
    from ..topology.topologies import Mesh2D

    return Mesh2D(P)


def _hypercube(P: int) -> Topology:
    from ..topology.topologies import Hypercube

    return Hypercube(P)


#: A CM-5-flavoured fat-tree family: modest overhead, full bisection.
FAT_TREE_FAMILY = MachineFamily(
    name="fat-tree", topology=_fat_tree, w=4, overhead_cycles=132, r=8
)

#: A 2-D mesh family: cheap wires, bisection sqrt(P).
MESH_FAMILY = MachineFamily(
    name="2d-mesh", topology=_mesh2d, w=16, overhead_cycles=132, r=2
)

#: A hypercube family: long wires but full bisection.
HYPERCUBE_FAMILY = MachineFamily(
    name="hypercube", topology=_hypercube, w=1, overhead_cycles=132, r=40
)
