"""The machine database: Table 1's network constants and the CM-5
calibration of Section 4.1.4.

Table 1 ("Network timing parameters for a one-way message without
contention on several current commercial and research multiprocessors")
quotes, for each machine at a 1024-processor configuration: the network
cycle time, channel width ``w`` (bits), combined send+receive overhead
``Tsnd + Trcv`` (cycles), per-node routing delay ``r`` (cycles), average
hop count, and the resulting unloaded time for a 160-bit message.  The
final two rows re-measure the commercial machines under the Active
Message layer.

The T(M=160) column is *recomputed* here from the other constants via
:func:`repro.topology.unloaded.unloaded_time`; the benchmark asserts the
recomputation matches the paper's printed values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import LogPParams
from ..topology.unloaded import NetworkHardware

__all__ = [
    "TABLE1",
    "TABLE1_PRINTED_T160",
    "table1_machine",
    "CM5_FFT_CALIBRATION",
    "CM5Calibration",
]


TABLE1: tuple[NetworkHardware, ...] = (
    NetworkHardware(
        name="nCUBE/2",
        network="Hypercube",
        cycle_ns=25,
        w=1,
        send_recv_overhead=6400,
        r=40,
        avg_hops=5,
    ),
    NetworkHardware(
        name="CM-5",
        network="Fattree",
        cycle_ns=25,
        w=4,
        send_recv_overhead=3600,
        r=8,
        avg_hops=9.3,
    ),
    NetworkHardware(
        name="Dash",
        network="Torus",
        cycle_ns=30,
        w=16,
        send_recv_overhead=30,
        r=2,
        avg_hops=6.8,
    ),
    NetworkHardware(
        name="J-Machine",
        network="3d Mesh",
        cycle_ns=31,
        w=8,
        send_recv_overhead=16,
        r=2,
        avg_hops=12.1,
    ),
    NetworkHardware(
        name="Monsoon",
        network="Butterfly",
        cycle_ns=20,
        w=16,
        send_recv_overhead=10,
        r=2,
        avg_hops=5,
    ),
    NetworkHardware(
        name="nCUBE/2 (AM)",
        network="Hypercube",
        cycle_ns=25,
        w=1,
        send_recv_overhead=1000,
        r=40,
        avg_hops=5,
    ),
    NetworkHardware(
        name="CM-5 (AM)",
        network="Fattree",
        cycle_ns=25,
        w=4,
        send_recv_overhead=132,
        r=8,
        avg_hops=9.3,
    ),
)

#: The T(M=160) values as printed in Table 1 (cycles).  The recomputed
#: values match to within 1 cycle (the paper rounds).
TABLE1_PRINTED_T160: dict[str, float] = {
    "nCUBE/2": 6760,
    "CM-5": 3714,
    "Dash": 53,
    "J-Machine": 60,
    "Monsoon": 30,
    "nCUBE/2 (AM)": 1360,
    "CM-5 (AM)": 246,
}


def table1_machine(name: str) -> NetworkHardware:
    """Look up a Table 1 row by machine name."""
    for hw in TABLE1:
        if hw.name == name:
            return hw
    raise KeyError(
        f"unknown machine {name!r}; known: {[h.name for h in TABLE1]}"
    )


@dataclass(frozen=True, slots=True)
class CM5Calibration:
    """The Section 4.1.4 quantitative calibration of the CM-5 FFT study.

    "At an average of 2.2 Mflops and 10 floating-point operations per
    butterfly, a cycle corresponds to 4.5 us, or 150 clock ticks ...
    o = 2 us (0.44 cycles, 56 ticks) and, on an unloaded network,
    L = 6 us (1.3 cycles, 200 ticks) ... we take g to be 4 us ... In
    addition there is roughly 1 us of local computation per data point
    to load/store values to/from memory."
    """

    cycle_us: float = 4.5  # one FFT butterfly (10 flops)
    clock_mhz: float = 33.0
    o_us: float = 2.0
    L_us: float = 6.0
    g_us: float = 4.0
    point_us: float = 1.0  # per-point load/store in the remap loop
    flops_per_butterfly: int = 10
    bytes_per_point: int = 16  # one complex double, the Fig 6/8 payload
    message_overhead_bytes: int = 4  # address bytes per message
    linpack_mflops: float = 3.2
    fft_mflops_small: float = 2.8  # local FFT within cache
    fft_mflops_large: float = 2.2  # local FFT beyond cache
    cache_bytes: int = 64 * 1024  # direct-mapped, write-through
    cache_line_bytes: int = 32
    predicted_remap_mb_s: float = 3.2
    measured_remap_mb_s: float = 2.0
    processors: int = 128

    @property
    def ticks_per_cycle(self) -> float:
        return self.cycle_us * self.clock_mhz

    def cycles(self, us: float) -> float:
        """Convert microseconds to FFT-butterfly cycles."""
        return us / self.cycle_us

    def us(self, cycles: float) -> float:
        return cycles * self.cycle_us

    def logp(self, P: int | None = None) -> LogPParams:
        """LogP parameters in butterfly cycles (o=0.44, L=1.33, g=0.89)."""
        return LogPParams(
            L=self.cycles(self.L_us),
            o=self.cycles(self.o_us),
            g=self.cycles(self.g_us),
            P=self.processors if P is None else P,
            name="CM-5 (FFT study)",
        )

    def logp_us(self, P: int | None = None) -> LogPParams:
        """LogP parameters with the microsecond as the cycle unit."""
        return LogPParams(
            L=self.L_us,
            o=self.o_us,
            g=self.g_us,
            P=self.processors if P is None else P,
            name="CM-5 (us units)",
        )

    def point_cost_cycles(self) -> float:
        """The remap loop's per-point load/store cost in cycles."""
        return self.cycles(self.point_us)

    def predicted_remap_us_per_point(self) -> float:
        """``max(point + 2o, g)`` — Section 4.1.4's transmission-rate
        bound per point (5 us -> 3.2 MB/s for 16-byte points)."""
        return max(self.point_us + 2 * self.o_us, self.g_us)


CM5_FFT_CALIBRATION = CM5Calibration()
