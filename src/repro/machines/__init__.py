"""Machine descriptions and calibration: Table 1's network constants,
the Figure 2 microprocessor trend data, the CM-5 of the FFT study."""

from .calibrate import (
    bandwidth_to_g,
    cycle_from_mflops,
    logp_from_hardware,
    normalize_to_cycle,
)
from .cm5 import CM5, GaussianJitter, cm5
from .fit import MeasuredLogP, measure_logp
from .scaling import (
    FAT_TREE_FAMILY,
    HYPERCUBE_FAMILY,
    MESH_FAMILY,
    MachineFamily,
)
from .database import (
    CM5_FFT_CALIBRATION,
    CM5Calibration,
    TABLE1,
    TABLE1_PRINTED_T160,
    table1_machine,
)
from .trends import (
    FIGURE2_DATA,
    MicroprocessorPoint,
    figure2_growth_rates,
    fit_growth_rate,
)

__all__ = [
    "MachineFamily",
    "FAT_TREE_FAMILY",
    "MESH_FAMILY",
    "HYPERCUBE_FAMILY",
    "MeasuredLogP",
    "measure_logp",
    "TABLE1",
    "TABLE1_PRINTED_T160",
    "table1_machine",
    "CM5Calibration",
    "CM5_FFT_CALIBRATION",
    "CM5",
    "cm5",
    "GaussianJitter",
    "FIGURE2_DATA",
    "MicroprocessorPoint",
    "fit_growth_rate",
    "figure2_growth_rates",
    "cycle_from_mflops",
    "normalize_to_cycle",
    "bandwidth_to_g",
    "logp_from_hardware",
]
