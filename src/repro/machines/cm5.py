"""The simulated CM-5 — the machine the paper's measurements ran on.

Bundles the Section 4.1.4 calibration (:data:`CM5_FFT_CALIBRATION`), the
64 KB direct-mapped node cache, the hardware barrier (control network),
the optional second data network (``g/2``), and the compute-jitter model
standing in for the "cache effects, network collisions, etc." that make
real processors "gradually drift out of sync" — everything the Figure
6/7/8 benchmarks need, in one configured object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.params import LogPParams
from ..memory.cache import Cache
from ..sim.machine import LogPMachine
from .database import CM5_FFT_CALIBRATION, CM5Calibration

__all__ = ["GaussianJitter", "CM5", "cm5"]


class GaussianJitter:
    """Multiplicative compute-time noise: each ``Compute(c)`` becomes
    ``c * max(0, 1 + sigma * z)`` with ``z ~ N(0, 1)``.

    Zero-mean noise accumulates as a random walk across a long send
    loop, which is exactly the drift mechanism Section 4.1.4 blames for
    the large-n staggered-schedule degradation; the periodic barrier
    resets it.
    """

    def __init__(self, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def __call__(self, rank: int, cycles: float) -> float:
        if cycles <= 0 or self.sigma == 0:
            return cycles
        factor = 1.0 + self.sigma * float(self._rng.standard_normal())
        return cycles * max(0.0, factor)


@dataclass(frozen=True)
class CM5:
    """A configured simulated CM-5.

    Args:
        P: processors (the paper's machine had 128).
        calibration: the Section 4.1.4 constants.
        double_net: use both data networks (halves ``g``).
        jitter_sigma: compute-noise level (0 = deterministic).
        barrier_cost_us: hardware-barrier cost (the control network is
            fast; a few microseconds).
    """

    P: int = 128
    calibration: CM5Calibration = CM5_FFT_CALIBRATION
    double_net: bool = False
    jitter_sigma: float = 0.0
    barrier_cost_us: float = 1.0
    seed: int = 0

    def params_us(self) -> LogPParams:
        """LogP parameters in microseconds."""
        p = self.calibration.logp_us(self.P)
        if self.double_net:
            p = replace(p, g=p.g / 2, name=p.name + " (2 nets)")
        return p

    def params_cycles(self) -> LogPParams:
        """LogP parameters in FFT-butterfly cycles."""
        p = self.calibration.logp(self.P)
        if self.double_net:
            p = replace(p, g=p.g / 2, name=p.name + " (2 nets)")
        return p

    def node_cache(self) -> Cache:
        """The 64 KB direct-mapped write-through node cache."""
        return Cache(
            self.calibration.cache_bytes,
            self.calibration.cache_line_bytes,
            associativity=1,
        )

    def machine(self, *, units: str = "us", trace: bool = False, **kw) -> LogPMachine:
        """Build the discrete-event machine (``units``: "us" or "cycles")."""
        if units == "us":
            params = self.params_us()
            barrier = self.barrier_cost_us
        elif units == "cycles":
            params = self.params_cycles()
            barrier = self.calibration.cycles(self.barrier_cost_us)
        else:
            raise ValueError(f"units must be 'us' or 'cycles', got {units!r}")
        jitter = (
            GaussianJitter(self.jitter_sigma, self.seed)
            if self.jitter_sigma > 0
            else None
        )
        return LogPMachine(
            params,
            hw_barrier_cost=barrier,
            compute_jitter=jitter,
            trace=trace,
            **kw,
        )

    def mb_per_second(self, bytes_sent: float, us_elapsed: float) -> float:
        """Convert a (bytes, microseconds) measurement to MB/s."""
        if us_elapsed <= 0:
            raise ValueError(f"elapsed time must be > 0, got {us_elapsed}")
        return bytes_sent / us_elapsed  # bytes/us == MB/s


def cm5(P: int = 128, **kwargs) -> CM5:
    """Convenience constructor mirroring the paper's 128-node machine."""
    return CM5(P=P, **kwargs)
