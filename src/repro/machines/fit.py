"""Measuring a machine's LogP parameters with microbenchmarks.

Section 7: using the model as "a concise summary of the performance
characteristics of current and future machines ... will require refining
the process of parameter determination."  This module is that process —
the microbenchmark suite the later LogP-measurement literature settled
on, implemented against the simulator's program API:

* **send overhead `o`** — time a processor is engaged by one `Send`
  with nothing else to do (measured directly: clock before and after);
* **round trip** — an empty request/reply gives `RTT = 2L + 4o`, hence
  `L = (RTT - 4o)/2`;
* **effective gap** — the *receiver-side* drain rate under saturation:
  many senders flood one receiver, whose steady reception interval is
  `max(g, o)` — the processor can accept no faster than its own
  overhead even when the network would allow it.  A `g` smaller than
  `o` is operationally invisible to any timing benchmark (every rate
  the machine exhibits is governed by `max(g, o)`), a point the later
  LogP-measurement literature ran into as well; `g` itself is
  recoverable only through the capacity constraint's bounds.
* **pipeline depth** — the knee of the outstanding-requests throughput
  curve (the multithreading experiment): improvement stops at
  `~ceil((L + 2o) / max(g, o))` in-flight operations, the number of
  round trips the network pipeline holds (equal to the model's
  `ceil(L/g)` exactly when `o = 0`).

The suite is written against a *runner* — anything with a ``P`` and a
``run_values(factory)`` that executes a ``(rank, P) -> generator``
program and returns the per-rank values.  :class:`SimulatorRunner`
adapts a :class:`~repro.core.params.LogPParams`; the live backend's
:class:`~repro.live.calibrate.LiveRunner` adapts real processes over
TCP, so the *same* probes that recover hidden parameters from the
simulator fit effective ``(L, o, g)`` to the host.  To that end every
probe program is a module-level class (picklable — closures cannot
cross the process boundary to live ranks).

Because these run on the simulator, the suite is *closed-loop testable*:
hide a parameter set, measure it back, compare.  The tests recover `o`,
`L` and `max(g, o)` exactly on every grid machine; on a real cluster the
same program structure is what one would time with MPI.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.params import LogPParams
from ..sim.machine import run_programs
from ..sim.program import Now, Recv, Send, Sleep

__all__ = ["MeasuredLogP", "SimulatorRunner", "measure_logp"]


@dataclass(frozen=True, slots=True)
class MeasuredLogP:
    """Quantities recovered by the microbenchmark suite.

    ``effective_g`` is ``max(g, o)`` — the machine's observable message
    interval; ``pipeline_depth`` is the saturation knee
    ``~ceil((L + 2o)/effective_g)``.
    """

    o: float
    L: float
    effective_g: float
    pipeline_depth: int
    round_trip: float

    def as_params(self, P: int, name: str = "measured") -> LogPParams:
        """A parameter set usable for analysis: ``g`` is the effective
        gap (conservative when the true ``g < o``, per Section 3.1's own
        merge rule).  ``L`` is clamped to 0 — a physical fit can return
        a slightly negative latency when the RTT decomposition's ``4o``
        term overshoots (jittery hosts)."""
        return LogPParams(
            L=max(self.L, 0.0), o=self.o, g=self.effective_g, P=P, name=name
        )

    def gap_bounds(self) -> tuple[float, float]:
        """Bounds on the true ``g`` implied by the measurements:
        ``g <= effective_g`` always, and the pipeline depth ``c``
        implies the capacity-relevant ratio ``L/g`` is within the knee
        region.  Returns ``(lo, hi)`` with ``hi = effective_g``."""
        if self.pipeline_depth <= 1:
            return (0.0, self.effective_g)
        lo = self.L / (self.pipeline_depth + 1)
        return (min(lo, self.effective_g), self.effective_g)


class SimulatorRunner:
    """The default runner: execute probes on a :class:`LogPMachine`."""

    def __init__(self, params: LogPParams):
        self.params = params
        self.P = params.P

    def run_values(self, factory) -> list:
        """Run ``factory`` on the simulator; return per-rank values."""
        return run_programs(self.params, factory, trace=False).values()


# ----------------------------------------------------------------------
# Probe programs.  Module-level classes, not closures: the live backend
# pickles them across the process boundary to real ranks.
# ----------------------------------------------------------------------


class _OverheadProbe:
    """Clock one Send on an otherwise idle processor."""

    def __call__(self, rank: int, P: int):
        def run():
            if rank == 0:
                t0 = yield Now()
                yield Send(1, tag="o")
                t1 = yield Now()
                return t1 - t0
            elif rank == 1:
                yield Recv(tag="o")
            return None

        return run()


class _RoundTripProbe:
    """Mean empty request/reply time = 2L + 4o over ``reps`` rounds."""

    def __init__(self, reps: int = 4):
        self.reps = reps

    def __call__(self, rank: int, P: int):
        reps = self.reps

        def run():
            if rank == 0:
                t0 = yield Now()
                for i in range(reps):
                    yield Send(1, tag=("q", i))
                    yield Recv(tag=("a", i))
                t1 = yield Now()
                return (t1 - t0) / reps
            elif rank == 1:
                for i in range(reps):
                    yield Recv(tag=("q", i))
                    yield Send(0, tag=("a", i))
            return None

        return run()


class _GapProbe:
    """Receiver drain interval under saturation: ``max(g, o)``.

    Two senders flood one receiver so the stream is never starved; the
    receiver clocks its steady-state reception interval — the gap rule
    and its own reception overhead jointly pin it at ``max(g, o)``
    (senders stall via the capacity constraint whenever they could go
    faster).
    """

    def __init__(self, k: int = 40):
        self.k = k

    def __call__(self, rank: int, P: int):
        k = self.k

        def run():
            if rank in (1, 2):
                for _ in range(k):
                    yield Send(0, tag="f")
                return None
            if rank == 0:
                times = []
                for _ in range(2 * k):
                    yield Recv(tag="f")
                    t = yield Now()
                    times.append(t)
                # Steady state: drop the warmup third.
                cut = len(times) // 3
                spans = [
                    b - a for a, b in zip(times[cut:], times[cut + 1 :])
                ]
                return sum(spans) / len(spans)
            return None

        return run()


class _CapacityProbe:
    """``v`` one-way operations in flight, timed at rank 0.

    Each op is considered complete ``op_latency = L + 2o`` after issue
    (timed locally, ``o`` subtracted so back-to-back issue is allowed);
    returns ops/cycle at rank 0.
    """

    def __init__(self, v: int, rounds: int, o: float, op_latency: float):
        self.v = v
        self.rounds = rounds
        self.o = o
        self.op_latency = op_latency

    def __call__(self, rank: int, P: int):
        v, rounds, o, op_latency = self.v, self.rounds, self.o, self.op_latency

        def run():
            if rank == 0:
                total = v * rounds
                ready = [(0.0, i) for i in range(v)]
                heapq.heapify(ready)
                for _ in range(total):
                    t_ready, vp = heapq.heappop(ready)
                    now = yield Now()
                    if t_ready > now:
                        yield Sleep(t_ready - now)
                    yield Send(1, tag="op")
                    now = yield Now()
                    heapq.heappush(ready, (now - o + op_latency, vp))
                t = yield Now()
                return total / t
            elif rank == 1:
                for _ in range(v * rounds):
                    yield Recv(tag="op")
            return None

        return run()


# ----------------------------------------------------------------------
# The measurement passes.
# ----------------------------------------------------------------------


def _value0(runner, factory):
    return runner.run_values(factory)[0]


def _measure_overhead(runner) -> float:
    return _value0(runner, _OverheadProbe())


def _measure_round_trip(runner, reps: int = 4) -> float:
    return _value0(runner, _RoundTripProbe(reps))


def _measure_gap(runner, k: int = 40) -> float:
    if runner.P < 3:
        raise ValueError("gap measurement needs P >= 3")
    return _value0(runner, _GapProbe(k))


def _measure_capacity(
    runner,
    o: float,
    rtt: float,
    rounds: int = 30,
    max_depth: int = 4096,
) -> int:
    """Find the throughput knee of the outstanding-ops curve.

    ``o``/``rtt`` come from the earlier passes (re-measuring here would
    double the live wall-clock for no information); the measured
    ops/cycle stops improving once ``v`` exceeds the network's in-flight
    allowance.
    """
    op_latency = rtt / 2  # L + 2o

    def throughput(v: int) -> float:
        return _value0(runner, _CapacityProbe(v, rounds, o, op_latency))

    prev = throughput(1)
    v = 1
    while v < max_depth:
        nxt = throughput(v + 1)
        if nxt < prev * 1.02:  # no longer improving: the knee
            return v
        prev = nxt
        v += 1
    return v


def measure_logp(
    machine,
    measure_depth: bool = True,
    max_depth: int = 4096,
) -> MeasuredLogP:
    """Run the full microbenchmark suite against a machine.

    ``machine`` is either a :class:`~repro.core.params.LogPParams` (run
    on the simulator, parameters treated as hidden) or any runner with
    ``P`` and ``run_values(factory)`` — e.g. the live backend's
    :class:`~repro.live.calibrate.LiveRunner`, in which case the same
    probes time real sockets.  Requires ``P >= 3`` for the
    receiver-saturation gap measurement.  ``max_depth`` bounds the
    capacity search (each step is a full run — live runners want a
    small bound).
    """
    runner = (
        SimulatorRunner(machine) if isinstance(machine, LogPParams) else machine
    )
    o = _measure_overhead(runner)
    rtt = _measure_round_trip(runner)
    L = (rtt - 4 * o) / 2
    g_eff = _measure_gap(runner)
    depth = (
        _measure_capacity(runner, o, rtt, max_depth=max_depth)
        if measure_depth
        else 0
    )
    return MeasuredLogP(
        o=o, L=L, effective_g=g_eff, pipeline_depth=depth, round_trip=rtt
    )
