"""Calibration utilities: hardware constants -> LogP parameters.

Section 5.2's closing recipe: "In determining LogP parameters for a
given machine, it appears reasonable to choose o = (Tsnd + Trcv)/2,
L = H*r + ceil(M/w), where H is the maximum distance of a route and M is
the fixed message size being used, and g to be M divided by the per
processor bisection bandwidth."  Plus the Section 4.1.4 trick of
calibrating the model's *cycle* from a measured computation rate.
"""

from __future__ import annotations

from ..core.params import LogPParams
from ..topology.unloaded import logp_from_hardware

__all__ = [
    "logp_from_hardware",
    "cycle_from_mflops",
    "normalize_to_cycle",
    "bandwidth_to_g",
]


def cycle_from_mflops(mflops: float, flops_per_op: float) -> float:
    """Microseconds per model cycle, from a measured rate.

    Section 4.1.4: "At an average of 2.2 Mflops and 10 floating-point
    operations per butterfly, a cycle corresponds to 4.5 us."
    """
    if mflops <= 0 or flops_per_op <= 0:
        raise ValueError("rates must be positive")
    return flops_per_op / mflops


def normalize_to_cycle(
    L_us: float, o_us: float, g_us: float, P: int, cycle_us: float, name: str = ""
) -> LogPParams:
    """Express microsecond-valued parameters in model cycles."""
    if cycle_us <= 0:
        raise ValueError(f"cycle_us must be > 0, got {cycle_us}")
    return LogPParams(
        L=L_us / cycle_us, o=o_us / cycle_us, g=g_us / cycle_us, P=P, name=name
    )


def bandwidth_to_g(
    message_bytes: float, bisection_mb_s_per_proc: float
) -> float:
    """``g`` in microseconds from per-processor bisection bandwidth.

    Section 4.1.4: "the bisection bandwidth is 5 MB/s per processor for
    messages of 16 bytes of data and 4 bytes of address, so we take g to
    be 4 us" (20 bytes / 5 MB/s).
    """
    if message_bytes <= 0 or bisection_mb_s_per_proc <= 0:
        raise ValueError("sizes and bandwidths must be positive")
    return message_bytes / bisection_mb_s_per_proc


def _selfcheck() -> None:  # pragma: no cover - documentation anchor
    assert abs(cycle_from_mflops(2.2, 10) - 4.545) < 0.01
    assert abs(bandwidth_to_g(20, 5) - 4.0) < 1e-12
