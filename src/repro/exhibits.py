"""Regenerate the paper's exhibits from the command line, without pytest.

Usage::

    python -m repro.exhibits              # the fast exhibits
    python -m repro.exhibits --full       # include the heavy simulations
    python -m repro.exhibits fig3 table1  # a chosen subset

Each exhibit prints the reproduced table/series with the paper's
reference values alongside.  The pytest-benchmark suite in
``benchmarks/`` asserts all of these; this runner is for interactive
inspection.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable

import numpy as np

from .core import LogPParams
from .viz import format_table

__all__ = ["main", "EXHIBITS"]


def fig2() -> str:
    from .machines import FIGURE2_DATA, figure2_growth_rates

    rates = figure2_growth_rates()
    rows = [[p.year, p.machine, p.integer, p.floating] for p in FIGURE2_DATA]
    rows.append(
        ["fit", "annual growth",
         f"{rates['integer']:.0%} (paper ~54%)",
         f"{rates['floating']:.0%} (paper ~97%)"]
    )
    return format_table(
        ["year", "machine", "integer", "floating"],
        rows,
        title="Figure 2: microprocessor performance (xVAX-11/780)",
    )


def fig3() -> str:
    from .algorithms.broadcast import (
        broadcast_program,
        broadcast_schedule,
        optimal_broadcast_tree,
    )
    from .sim import run_programs
    from .viz import render_broadcast_tree, render_gantt

    p = LogPParams(L=6, o=2, g=4, P=8)
    tree = optimal_broadcast_tree(p)
    res = run_programs(p, broadcast_program(tree, 0))
    return "\n".join(
        [
            "Figure 3: optimal broadcast, P=8 L=6 g=4 o=2 "
            f"(paper completion 24; reproduced analysis "
            f"{tree.completion_time:g}, simulated {res.makespan:g})",
            "",
            render_broadcast_tree(tree),
            "",
            render_gantt(broadcast_schedule(tree), width=72, show_flight=True),
        ]
    )


def fig4() -> str:
    from .algorithms.summation import (
        distribute_inputs,
        optimal_summation_tree,
        summation_program,
    )
    from .sim import run_programs
    from .viz import render_summation_tree

    p = LogPParams(L=5, o=2, g=4, P=8)
    tree = optimal_summation_tree(p, 28)
    rng = np.random.default_rng(0)
    values = rng.standard_normal(tree.total_values)
    res = run_programs(p, summation_program(tree, distribute_inputs(tree, values)))
    ok = abs(res.value(0) - values.sum()) < 1e-9
    return "\n".join(
        [
            f"Figure 4: optimal summation, T=28 P=8 L=5 g=4 o=2 — sums "
            f"{tree.total_values} values; simulated makespan "
            f"{res.makespan:g}; numerically {'exact' if ok else 'WRONG'}",
            "",
            render_summation_tree(tree),
        ]
    )


def fig5() -> str:
    from .algorithms.fft import remote_reference_profile

    rows = []
    for layout in ("cyclic", "blocked", "hybrid"):
        prof = remote_reference_profile(8, 2, layout)
        rows.append(
            [layout]
            + [("remote" if c.remote_nodes else "local") for c in prof]
        )
    return format_table(
        ["layout", "col 1", "col 2", "col 3"],
        rows,
        title="Figure 5: butterfly column locality, n=8 P=2",
    )


def fig6() -> str:
    from .algorithms.fft import simulate_remap
    from .machines import cm5

    machine = cm5(P=64)
    p = machine.params_us()
    cal = machine.calibration
    rows = []
    for n in (2**12, 2**14, 2**16):
        compute_s = (n / p.P) * math.log2(n) * cal.cycle_us * 1e-6
        stag = simulate_remap(p, n, "staggered", point_cost=cal.point_us)
        naive = simulate_remap(p, n, "naive", point_cost=cal.point_us)
        rows.append(
            [n, compute_s, naive.makespan * 1e-6, stag.makespan * 1e-6,
             naive.makespan / stag.makespan]
        )
    return format_table(
        ["n", "compute (s)", "naive remap (s)", "staggered remap (s)",
         "naive/staggered"],
        rows,
        floatfmt=".3g",
        title="Figure 6 (P=64 simulated CM-5)",
    )


def fig7() -> str:
    from .memory import phase_mflops

    rows = [
        [n, 16 * (n // 128) // 1024,
         phase_mflops(n, 128, "I"), phase_mflops(n, 128, "III")]
        for n in (2**16, 2**18, 2**20, 2**22, 2**24)
    ]
    return format_table(
        ["n", "local KB", "phase I Mflops", "phase III Mflops"],
        rows,
        floatfmt=".3g",
        title="Figure 7 (paper: 2.8 in cache, 2.2 beyond, phase III flat)",
    )


def fig8() -> str:
    from .algorithms.fft import simulate_remap
    from .machines import GaussianJitter, cm5

    machine = cm5(P=32)
    p = machine.params_us()
    cal = machine.calibration
    rows = []
    for i, n in enumerate((2**13, 2**15)):
        stag = simulate_remap(p, n, "staggered", point_cost=cal.point_us)
        drift = simulate_remap(
            p, n, "staggered", point_cost=cal.point_us,
            jitter=GaussianJitter(0.5, seed=100 + i),
        )
        sync = simulate_remap(
            p, n, "staggered", point_cost=cal.point_us,
            jitter=GaussianJitter(0.5, seed=100 + i),
            barrier_every=n // (p.P * p.P),
        )
        naive = simulate_remap(p, n, "naive", point_cost=cal.point_us)

        def mb(r):
            return r.rate(cal.bytes_per_point, 1e-6) / 1e6

        rows.append([n, 3.2, mb(stag), mb(drift), mb(sync), mb(naive)])
    return format_table(
        ["n", "predicted", "staggered", "drifting", "synchronized", "naive"],
        rows,
        floatfmt=".3g",
        title="Figure 8 (P=32 simulated CM-5), MB/s per processor",
    )


def table1() -> str:
    from .machines import TABLE1, TABLE1_PRINTED_T160
    from .topology import unloaded_time

    rows = [
        [hw.name, hw.network, unloaded_time(hw, 160),
         TABLE1_PRINTED_T160[hw.name]]
        for hw in TABLE1
    ]
    return format_table(
        ["machine", "network", "T(160) recomputed", "T(160) printed"],
        rows,
        floatfmt=".5g",
        title="Table 1: unloaded 160-bit message time (cycles)",
    )


def sec51() -> str:
    from .topology import PAPER_TOPOLOGIES

    paper = {
        "Hypercube": 5, "Butterfly": 10, "4deg Fat Tree": 9.33,
        "3D Torus": 7.5, "3D Mesh": 10, "2D Torus": 16, "2D Mesh": 21,
    }
    rows = [
        [t.name, t.formula, t.average_distance(), paper[t.name]]
        for t in PAPER_TOPOLOGIES(1024)
    ]
    return format_table(
        ["network", "formula", "reproduced", "paper"],
        rows,
        floatfmt=".4g",
        title="Section 5.1: average distance at P=1024",
    )


def sec53() -> str:
    from .topology import grid_route, latency_vs_load

    K = 8

    def route(s, d):
        return [
            c[0] * K + c[1]
            for c in grid_route((s // K, s % K), (d // K, d % K), (K, K), wrap=True)
        ]

    pts = latency_vs_load(
        64, route, [0.05, 0.2, 0.7, 1.5], horizon=1200, warmup=300, seed=9
    )
    rows = [[q.offered_load, q.mean_latency, q.throughput] for q in pts]
    return format_table(
        ["offered load", "mean latency", "throughput"],
        rows,
        floatfmt=".3g",
        title="Section 5.3: 8x8 torus saturation (flat, then the knee)",
    )


#: name -> (generator function, heavy?)
EXHIBITS: dict[str, tuple[Callable[[], str], bool]] = {
    "fig2": (fig2, False),
    "fig3": (fig3, False),
    "fig4": (fig4, False),
    "fig5": (fig5, False),
    "fig6": (fig6, True),
    "fig7": (fig7, False),
    "fig8": (fig8, True),
    "table1": (table1, False),
    "sec51": (sec51, False),
    "sec53": (sec53, True),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exhibits", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="*",
        choices=[*EXHIBITS, []],
        help="exhibits to regenerate (default: all fast ones)",
    )
    parser.add_argument(
        "--full", action="store_true", help="include the heavy simulations"
    )
    args = parser.parse_args(argv)

    names = args.names or [
        name for name, (_, heavy) in EXHIBITS.items() if args.full or not heavy
    ]
    for i, name in enumerate(names):
        fn, _ = EXHIBITS[name]
        if i:
            print("\n" + "=" * 72 + "\n")
        print(fn())
    return 0


if __name__ == "__main__":
    sys.exit(main())
