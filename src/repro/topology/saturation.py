"""Packet-level network saturation (Section 5.3).

"In a real machine the latency experienced by a message tends to
increase as a function of the load ... there is typically a saturation
point at which the latency increases sharply; below the saturation point
the latency is fairly insensitive to the load.  This characteristic is
captured by the capacity constraint in LogP."

This module is a from-scratch packet-level simulator over the explicit
topologies of :mod:`repro.topology.topologies`: store-and-forward
routing where every directed link serves one packet per ``r`` cycles and
queues the rest.  Open-loop injection at a per-node rate ``lam`` with a
configurable traffic pattern produces the latency-vs-offered-load curve,
whose knee the benchmark compares against the LogP capacity constraint
``ceil(L/g)``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from functools import partial
from typing import Callable, Hashable, Sequence

import numpy as np

from ..sim.sweep import sweep_map

__all__ = [
    "LoadPoint",
    "simulate_load",
    "latency_vs_load",
    "find_knee",
    "RouteFn",
]

RouteFn = Callable[[int, int], Sequence[Hashable]]


@dataclass(frozen=True, slots=True)
class LoadPoint:
    """One point of the latency/load curve."""

    offered_load: float  # packets per node per cycle
    mean_latency: float
    p95_latency: float
    delivered: int
    throughput: float  # delivered packets per node per cycle


def simulate_load(
    n_nodes: int,
    route: RouteFn,
    lam: float,
    *,
    r: float = 1.0,
    horizon: float = 2000.0,
    warmup: float = 500.0,
    pattern: Callable[[int, np.random.Generator], int] | None = None,
    seed: int = 0,
) -> LoadPoint:
    """Run one offered-load level and measure delivered-packet latency.

    Args:
        n_nodes: processor count.
        route: ``route(src, dst)`` -> node sequence (src..dst inclusive).
        lam: injection rate, packets per node per cycle (Poisson).
        r: per-hop link service time in cycles.
        horizon: injection stops here; in-flight packets then drain.
        warmup: packets injected before this are excluded from stats.
        pattern: destination chooser ``pattern(src, rng) -> dst``
            (default: uniform random over other nodes).
        seed: RNG seed.
    """
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    rng = np.random.default_rng(seed)
    if pattern is None:

        def pattern(src: int, rng: np.random.Generator) -> int:
            dst = int(rng.integers(n_nodes - 1))
            return dst if dst < src else dst + 1

    # Pre-draw Poisson injection times per node.
    injections: list[tuple[float, int, int]] = []  # (time, src, dst)
    for src in range(n_nodes):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / lam))
            if t >= horizon:
                break
            injections.append((t, src, pattern(src, rng)))
    injections.sort()

    link_free: dict[tuple[Hashable, Hashable], float] = {}
    latencies: list[float] = []
    # Event heap: (time, seq, packet_state); packet advances hop by hop.
    heap: list[tuple[float, int, float, list, int]] = []
    seq = 0
    for t0, src, dst in injections:
        path = list(route(src, dst))
        if len(path) < 2:
            continue
        heapq.heappush(heap, (t0, seq, t0, path, 0))
        seq += 1

    while heap:
        now, _, t0, path, hop = heapq.heappop(heap)
        link = (path[hop], path[hop + 1])
        start = max(now, link_free.get(link, 0.0))
        done = start + r
        link_free[link] = done
        if hop + 2 == len(path):
            if t0 >= warmup:
                latencies.append(done - t0)
        else:
            heapq.heappush(heap, (done, seq, t0, path, hop + 1))
            seq += 1

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    measured_span = horizon - warmup
    return LoadPoint(
        offered_load=lam,
        mean_latency=float(lat.mean()),
        p95_latency=float(np.percentile(lat, 95)),
        delivered=len(latencies),
        throughput=len(latencies) / (n_nodes * measured_span),
    )


def _load_point(n_nodes: int, route: RouteFn, kwargs: dict, lam: float) -> LoadPoint:
    """Module-level work unit so the parallel sweep can pickle it."""
    return simulate_load(n_nodes, route, lam, **kwargs)


def latency_vs_load(
    n_nodes: int,
    route: RouteFn,
    loads: Sequence[float],
    *,
    workers: int | None = 1,
    **kwargs,
) -> list[LoadPoint]:
    """Sweep offered loads and return the latency curve (Section 5.3's
    exhibit).

    Each load level is an independent seeded simulation, so the sweep
    fans out over :func:`repro.sim.sweep.sweep_map` when ``workers``
    allows (``None`` honours ``REPRO_SWEEP_WORKERS``; the default of 1
    stays serial).  Points come back in the order of ``loads`` and are
    bit-identical to the serial sweep; ``route`` must be picklable (a
    module-level function) for a parallel run.
    """
    return sweep_map(
        partial(_load_point, n_nodes, route, kwargs), loads, workers=workers
    )


def find_knee(points: Sequence[LoadPoint], factor: float = 2.0) -> float:
    """Estimate the saturation point: the lowest offered load whose mean
    latency exceeds ``factor`` x the lightest-load latency.  Returns
    ``inf`` if the curve never saturates over the measured range."""
    if not points:
        raise ValueError("no load points supplied")
    pts = sorted(points, key=lambda q: q.offered_load)
    base = pts[0].mean_latency
    if base <= 0:
        base = min((q.mean_latency for q in pts if q.mean_latency > 0), default=1.0)
    for q in pts:
        if q.mean_latency > factor * base:
            return q.offered_load
    return math.inf
