"""Interconnection topologies and their distance metrics (Section 5.1).

The paper's Section 5.1 table lists asymptotic average inter-node
distances for seven networks and evaluates them at ``P = 1024`` to argue
that "for configurations of practical interest the difference between
topologies is a factor of two, except for very primitive networks" —
i.e. topology-dependent distance is a second-order effect and an
abstract latency ``L`` is a sound model.

Each topology here provides:

* an explicit :mod:`networkx` graph (direct networks) or stage structure
  (butterfly, fat tree);
* the paper's closed-form average distance;
* an exact average distance by BFS (cross-checking the formula);
* diameter and bisection width (used by the ``g`` calibration recipe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

__all__ = [
    "Topology",
    "Hypercube",
    "Butterfly",
    "FatTree",
    "Mesh2D",
    "Torus2D",
    "Mesh3D",
    "Torus3D",
    "PAPER_TOPOLOGIES",
    "average_distance_exact",
]


def average_distance_exact(G: nx.Graph) -> float:
    """Mean shortest-path distance over ordered distinct node pairs."""
    n = G.number_of_nodes()
    if n < 2:
        return 0.0
    total = 0
    for _, dists in nx.all_pairs_shortest_path_length(G):
        total += sum(dists.values())
    return total / (n * (n - 1))


@dataclass(frozen=True)
class Topology:
    """Base class: a named topology instantiated for ``P`` processors."""

    P: int

    name: str = ""
    formula: str = ""  # the paper's asymptotic expression, as text

    def graph(self) -> nx.Graph:
        """The processor-interconnect graph (direct networks only)."""
        raise NotImplementedError

    def average_distance(self) -> float:
        """The paper's closed-form average distance at this ``P``."""
        raise NotImplementedError

    def average_distance_bfs(self) -> float:
        """Exact average distance over the explicit graph."""
        return average_distance_exact(self.graph())

    def diameter(self) -> int:
        return nx.diameter(self.graph())

    def bisection_width(self) -> int:
        """Links crossing the best balanced cut (closed form per class)."""
        raise NotImplementedError


class Hypercube(Topology):
    """Binary hypercube: average distance ``log2(P)/2``."""

    def __init__(self, P: int) -> None:
        d = math.log2(P)
        if d != int(d):
            raise ValueError(f"hypercube needs power-of-two P, got {P}")
        super().__init__(P=P, name="Hypercube", formula="log2(p)/2")

    def graph(self) -> nx.Graph:
        d = int(math.log2(self.P))
        G = nx.Graph()
        G.add_nodes_from(range(self.P))
        for v in range(self.P):
            for b in range(d):
                u = v ^ (1 << b)
                if u > v:
                    G.add_edge(v, u)
        return G

    def average_distance(self) -> float:
        # Mean Hamming distance between distinct labels:
        # (d/2) * P/(P-1); the paper quotes the asymptote d/2.
        return math.log2(self.P) / 2

    def average_distance_bfs(self) -> float:
        d = int(math.log2(self.P))
        # Exact: sum_k k*C(d,k) / (P-1) = d*2^(d-1)/(P-1).
        return d * 2 ** (d - 1) / (self.P - 1)

    def bisection_width(self) -> int:
        return self.P // 2


class Butterfly(Topology):
    """log P-stage butterfly (indirect): every route crosses ``log2 P``
    stages, so the average distance *is* ``log2 P``."""

    def __init__(self, P: int) -> None:
        d = math.log2(P)
        if d != int(d):
            raise ValueError(f"butterfly needs power-of-two P, got {P}")
        super().__init__(P=P, name="Butterfly", formula="log2(p)")

    def graph(self) -> nx.Graph:
        """Switch graph: node (c, r) for column c in 0..log P, row r.

        Processor r attaches at (0, r); memory/targets at (log P, r).
        """
        d = int(math.log2(self.P))
        G = nx.Graph()
        for c in range(d):
            for r in range(self.P):
                G.add_edge((c, r), (c + 1, r))
                G.add_edge((c, r), (c + 1, r ^ (1 << (d - 1 - c))))
        return G

    def average_distance(self) -> float:
        return math.log2(self.P)

    def average_distance_bfs(self) -> float:
        # Indirect network: distance is the fixed stage count.
        return float(int(math.log2(self.P)))

    def diameter(self) -> int:
        return int(math.log2(self.P))

    def bisection_width(self) -> int:
        return self.P // 2


class FatTree(Topology):
    """4-ary fat tree: average leaf-to-leaf distance
    ``2 log4(p) - 2/3`` asymptotically (9.33 at P=1024, the table's
    value; the node pays 2 hops per tree level up to the lowest common
    ancestor)."""

    def __init__(self, P: int) -> None:
        h = math.log(P, 4)
        if abs(h - round(h)) > 1e-9:
            raise ValueError(f"4-ary fat tree needs P a power of 4, got {P}")
        super().__init__(P=P, name="4deg Fat Tree", formula="2*log4(p) - 2/3")

    @property
    def height(self) -> int:
        return round(math.log(self.P, 4))

    def graph(self) -> nx.Graph:
        """Skeleton tree (one switch per internal node; capacity is not
        represented — only distances matter here)."""
        G = nx.Graph()
        h = self.height
        # Node (l, i): level-l switch i; leaves are (0, i).
        for level in range(h):
            for i in range(4 ** (h - level)):
                G.add_edge((level, i), (level + 1, i // 4))
        return G

    def average_distance(self) -> float:
        # Exact over uniformly random ordered distinct leaf pairs:
        # E[2 * LCA level] with P(LCA <= l) = (4^l - 1)/(P - 1).
        h, P = self.height, self.P
        total = 0.0
        for level in range(1, h + 1):
            p_here = (4**level - 4 ** (level - 1)) / (P - 1)
            total += 2 * level * p_here
        return total

    def average_distance_bfs(self) -> float:
        G = self.graph()
        leaves = [(0, i) for i in range(self.P)]
        total = 0
        for leaf in leaves:
            dists = nx.single_source_shortest_path_length(G, leaf)
            total += sum(dists[x] for x in leaves if x != leaf)
        return total / (self.P * (self.P - 1))

    def diameter(self) -> int:
        return 2 * self.height

    def bisection_width(self) -> int:
        # An ideal fat tree has full bisection bandwidth.
        return self.P // 2


class _Grid(Topology):
    """Common base for k x k (x k) meshes and tori."""

    wrap: bool = False
    dims: int = 2

    def __init__(self, P: int, name: str, formula: str) -> None:
        k = round(P ** (1.0 / self.dims))
        if k**self.dims != P:
            raise ValueError(
                f"{name} needs P a perfect {self.dims}-power, got {P}"
            )
        super().__init__(P=P, name=name, formula=formula)

    @property
    def side(self) -> int:
        return round(self.P ** (1.0 / self.dims))

    def graph(self) -> nx.Graph:
        G = nx.grid_graph(dim=[self.side] * self.dims, periodic=self.wrap)
        return G

    def _per_dim_average(self) -> float:
        k = self.side
        if self.wrap:
            # Ring of k: average distance k/4 (exactly k^2/(4(k-1)) odd/even
            # nuances; the paper uses the asymptote k/4).
            return k / 4
        # Path of k: average |i-j| over distinct pairs -> (k+1)/3 ~ k/3.
        return k / 3

    def average_distance(self) -> float:
        return self.dims * self._per_dim_average()

    def bisection_width(self) -> int:
        k = self.side
        per_cut = k ** (self.dims - 1)
        return 2 * per_cut if self.wrap else per_cut


class Mesh2D(_Grid):
    wrap = False
    dims = 2

    def __init__(self, P: int) -> None:
        super().__init__(P, "2D Mesh", "(2/3)*sqrt(p)")


class Torus2D(_Grid):
    wrap = True
    dims = 2

    def __init__(self, P: int) -> None:
        super().__init__(P, "2D Torus", "(1/2)*sqrt(p)")


class Mesh3D(_Grid):
    wrap = False
    dims = 3

    def __init__(self, P: int) -> None:
        super().__init__(P, "3D Mesh", "p**(1/3)")


class Torus3D(_Grid):
    wrap = True
    dims = 3

    def __init__(self, P: int) -> None:
        super().__init__(P, "3D Torus", "(3/4)*p**(1/3)")


def PAPER_TOPOLOGIES(P: int = 1024) -> list[Topology]:
    """The seven topologies of the Section 5.1 table, instantiated at
    ``P`` (1024 in the paper; 3D networks use the nearest cube,
    ``10**3 = 1000``, matching the paper's ``p**(1/3) ~ 10``)."""
    cube_side = round(P ** (1 / 3))
    P3 = cube_side**3
    return [
        Hypercube(P),
        Butterfly(P),
        FatTree(P),
        Torus3D(P3),
        Mesh3D(P3),
        Torus2D(P),
        Mesh2D(P),
    ]
