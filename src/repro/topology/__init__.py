"""Real-network substrate for Section 5: topologies, routing, unloaded
message timing, packet-level saturation, and communication patterns."""

from .effective_gap import PatternGaps, analytic_pattern_gap, effective_gap
from .patterns import (
    bit_reverse_pattern,
    hotspot_pattern,
    link_load,
    max_link_contention,
    remap_pattern,
    shift_pattern,
    transpose_pattern,
    uniform_pattern,
)
from .routing import fat_tree_route, grid_route, hop_count, hypercube_route
from .saturation import LoadPoint, find_knee, latency_vs_load, simulate_load
from .topologies import (
    PAPER_TOPOLOGIES,
    Butterfly,
    FatTree,
    Hypercube,
    Mesh2D,
    Mesh3D,
    Topology,
    Torus2D,
    Torus3D,
    average_distance_exact,
)
from .unloaded import NetworkHardware, logp_from_hardware, unloaded_time

__all__ = [
    "PatternGaps",
    "analytic_pattern_gap",
    "effective_gap",
    "Topology",
    "Hypercube",
    "Butterfly",
    "FatTree",
    "Mesh2D",
    "Torus2D",
    "Mesh3D",
    "Torus3D",
    "PAPER_TOPOLOGIES",
    "average_distance_exact",
    "hypercube_route",
    "grid_route",
    "fat_tree_route",
    "hop_count",
    "NetworkHardware",
    "unloaded_time",
    "logp_from_hardware",
    "LoadPoint",
    "simulate_load",
    "latency_vs_load",
    "find_knee",
    "uniform_pattern",
    "transpose_pattern",
    "bit_reverse_pattern",
    "shift_pattern",
    "hotspot_pattern",
    "remap_pattern",
    "link_load",
    "max_link_contention",
]
