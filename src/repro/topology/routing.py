"""Deterministic routing on the Section 5 topologies.

Used by the saturation simulator (:mod:`repro.topology.saturation`) and
by the hop-count cross-checks: e-cube (dimension-order) routing for
hypercubes, dimension-order with optional wraparound for meshes/tori,
up-down routing for fat trees.

Routes are returned as node sequences including source and destination;
the hop count is ``len(route) - 1``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "hypercube_route",
    "grid_route",
    "fat_tree_route",
    "butterfly_route",
    "hop_count",
]


def hop_count(route: Sequence) -> int:
    """Number of links a route crosses."""
    return len(route) - 1


def hypercube_route(src: int, dst: int, dim: int) -> list[int]:
    """E-cube routing: correct differing bits lowest-first.

    Deterministic and deadlock-free; route length equals the Hamming
    distance.
    """
    if not (0 <= src < 2**dim and 0 <= dst < 2**dim):
        raise ValueError(f"nodes out of range for dim={dim}")
    route = [src]
    cur = src
    for b in range(dim):
        bit = 1 << b
        if (cur ^ dst) & bit:
            cur ^= bit
            route.append(cur)
    return route


def grid_route(
    src: tuple[int, ...],
    dst: tuple[int, ...],
    shape: tuple[int, ...],
    wrap: bool = False,
) -> list[tuple[int, ...]]:
    """Dimension-order routing on a mesh (or torus with ``wrap``).

    Corrects coordinates dimension by dimension; on a torus each
    dimension takes the shorter way around (ties go up).
    """
    if len(src) != len(shape) or len(dst) != len(shape):
        raise ValueError("coordinate rank mismatch")
    for c, k in zip(src + dst, shape + shape):
        if not 0 <= c < k:
            raise ValueError(f"coordinate {c} out of range {k}")
    route = [tuple(src)]
    cur = list(src)
    for d, k in enumerate(shape):
        while cur[d] != dst[d]:
            if not wrap:
                step = 1 if dst[d] > cur[d] else -1
                cur[d] += step
            else:
                fwd = (dst[d] - cur[d]) % k
                back = (cur[d] - dst[d]) % k
                cur[d] = (cur[d] + (1 if fwd <= back else -1)) % k
            route.append(tuple(cur))
    return route


def fat_tree_route(src: int, dst: int, height: int) -> list[tuple[int, int]]:
    """Up-down routing in a 4-ary fat tree of ``height`` levels.

    Climb to the lowest common ancestor, then descend.  Nodes are
    ``(level, index)``; leaves are level 0.
    """
    P = 4**height
    if not (0 <= src < P and 0 <= dst < P):
        raise ValueError(f"leaves out of range for height={height}")
    if src == dst:
        return [(0, src)]
    # Find the lowest level l where the two leaves share a 4^l subtree.
    lca = 1
    while src // (4**lca) != dst // (4**lca):
        lca += 1
    up = [(lvl, src // (4**lvl)) for lvl in range(lca + 1)]
    down = [(lvl, dst // (4**lvl)) for lvl in range(lca - 1, -1, -1)]
    return up + down


def butterfly_route(src: int, dst: int, dim: int) -> list[tuple[int, int]]:
    """Forward routing through a ``dim``-stage butterfly.

    The message enters at switch ``(0, src)`` and exits at
    ``(dim, dst)``; at stage ``c`` the switch either goes straight or
    crosses, fixing bit ``dim - 1 - c`` of the row to match ``dst``.
    Every route has exactly ``dim`` hops — which is why the butterfly's
    average distance in the Section 5.1 table is ``log2 P``.
    """
    P = 2**dim
    if not (0 <= src < P and 0 <= dst < P):
        raise ValueError(f"nodes out of range for dim={dim}")
    route = [(0, src)]
    row = src
    for c in range(dim):
        bit = 1 << (dim - 1 - c)
        if (row ^ dst) & bit:
            row ^= bit
        route.append((c + 1, row))
    return route
