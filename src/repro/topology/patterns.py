"""Communication patterns, good and bad (Section 5.6).

"By abstracting the internal structure of the network into a few
performance parameters, the model cannot distinguish between 'good'
permutations and 'bad' permutations."  This module provides the standard
patterns as destination maps, plus a link-contention analyzer that, for
a given topology+routing, reports how unevenly a pattern loads the
links — quantifying exactly what LogP abstracts away (and what the
multiple-``g`` extension the paper suggests would parameterize).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

__all__ = [
    "uniform_pattern",
    "transpose_pattern",
    "bit_reverse_pattern",
    "shift_pattern",
    "hotspot_pattern",
    "remap_pattern",
    "link_load",
    "max_link_contention",
]


def _check_pow2(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"need a power of two >= 2, got {n}")
    return int(math.log2(n))


def uniform_pattern(P: int, seed: int = 0) -> np.ndarray:
    """A random permutation with no fixed points (derangement by
    rejection) — the benign baseline."""
    rng = np.random.default_rng(seed)
    while True:
        perm = rng.permutation(P)
        if not np.any(perm == np.arange(P)):
            return perm


def transpose_pattern(P: int) -> np.ndarray:
    """Matrix transpose: node (i, j) -> (j, i) on a sqrt(P) grid — a
    classically bad permutation for meshes and multistage networks."""
    k = math.isqrt(P)
    if k * k != P:
        raise ValueError(f"transpose needs square P, got {P}")
    idx = np.arange(P)
    i, j = idx // k, idx % k
    return j * k + i


def bit_reverse_pattern(P: int) -> np.ndarray:
    """Bit-reversal permutation — pathological on hypercubes with
    dimension-order routing."""
    bits = _check_pow2(P)
    rev = np.zeros(P, dtype=np.int64)
    for b in range(bits):
        rev = (rev << 1) | ((np.arange(P) >> b) & 1)
    return rev


def shift_pattern(P: int, k: int = 1) -> np.ndarray:
    """Cyclic shift by ``k`` — contention-free on rings and tori."""
    return (np.arange(P) + k) % P


def hotspot_pattern(P: int, target: int = 0) -> np.ndarray:
    """Everyone sends to one node — the degenerate worst case the LogP
    capacity constraint throttles."""
    out = np.full(P, target, dtype=np.int64)
    out[target] = (target + 1) % P
    return out


def remap_pattern(n: int, P: int) -> list[tuple[int, int, int]]:
    """The FFT cyclic->blocked remap as (src, dst, count) triples:
    each processor sends ``n/P**2`` points to every other — a balanced
    all-to-all, not a permutation."""
    _check_pow2(n)
    _check_pow2(P)
    if n < P * P:
        raise ValueError(f"remap needs n >= P**2, got n={n}, P={P}")
    per = n // (P * P)
    return [
        (s, d, per) for s in range(P) for d in range(P) if s != d
    ]


def link_load(
    pattern: Sequence[int],
    route,
) -> Counter:
    """Count how many routes cross each directed link under a pattern.

    ``route(src, dst)`` returns the node sequence; returns a Counter of
    (node, node) -> crossings.
    """
    loads: Counter = Counter()
    for src, dst in enumerate(pattern):
        if src == int(dst):
            continue
        path = list(route(src, int(dst)))
        for a, b in zip(path, path[1:]):
            loads[(a, b)] += 1
    return loads


def max_link_contention(pattern: Sequence[int], route) -> int:
    """The busiest link's crossing count: 1 means the permutation is
    contention-free under this routing ("repeated transmissions within
    this pattern can utilize essentially the full bandwidth"); large
    values mean intermediate routers saturate."""
    loads = link_load(pattern, route)
    return max(loads.values(), default=0)
