"""Per-pattern gaps — the extension Section 5.6 proposes.

"A possible extension of the LogP model to reflect network performance
on various communication patterns would be to provide multiple g's,
where the one appropriate to the particular communication pattern is
used in the analysis."

This module makes that concrete, and grounds it in the repository's own
network substrate: the *effective gap* of a (topology, routing, pattern)
triple is measured by driving the packet-level simulator with that
pattern at increasing offered load and finding the highest per-node rate
the network sustains — its reciprocal is the pattern's ``g``.

:class:`PatternGaps` then carries a dictionary of per-pattern gaps plus
the default, and hands out ordinary :class:`~repro.core.params.LogPParams`
specialized to a pattern, so all existing analyses apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from ..core.params import LogPParams
from .patterns import max_link_contention
from .saturation import RouteFn, simulate_load

__all__ = ["PatternGaps", "effective_gap", "analytic_pattern_gap"]


@dataclass(frozen=True)
class PatternGaps:
    """A LogP machine with one gap per communication pattern.

    ``base`` supplies L, o, P and the default (uniform-traffic) g;
    ``gaps`` maps pattern names to their measured/derived gaps.
    """

    base: LogPParams
    gaps: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, g in self.gaps.items():
            if g < 0:
                raise ValueError(f"gap for {name!r} must be >= 0, got {g}")

    def params_for(self, pattern: str | None = None) -> LogPParams:
        """The LogP parameters to use when analysing ``pattern``."""
        if pattern is None or pattern not in self.gaps:
            return self.base
        return replace(
            self.base,
            g=self.gaps[pattern],
            name=self.base._tag(pattern),
        )

    def worst_pattern(self) -> str | None:
        """The pattern with the largest gap (the network's weak spot —
        'the goal of the hardware designer should be to make these the
        exceptional case')."""
        if not self.gaps:
            return None
        return max(self.gaps, key=self.gaps.get)  # type: ignore[arg-type]

    def with_pattern(self, name: str, g: float) -> "PatternGaps":
        merged = dict(self.gaps)
        merged[name] = g
        return PatternGaps(base=self.base, gaps=merged)


def analytic_pattern_gap(
    base_g: float, pattern: Sequence[int], route: RouteFn
) -> float:
    """A fast upper-estimate of a permutation's gap from link contention.

    If the busiest link carries ``c`` routes of the pattern, sustained
    throughput per node can be at most ``1/c`` of a contention-free
    pattern's, so the effective gap is ``c * base_g``.  (Exact for
    long-lived permutation traffic on networks whose links serve one
    packet per ``base_g``.)
    """
    if base_g < 0:
        raise ValueError(f"base_g must be >= 0, got {base_g}")
    c = max_link_contention(pattern, route)
    return base_g * max(1, c)


def effective_gap(
    n_nodes: int,
    route: RouteFn,
    pattern: Sequence[int],
    *,
    r: float = 1.0,
    target_latency_factor: float = 3.0,
    loads: Sequence[float] | None = None,
    horizon: float = 1200.0,
    warmup: float = 300.0,
    seed: int = 0,
) -> float:
    """Measure a pattern's effective gap on the packet-level simulator.

    Drives the network with the fixed ``pattern`` (node i always sends
    to ``pattern[i]``) at increasing per-node rates; the effective gap
    is the reciprocal of the highest offered load whose mean latency
    stays below ``target_latency_factor`` x the idle-network latency of
    the same pattern.  Returns ``inf`` if even the lightest probed load
    saturates.
    """
    pattern = np.asarray(pattern)
    if loads is None:
        loads = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9]

    def chooser(src: int, rng: np.random.Generator) -> int:
        return int(pattern[src])

    # Idle-network reference latency from a deliberately light probe.
    probe = simulate_load(
        n_nodes,
        route,
        min(min(loads), 0.01),
        r=r,
        horizon=horizon,
        warmup=warmup,
        pattern=chooser,
        seed=seed,
    )
    baseline = max(probe.mean_latency, r)
    best = None
    for lam in sorted(loads):
        pt = simulate_load(
            n_nodes,
            route,
            lam,
            r=r,
            horizon=horizon,
            warmup=warmup,
            pattern=chooser,
            seed=seed,
        )
        if pt.mean_latency <= target_latency_factor * baseline:
            best = lam
        else:
            break
    if best is None:
        return float("inf")
    return 1.0 / best
