"""Unloaded message time and the LogP calibration recipe (Section 5.2).

"In a real machine, transmission of an M-bit long message in an unloaded
or lightly loaded network has four parts":

    ``T(M, H) = Tsnd + ceil(M/w) + H*r + Trcv``

— send overhead, channel-width-limited injection of ``M`` bits ``w`` at
a time, ``H`` hops of per-node delay ``r``, and receive overhead, all in
machine cycles.  Table 1 evaluates this at ``M = 160`` bits for five
machines (plus two Active Message rows).

The section then gives the recipe for extracting LogP parameters from
those constants: ``o = (Tsnd + Trcv)/2``, ``L = H*r + ceil(M/w)`` with
``H`` the maximum route length and ``M`` the fixed message size in use,
and ``g`` as the message size divided by per-processor bisection
bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.params import LogPParams

__all__ = ["NetworkHardware", "unloaded_time", "logp_from_hardware"]


@dataclass(frozen=True, slots=True)
class NetworkHardware:
    """Hardware constants of one machine's network (one Table 1 row).

    Attributes:
        name: machine name.
        network: topology family label.
        cycle_ns: network cycle time in nanoseconds.
        w: channel width in bits per cycle.
        send_recv_overhead: ``Tsnd + Trcv`` in cycles.
        r: routing delay through one intermediate node, in cycles.
        avg_hops: average route length at the quoted configuration.
        P: the configuration's processor count (1024 in Table 1).
        max_hops: maximum route length (defaults to ``2 * avg_hops``
            rounded, a conservative stand-in when the diameter isn't
            quoted).
        bisection_bw_bits_per_cycle_per_proc: per-processor bisection
            bandwidth, in bits/cycle, for the ``g`` calibration
            (optional).
    """

    name: str
    network: str
    cycle_ns: float
    w: int
    send_recv_overhead: float
    r: float
    avg_hops: float
    P: int = 1024
    max_hops: float | None = None
    bisection_bw_bits_per_cycle_per_proc: float | None = None

    def __post_init__(self) -> None:
        if min(self.cycle_ns, self.w, self.r) <= 0:
            raise ValueError("cycle_ns, w and r must be positive")
        if self.send_recv_overhead < 0 or self.avg_hops < 0:
            raise ValueError("overhead and hops must be >= 0")


def unloaded_time(hw: NetworkHardware, M: int, hops: float | None = None) -> float:
    """``T(M, H)`` in cycles for an ``M``-bit message over ``hops``
    (default: the machine's average route).  Table 1's final column is
    ``unloaded_time(hw, 160)``."""
    if M < 1:
        raise ValueError(f"M must be >= 1 bit, got {M}")
    H = hw.avg_hops if hops is None else hops
    return hw.send_recv_overhead + math.ceil(M / hw.w) + H * hw.r


def logp_from_hardware(
    hw: NetworkHardware, M: int = 160
) -> LogPParams:
    """Extract LogP parameters per the Section 5.2 recipe.

    ``o = (Tsnd + Trcv)/2``; ``L = H*r + ceil(M/w)`` with ``H`` the
    maximum route; ``g = M / (per-processor bisection bandwidth)`` when
    known, else ``g = o`` (overhead-limited machines).  All in network
    cycles.
    """
    o = hw.send_recv_overhead / 2
    H = hw.max_hops if hw.max_hops is not None else 2 * hw.avg_hops
    L = H * hw.r + math.ceil(M / hw.w)
    if hw.bisection_bw_bits_per_cycle_per_proc:
        g = M / hw.bisection_bw_bits_per_cycle_per_proc
    else:
        g = o
    return LogPParams(L=L, o=o, g=g, P=hw.P, name=hw.name)
