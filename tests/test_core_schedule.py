"""Tests for repro.core.schedule: intervals, messages, timelines."""

import pytest

from repro.core import (
    Activity,
    Interval,
    LogPParams,
    MessageRecord,
    ProcessorTimeline,
    Schedule,
    merge_intervals,
)


def mk_msg(src=0, dst=1, t0=0.0, o=2.0, L=6.0):
    return MessageRecord(
        src=src,
        dst=dst,
        send_start=t0,
        inject=t0 + o,
        arrive=t0 + o + L,
        recv_start=t0 + o + L,
        recv_end=t0 + 2 * o + L,
    )


class TestInterval:
    def test_duration(self):
        assert Interval(1.0, 3.5, Activity.COMPUTE).duration == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0, Activity.SEND)

    def test_zero_duration_allowed(self):
        assert Interval(1.0, 1.0, Activity.IDLE).duration == 0


class TestMessageRecord:
    def test_latency_and_end_to_end(self):
        m = mk_msg()
        assert m.latency == 6.0
        assert m.end_to_end == 10.0

    def test_rejects_non_monotone_timeline(self):
        with pytest.raises(ValueError):
            MessageRecord(
                src=0, dst=1, send_start=5, inject=4, arrive=10,
                recv_start=10, recv_end=12,
            )


class TestTimeline:
    def test_busy_time_excludes_idle_and_stall(self):
        tl = ProcessorTimeline(0)
        tl.add(Interval(0, 4, Activity.COMPUTE))
        tl.add(Interval(4, 6, Activity.SEND))
        tl.add(Interval(6, 9, Activity.STALL))
        tl.add(Interval(9, 10, Activity.RECV))
        assert tl.busy_time() == 7

    def test_time_in(self):
        tl = ProcessorTimeline(0)
        tl.add(Interval(0, 4, Activity.COMPUTE))
        tl.add(Interval(5, 9, Activity.COMPUTE))
        assert tl.time_in(Activity.COMPUTE) == 8

    def test_end_time_empty(self):
        assert ProcessorTimeline(0).end_time() == 0.0

    def test_overlap_detection(self):
        tl = ProcessorTimeline(0)
        tl.add(Interval(0, 4, Activity.COMPUTE))
        tl.add(Interval(3, 5, Activity.SEND))
        assert len(tl.overlaps()) == 1

    def test_adjacent_intervals_do_not_overlap(self):
        tl = ProcessorTimeline(0)
        tl.add(Interval(0, 4, Activity.COMPUTE))
        tl.add(Interval(4, 6, Activity.SEND))
        assert tl.overlaps() == []

    def test_stall_never_counts_as_overlap(self):
        tl = ProcessorTimeline(0)
        tl.add(Interval(0, 4, Activity.STALL))
        tl.add(Interval(2, 6, Activity.COMPUTE))
        assert tl.overlaps() == []


class TestSchedule:
    def test_makespan_over_intervals_and_messages(self):
        s = Schedule(LogPParams(L=6, o=2, g=4, P=4))
        s.add_interval(0, 0, 5, Activity.COMPUTE)
        s.add_message(mk_msg(t0=3))  # recv_end = 13
        assert s.makespan == 13

    def test_timeline_lazily_created_and_validated(self):
        s = Schedule(LogPParams(L=6, o=2, g=4, P=4))
        s.timeline(3)
        with pytest.raises(ValueError):
            s.timeline(4)

    def test_busy_fraction(self):
        s = Schedule(LogPParams(L=6, o=2, g=4, P=2))
        s.add_interval(0, 0, 5, Activity.COMPUTE)
        s.add_interval(1, 0, 10, Activity.COMPUTE)
        assert s.busy_fraction(0) == 0.5
        assert s.busy_fraction(1) == 1.0

    def test_receive_load(self):
        s = Schedule(LogPParams(L=6, o=2, g=4, P=4))
        s.add_message(mk_msg(0, 2))
        s.add_message(mk_msg(1, 2, t0=10))
        s.add_message(mk_msg(3, 1, t0=20))
        assert s.receive_load() == {2: 2, 1: 1}

    def test_messages_between(self):
        s = Schedule(LogPParams(L=6, o=2, g=4, P=4))
        s.add_message(mk_msg(0, 2))
        s.add_message(mk_msg(0, 3))
        assert len(s.messages_between(0, 2)) == 1
        assert s.messages_between(2, 0) == []

    def test_empty_schedule_makespan_zero(self):
        assert Schedule(LogPParams(L=1, o=1, g=1, P=1)).makespan == 0.0


class TestMergeIntervals:
    def test_merges_adjacent_same_kind(self):
        merged = merge_intervals(
            [
                Interval(0, 2, Activity.COMPUTE),
                Interval(2, 4, Activity.COMPUTE),
                Interval(4, 5, Activity.SEND),
            ]
        )
        assert len(merged) == 2
        assert merged[0].end == 4

    def test_does_not_merge_across_gap(self):
        merged = merge_intervals(
            [Interval(0, 2, Activity.COMPUTE), Interval(3, 4, Activity.COMPUTE)]
        )
        assert len(merged) == 2

    def test_does_not_merge_different_detail(self):
        merged = merge_intervals(
            [
                Interval(0, 2, Activity.SEND, "->1"),
                Interval(2, 4, Activity.SEND, "->2"),
            ]
        )
        assert len(merged) == 2
