"""Tests for repro.machines.fit: closed-loop parameter measurement."""

import math

import pytest

from repro.core import LogPParams
from repro.machines.fit import MeasuredLogP, measure_logp

GRID = [
    LogPParams(L=6, o=2, g=4, P=8),
    LogPParams(L=16, o=1, g=4, P=4),
    LogPParams(L=20, o=0, g=2, P=3),
    LogPParams(L=5, o=3, g=1, P=4),
    LogPParams(L=12, o=3, g=3, P=6),
    LogPParams(L=1.3, o=0.44, g=0.89, P=4),  # the CM-5 calibration
]


class TestClosedLoopRecovery:
    @pytest.mark.parametrize("p", GRID, ids=lambda p: f"L{p.L}o{p.o}g{p.g}")
    def test_overhead_exact(self, p):
        m = measure_logp(p, measure_depth=False)
        assert m.o == pytest.approx(p.o)

    @pytest.mark.parametrize("p", GRID, ids=lambda p: f"L{p.L}o{p.o}g{p.g}")
    def test_latency_exact(self, p):
        m = measure_logp(p, measure_depth=False)
        assert m.L == pytest.approx(p.L)
        assert m.round_trip == pytest.approx(p.remote_read())

    @pytest.mark.parametrize("p", GRID, ids=lambda p: f"L{p.L}o{p.o}g{p.g}")
    def test_effective_gap_exact(self, p):
        m = measure_logp(p, measure_depth=False)
        assert m.effective_g == pytest.approx(max(p.g, p.o))

    @pytest.mark.parametrize("p", GRID[:5], ids=lambda p: f"L{p.L}o{p.o}g{p.g}")
    def test_pipeline_depth_at_knee(self, p):
        m = measure_logp(p)
        knee = math.ceil((p.L + 2 * p.o) / max(p.g, p.o))
        assert abs(m.pipeline_depth - knee) <= 1

    def test_depth_equals_capacity_when_overhead_free(self):
        p = LogPParams(L=20, o=0, g=2, P=3)
        m = measure_logp(p)
        assert m.pipeline_depth == p.capacity


class TestDerivedOutputs:
    def test_as_params_roundtrip(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        m = measure_logp(p, measure_depth=False)
        q = m.as_params(P=8)
        assert (q.L, q.o, q.g, q.P) == (6, 2, 4, 8)

    def test_as_params_conservative_when_g_hidden(self):
        # True g=1 < o=3: the measured parameter set uses the effective
        # gap, which is exactly Section 3.1's merge rule.
        p = LogPParams(L=5, o=3, g=1, P=4)
        m = measure_logp(p, measure_depth=False)
        q = m.as_params(P=4)
        assert q.g == pytest.approx(3.0)

    def test_gap_bounds_contain_truth(self):
        for p in GRID[:5]:
            m = measure_logp(p)
            lo, hi = m.gap_bounds()
            assert p.g <= hi + 1e-9
            assert lo <= max(p.g, p.o) + 1e-9

    def test_small_machine_rejected_for_gap(self):
        p = LogPParams(L=6, o=2, g=4, P=2)
        with pytest.raises(ValueError, match="P >= 3"):
            measure_logp(p)
