"""Tests for the Section 5.6 multiple-g extension
(repro.topology.effective_gap)."""

import math

import pytest

from repro.core import LogPParams
from repro.topology import (
    PatternGaps,
    analytic_pattern_gap,
    bit_reverse_pattern,
    effective_gap,
    grid_route,
    hotspot_pattern,
    hypercube_route,
    shift_pattern,
)


def hroute(dim):
    return lambda s, d: hypercube_route(s, d, dim)


class TestPatternGaps:
    def test_default_when_pattern_unknown(self):
        base = LogPParams(L=6, o=2, g=4, P=16)
        pg = PatternGaps(base, {"transpose": 12.0})
        assert pg.params_for() is base
        assert pg.params_for("butterfly") is base

    def test_specialized_params(self):
        base = LogPParams(L=6, o=2, g=4, P=16)
        pg = PatternGaps(base, {"transpose": 12.0})
        p = pg.params_for("transpose")
        assert p.g == 12.0
        assert (p.L, p.o, p.P) == (6, 2, 16)
        assert "transpose" in p.name

    def test_worst_pattern(self):
        base = LogPParams(L=6, o=2, g=4, P=16)
        pg = PatternGaps(base, {"a": 5.0, "b": 9.0, "c": 4.0})
        assert pg.worst_pattern() == "b"
        assert PatternGaps(base).worst_pattern() is None

    def test_with_pattern_immutably_extends(self):
        base = LogPParams(L=6, o=2, g=4, P=16)
        pg = PatternGaps(base)
        pg2 = pg.with_pattern("shift", 4.0)
        assert "shift" in pg2.gaps and "shift" not in pg.gaps

    def test_negative_gap_rejected(self):
        base = LogPParams(L=6, o=2, g=4, P=16)
        with pytest.raises(ValueError):
            PatternGaps(base, {"x": -1.0})


class TestAnalyticPatternGap:
    def test_contention_free_keeps_base(self):
        g = analytic_pattern_gap(4.0, shift_pattern(16), hroute(4))
        assert g == 4.0

    def test_contended_pattern_scales_gap(self):
        g = analytic_pattern_gap(4.0, bit_reverse_pattern(64), hroute(6))
        assert g >= 8.0

    def test_hotspot_scales_by_fanin(self):
        g = analytic_pattern_gap(1.0, hotspot_pattern(16), hroute(4))
        assert g >= 8.0

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            analytic_pattern_gap(-1.0, shift_pattern(8), hroute(3))


class TestMeasuredEffectiveGap:
    @staticmethod
    def torus_route(k):
        def route(s, d):
            return [
                c[0] * k + c[1]
                for c in grid_route(
                    (s // k, s % k), (d // k, d % k), (k, k), wrap=True
                )
            ]

        return route

    def test_benign_pattern_has_small_gap(self):
        g = effective_gap(
            16, self.torus_route(4), shift_pattern(16), seed=1
        )
        assert g <= 1.0 / 0.7 + 1e-9  # sustains high load

    def test_hotspot_has_large_gap(self):
        g_shift = effective_gap(
            16, self.torus_route(4), shift_pattern(16), seed=1
        )
        g_hot = effective_gap(
            16, self.torus_route(4), hotspot_pattern(16), seed=1
        )
        assert g_hot > 2 * g_shift

    def test_returns_inf_when_always_saturated(self):
        g = effective_gap(
            16,
            self.torus_route(4),
            hotspot_pattern(16),
            loads=[5.0, 10.0],
            seed=2,
        )
        assert math.isinf(g)

    def test_feeds_back_into_analysis(self):
        """The point of the extension: the same algorithm analysis with
        the pattern's own g."""
        from repro.core import h_relation

        base = LogPParams(L=6, o=2, g=1.5, P=16)
        g_hot = effective_gap(
            16, self.torus_route(4), hotspot_pattern(16), seed=3
        )
        pg = PatternGaps(base, {"hotspot": g_hot, "shift": base.g})
        cost_shift = h_relation(pg.params_for("shift"), 10)
        cost_hot = h_relation(pg.params_for("hotspot"), 10)
        assert cost_hot > 2 * cost_shift
