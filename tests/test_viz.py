"""Tests for repro.viz: Gantt, trees, tables."""

import pytest

from repro.core import Activity, LogPParams
from repro.algorithms.broadcast import broadcast_schedule, optimal_broadcast_tree
from repro.algorithms.summation import optimal_summation_tree
from repro.viz import (
    format_table,
    render_broadcast_tree,
    render_gantt,
    render_summation_tree,
)


@pytest.fixture
def fig3_tree(fig3_params):
    return optimal_broadcast_tree(fig3_params)


class TestGantt:
    def test_contains_all_processors(self, fig3_tree):
        out = render_gantt(broadcast_schedule(fig3_tree))
        for r in range(8):
            assert f"P{r}" in out

    def test_glyphs_present(self, fig3_tree):
        out = render_gantt(broadcast_schedule(fig3_tree))
        assert "s" in out and "r" in out
        assert "legend" in out

    def test_flight_overlay(self, fig3_tree):
        out = render_gantt(broadcast_schedule(fig3_tree), show_flight=True)
        assert "-" in out

    def test_empty_schedule(self):
        from repro.core import Schedule

        assert "empty" in render_gantt(Schedule(LogPParams(L=1, o=1, g=1, P=2)))

    def test_width_respected(self, fig3_tree):
        out = render_gantt(broadcast_schedule(fig3_tree), width=40)
        for line in out.splitlines()[1:-1]:
            assert len(line) <= 40 + 5  # label prefix

    def test_clipping(self, fig3_tree):
        out = render_gantt(broadcast_schedule(fig3_tree), until=10)
        assert "P0" in out


class TestTreeRendering:
    def test_broadcast_tree_labels(self, fig3_tree):
        out = render_broadcast_tree(fig3_tree)
        assert "P0 (t=0)" in out
        assert "(t=24)" in out
        assert out.count("P") >= 8

    def test_summation_tree_labels(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        out = render_summation_tree(tree)
        assert "deadline=28" in out
        assert "inputs=17" in out

    def test_tree_shape_characters(self, fig3_tree):
        out = render_broadcast_tree(fig3_tree)
        assert "|--" in out and "`--" in out


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 22.5]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_numeric_right_aligned(self):
        out = format_table(["x"], [[1], [100]])
        lines = out.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]], floatfmt=".2f")
        assert "3.14" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
