"""The parallel sweep runner's determinism contract.

``sweep_map`` must be a drop-in replacement for the serial list
comprehension: same results, same order, for any worker count.  The
heavyweight check here runs 100+ fuzz-generated simulations serially and
at 2 and 4 workers and compares *everything* observable — makespans,
stall-event traces, stall-report summaries, message and event counts —
not just a summary hash, so a nondeterministic merge (or a worker
mutating shared state) fails loudly with the first differing field.
"""

import os
import warnings

import pytest

from repro.sim import FixedLatency, LogPMachine, stall_report
from repro.sim.fuzz import make_case
from repro.sim.sweep import (
    ENV_WORKERS,
    SweepItemError,
    SweepShortfallError,
    WorkerPool,
    _merge_guarded,
    plan_sweep,
    resolve_workers,
    sweep_map,
)

SEEDS = list(range(110))


def _square(x: int) -> int:
    return x * x


def _ring_route(s: int, d: int) -> list:
    """8-node ring, module-level so the parallel sweep can pickle it."""
    from repro.topology.routing import grid_route

    return [c[0] for c in grid_route((s,), (d,), (8,), wrap=True)]


def _fingerprint(seed: int) -> tuple:
    """Everything observable about one traced fuzz-case run.

    Module-level (picklable) and seeded entirely by ``seed``, as the
    sweep_map contract requires.
    """
    case = make_case(seed)
    machine = LogPMachine(
        case.params,
        latency=FixedLatency(case.params.L),
        trace=True,
        max_events=2_000_000,
    )
    res = machine.run(case.factory)
    report = res.stall_report()
    return (
        seed,
        case.family,
        res.makespan,
        res.total_messages,
        res.total_stall_time,
        res.events_run,
        tuple(res.stall_events),
        (
            report.stalls,
            report.admitted,
            tuple(sorted(report.stalls_by_cause.items())),
            tuple(sorted(report.stalls_by_dst.items())),
            tuple(sorted(report.max_queue_by_dst.items())),
        ),
        tuple(r.value for r in res.results),
        tuple(r.finished_at for r in res.results),
    )


class TestDeterminism:
    def test_parallel_sweep_bit_identical_to_serial(self):
        """The tentpole contract: 2- and 4-worker sweeps reproduce the
        serial sweep exactly, element for element, over 100+ seeds."""
        serial = sweep_map(_fingerprint, SEEDS, workers=1)
        assert [f[0] for f in serial] == SEEDS  # submission order kept
        for workers in (2, 4):
            parallel = sweep_map(_fingerprint, SEEDS, workers=workers)
            assert parallel == serial, f"divergence at workers={workers}"

    def test_chunksize_does_not_change_results(self):
        serial = sweep_map(_square, range(37), workers=1)
        for chunksize in (1, 5, 100):
            assert (
                sweep_map(_square, range(37), workers=2, chunksize=chunksize)
                == serial
            )

    def test_fuzz_sweep_parity(self):
        """fuzz_sweep folds parallel per-seed outcomes into the identical
        summary the serial loop builds."""
        from repro.sim.fuzz import fuzz_sweep

        serial = fuzz_sweep(range(50), ("fixed",), workers=1)
        parallel = fuzz_sweep(range(50), ("fixed",), workers=2)
        assert serial.ok and parallel.ok
        assert (
            serial.cases,
            serial.runs,
            serial.total_messages,
            serial.by_family,
            serial.failures,
        ) == (
            parallel.cases,
            parallel.runs,
            parallel.total_messages,
            parallel.by_family,
            parallel.failures,
        )

    def test_saturation_curve_parity(self):
        """latency_vs_load fans out per load level with identical points."""
        from repro.topology import latency_vs_load

        serial = latency_vs_load(
            8, _ring_route, [0.05, 0.2], horizon=300, warmup=50, seed=4
        )
        parallel = latency_vs_load(
            8, _ring_route, [0.05, 0.2], horizon=300, warmup=50, seed=4,
            workers=2,
        )
        assert parallel == serial


class TestPlumbing:
    def test_submission_order_not_completion_order(self):
        out = sweep_map(_square, [9, 1, 4, 0, 7], workers=2)
        assert out == [81, 1, 16, 0, 49]

    def test_empty_and_single_item(self):
        assert sweep_map(_square, [], workers=4) == []
        assert sweep_map(_square, [3], workers=4) == [9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            sweep_map(_reciprocal, [1, 0, 2], workers=2)

    def test_unpicklable_fn_falls_back_to_serial(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = sweep_map(lambda x: x + 1, [1, 2, 3], workers=2)
        assert out == [2, 3, 4]

    def test_picklable_fn_does_not_warn_serially(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert sweep_map(_square, [2, 3], workers=1) == [4, 9]


def _reciprocal(x: int) -> float:
    return 1.0 / x


class TestSerialFallback:
    """The unpicklable-work escape hatch must behave exactly like the
    serial path: same order, same exception semantics, and the same
    fold-side accounting when fuzz_sweep drives it."""

    def test_fallback_preserves_submission_order(self):
        calls = []

        def record(x):
            calls.append(x)
            return -x

        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = sweep_map(record, [5, 1, 3], workers=4)
        assert out == [-5, -1, -3]
        assert calls == [5, 1, 3]

    def test_fallback_propagates_exceptions(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            with pytest.raises(ZeroDivisionError):
                sweep_map(lambda x: 1 / x, [1, 0, 2], workers=2)

    def test_fallback_accepts_generator_items(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = sweep_map(lambda x: x * 2, (i for i in range(4)), workers=2)
        assert out == [0, 2, 4, 6]


class TestMaxFailuresEarlyExit:
    """fuzz_sweep's failure cap: the serial loop stops generating work,
    the parallel fold stops consuming it, and both build the identical
    summary — including when the parallel path degrades to the serial
    fallback on unpicklable work."""

    @pytest.fixture
    def broken_latency(self, monkeypatch):
        """A latency model whose bound exceeds L: every machine build
        crashes, so every (seed, latency) run is one failure."""
        from repro.sim import fuzz

        monkeypatch.setitem(
            fuzz.LATENCIES, "broken", lambda L, seed: FixedLatency(L + 100)
        )

    def _is_fork(self):
        import multiprocessing

        return multiprocessing.get_start_method(allow_none=False) == "fork"

    def test_serial_early_exit_stops_at_the_cap(self, broken_latency):
        from repro.sim.fuzz import fuzz_sweep

        summary = fuzz_sweep(
            range(50), ("broken",), max_failures=3, workers=1
        )
        assert not summary.ok
        assert len(summary.failures) == 3
        assert summary.cases == 3  # did not sweep the remaining 47 seeds
        assert all("crashed" in f for f in summary.failures)

    def test_parallel_fold_matches_serial_accounting(self, broken_latency):
        if not self._is_fork():
            pytest.skip("patched LATENCIES needs fork to reach workers")
        from repro.sim.fuzz import fuzz_sweep

        serial = fuzz_sweep(range(30), ("broken",), max_failures=4, workers=1)
        parallel = fuzz_sweep(
            range(30), ("broken",), max_failures=4, workers=2
        )
        assert (
            serial.cases,
            serial.runs,
            serial.by_family,
            serial.failures,
        ) == (
            parallel.cases,
            parallel.runs,
            parallel.by_family,
            parallel.failures,
        )

    def test_early_exit_through_the_serial_fallback(
        self, broken_latency, monkeypatch
    ):
        """An unpicklable per-seed work unit forces the parallel sweep
        into the serial fallback; the max_failures fold must still cut
        the sweep at the cap with serial-identical accounting."""
        from repro.sim import fuzz

        original = fuzz._sweep_seed
        monkeypatch.setattr(
            fuzz,
            "_sweep_seed",
            lambda seed, latencies, **kw: original(seed, latencies, **kw),
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            fallback = fuzz.fuzz_sweep(
                range(30), ("broken",), max_failures=4, workers=2
            )
        serial = fuzz.fuzz_sweep(
            range(30), ("broken",), max_failures=4, workers=1
        )
        assert (
            fallback.cases,
            fallback.runs,
            fallback.failures,
        ) == (
            serial.cases,
            serial.runs,
            serial.failures,
        )

    def test_max_failures_zero_stops_immediately(self, broken_latency):
        from repro.sim.fuzz import fuzz_sweep

        summary = fuzz_sweep(range(20), ("broken",), max_failures=0, workers=1)
        assert summary.cases == 1  # the very first fold hits the cap
        assert not summary.ok


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "5")
        assert resolve_workers() == 5

    def test_unset_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_explicit_argument_clamps_to_one(self):
        # Callers pass computed counts (len(items) // min_chunk) that
        # may legitimately reach 0: the documented clamp applies.
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_env_below_one_refuses_loudly(self, monkeypatch):
        # A misconfigured environment is a configuration error, not a
        # request for a serial sweep (the repo's refuse-loudly contract).
        for bad in ("0", "-1", "-100"):
            monkeypatch.setenv(ENV_WORKERS, bad)
            with pytest.raises(ValueError, match=ENV_WORKERS):
                resolve_workers()

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError, match=ENV_WORKERS):
            resolve_workers()


class TestMinChunk:
    """min_chunk: sweeps too small to amortize a pool run serially.

    The degrade is a placement decision only — results must be identical
    on every path — and it must actually keep the pool out: a 60-item
    sweep with min_chunk=48 costs ~10ms of pure pool overhead per run
    if dispatched, which is what made 2-worker fuzz sweeps slower than
    serial before the threshold existed.
    """

    def test_small_sweep_degrades_to_serial(self, monkeypatch):
        import repro.sim.sweep as sweep_mod

        def boom(*a, **kw):  # any pool construction is a failure
            raise AssertionError("pool used for an under-min_chunk sweep")

        monkeypatch.setattr(
            sweep_mod.multiprocessing, "get_context", boom
        )
        out = sweep_map(_square, range(60), workers=2, min_chunk=48)
        assert out == [x * x for x in range(60)]

    def test_worker_count_lowered_not_zeroed(self):
        # 100 items, min_chunk 30: at most 3 workers get a full share.
        out = sweep_map(_square, range(100), workers=8, min_chunk=30)
        assert out == [x * x for x in range(100)]

    def test_results_identical_across_thresholds(self):
        serial = sweep_map(_square, range(50), workers=1)
        for min_chunk in (1, 10, 25, 50, 200):
            assert (
                sweep_map(_square, range(50), workers=4, min_chunk=min_chunk)
                == serial
            )

    def test_invalid_min_chunk_raises(self):
        with pytest.raises(ValueError, match="min_chunk"):
            sweep_map(_square, [1, 2], workers=2, min_chunk=0)

    def test_fuzz_sweep_small_default_is_serial(self, monkeypatch):
        """fuzz_sweep's MIN_SEEDS_PER_WORKER keeps bench-sized (60-seed)
        sweeps off the pool at any worker count."""
        import repro.sim.sweep as sweep_mod
        from repro.sim.fuzz import fuzz_sweep

        def boom(*a, **kw):
            raise AssertionError("pool used for a bench-sized fuzz sweep")

        monkeypatch.setattr(sweep_mod.multiprocessing, "get_context", boom)
        summary = fuzz_sweep(range(60), ("fixed",), workers=2)
        assert summary.ok and summary.cases == 60


class TestIndexedWorkerFailure:
    """A pool-worker exception must say *which* item failed: the server's
    error reports (and anyone debugging a 10k-point sweep) need the
    submission index, which the bare Pool.map traceback does not carry."""

    def test_cause_names_the_submission_index(self):
        with pytest.raises(ZeroDivisionError) as excinfo:
            sweep_map(_reciprocal, [1, 0, 2], workers=2, chunksize=1)
        cause = excinfo.value.__cause__
        assert isinstance(cause, SweepItemError)
        assert cause.index == 1
        assert cause.total == 3
        assert "item 1 of 3" in str(cause)

    def test_lowest_failing_index_wins_deterministically(self):
        # Items 1 and 3 both fail; whichever chunk finishes first, the
        # re-raised failure must be the lowest submission index.
        for _ in range(3):
            with pytest.raises(ZeroDivisionError) as excinfo:
                sweep_map(
                    _reciprocal, [1, 0, 2, 0, 5], workers=2, chunksize=1
                )
            assert excinfo.value.__cause__.index == 1

    def test_serial_path_keeps_plain_traceback(self):
        # workers=1 is the reference semantics: the exception propagates
        # from the comprehension itself, unchained.
        with pytest.raises(ZeroDivisionError) as excinfo:
            sweep_map(_reciprocal, [1, 0, 2], workers=1)
        assert excinfo.value.__cause__ is None


class TestShortfall:
    """A pool that loses work must be named, not silently truncated.

    ``_merge_guarded`` is the single seam every pooled path funnels
    through; these unit tests drive it directly with the wrapped
    ``(index, ok, payload)`` triples a misbehaving pool would return."""

    def test_complete_results_unwrap_in_order(self):
        wrapped = [(2, True, "c"), (0, True, "a"), (1, True, "b")]
        assert _merge_guarded(wrapped, 3) == ["a", "b", "c"]

    def test_missing_indices_are_named(self):
        wrapped = [(0, True, "a"), (3, True, "d")]
        with pytest.raises(SweepShortfallError) as excinfo:
            _merge_guarded(wrapped, 4)
        err = excinfo.value
        assert err.missing == [1, 2]
        assert err.total == 4
        assert "1, 2" in str(err) and "dead worker" in str(err)

    def test_duplicate_index_is_a_shortfall(self):
        wrapped = [(0, True, "a"), (0, True, "a"), (1, True, "b")]
        with pytest.raises(SweepShortfallError):
            _merge_guarded(wrapped, 3)

    def test_out_of_range_index_is_a_shortfall(self):
        with pytest.raises(SweepShortfallError):
            _merge_guarded([(5, True, "x")], 2)

    def test_long_missing_list_is_truncated_in_message(self):
        with pytest.raises(SweepShortfallError) as excinfo:
            _merge_guarded([], 100)
        assert excinfo.value.missing == list(range(100))
        assert "..." in str(excinfo.value)

    def test_failure_outranks_shortfall_reporting_order(self):
        # A present failure at index 1 with index 2 missing: the
        # shortfall is the structural error and wins — the failure
        # payload may itself be an artifact of the lost worker.
        wrapped = [(0, True, "a"), (1, False, ZeroDivisionError("x"))]
        with pytest.raises(SweepShortfallError):
            _merge_guarded(wrapped, 3)


class TestPlanSweep:
    """The placement decision is pure and inspectable."""

    def test_plan_is_deterministic(self):
        a = plan_sweep(100, workers=4, min_chunk=10)
        b = plan_sweep(100, workers=4, min_chunk=10)
        assert a == b and not a.serial and a.workers == 4

    def test_min_chunk_degrades_to_serial(self):
        plan = plan_sweep(60, workers=2, min_chunk=48)
        assert plan.serial and "min_chunk" in plan.reason

    def test_default_chunksize_is_quarter_share(self):
        plan = plan_sweep(80, workers=2)
        assert plan.chunksize == 10  # ceil(80 / (4 * 2))

    def test_single_item_is_serial(self):
        assert plan_sweep(1, workers=8).serial

    def test_invalid_min_chunk(self):
        with pytest.raises(ValueError, match="min_chunk"):
            plan_sweep(10, workers=2, min_chunk=0)


class TestWorkerPool:
    """The persistent pool: lazy start, reuse, identical results."""

    def test_lazy_until_first_parallel_sweep(self):
        with WorkerPool(workers=2) as pool:
            assert not pool.started
            out = sweep_map(_square, [3], workers=2, pool=pool)
            assert out == [9]
            assert not pool.started  # single item stayed serial

    def test_reused_across_sweeps_with_serial_results(self):
        serial = [x * x for x in range(20)]
        with WorkerPool(workers=2) as pool:
            first = sweep_map(_square, range(20), pool=pool)
            assert pool.started
            second = sweep_map(_square, range(20), pool=pool)
            assert first == serial and second == serial

    def test_pool_failure_still_carries_index(self):
        with WorkerPool(workers=2) as pool:
            with pytest.raises(ZeroDivisionError) as excinfo:
                sweep_map(
                    _reciprocal, [2, 1, 0], pool=pool, chunksize=1
                )
            assert excinfo.value.__cause__.index == 2

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=2)
        pool.close()
        pool.close()

    def test_close_drain_joins_after_inflight_work(self):
        # drain=True is the graceful teardown contract: in-flight chunks
        # finish, workers join — no unconditional terminate mid-chunk.
        pool = WorkerPool(workers=2)
        out = sweep_map(_square, range(20), pool=pool)
        pool.close(drain=True)
        assert out == [x * x for x in range(20)]
        pool.close(drain=False)  # still idempotent after a drain

    def test_close_without_drain_terminates(self):
        pool = WorkerPool(workers=2)
        sweep_map(_square, range(20), pool=pool)
        pool.close(drain=False)
        assert pool._pool is None


class TestGridMapUnfilled:
    """grid_map must refuse loudly when any point goes unfilled — a
    silently shortened list misaligns every later submission-order
    consumer (the serve batch coalescer maps results back by position)."""

    def _grid(self):
        from repro.core import LogPParams

        return [LogPParams(L=6, o=o, g=4, P=2) for o in (1.0, 2.0, 3.0)]

    def test_short_backend_return_names_missing_indices(self, monkeypatch):
        import repro.sim.compiled as compiled_mod

        real = compiled_mod.evaluate_grid

        def truncated(prog, pts, **kw):
            gr = real(prog, pts, **kw)
            gr.makespans.pop()  # drop the last point's result
            gr.total_stall_times.pop()
            return gr

        monkeypatch.setattr(compiled_mod, "evaluate_grid", truncated)
        from repro.serve.registry import build
        from repro.sim.sweep import grid_map

        with pytest.raises(RuntimeError, match=r"indices 2"):
            grid_map(
                build("stream", {"k": 2}, None),
                self._grid(),
                backend="compiled",
            )

    def test_require_filled_lists_first_twenty(self):
        from repro.sim.sweep import _require_filled

        out = [None] * 25
        with pytest.raises(RuntimeError) as excinfo:
            _require_filled(out)
        msg = str(excinfo.value)
        assert "25 of 25" in msg and "(5 more)" in msg

    def test_full_grid_passes_unchanged(self):
        from repro.serve.registry import build
        from repro.sim.sweep import grid_map

        grid = self._grid()
        out = grid_map(build("stream", {"k": 2}, None), grid)
        assert len(out) == len(grid)
        assert all(isinstance(p, tuple) and len(p) == 2 for p in out)
