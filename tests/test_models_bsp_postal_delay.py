"""Tests for repro.models.bsp, repro.models.postal, repro.models.delay."""

import math

import pytest

from repro.core import LogPParams
from repro.algorithms.broadcast import optimal_broadcast_time
from repro.algorithms.summation import summation_time
from repro.models import (
    BSPParams,
    bsp_fft_cost,
    bsp_from_logp,
    bsp_sum_cost,
    bsp_superstep,
    bsp_total,
    delay_broadcast_time,
    delay_fft_time,
    delay_point_to_point,
    delay_sum_time,
    postal_broadcast_time,
    postal_equivalent_params,
    postal_informed,
    superstep_cost,
)
from repro.sim import run_programs


class TestBSPCost:
    def test_superstep_formula(self):
        b = BSPParams(g=4, l=50, P=8)
        assert superstep_cost(b, w=100, h=10) == 100 + 40 + 50

    def test_total(self):
        b = BSPParams(g=2, l=10, P=4)
        assert bsp_total(b, [(5, 1), (0, 3)]) == (5 + 2 + 10) + (6 + 10)

    def test_from_logp(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        b = bsp_from_logp(p)
        assert b.g == 4  # max(g, 2o)
        assert b.l > p.L  # includes the software barrier
        assert b.P == 8

    def test_from_logp_overhead_bound(self):
        p = LogPParams(L=6, o=5, g=4, P=8)
        assert bsp_from_logp(p).g == 10

    def test_hardware_barrier_option(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        b = bsp_from_logp(p, hardware_barrier=3)
        assert b.l == 9

    def test_sum_cost_pays_l_per_level(self):
        b = BSPParams(g=1, l=100, P=8)
        # 3 levels, each costing at least l.
        assert bsp_sum_cost(b, 80) >= 300

    def test_bsp_sum_never_beats_logp_optimal(self):
        # BSP charges whole supersteps; LogP's schedule overlaps local
        # work with reception, so LogP <= BSP on the same machine.
        p = LogPParams(L=5, o=2, g=4, P=8)
        b = bsp_from_logp(p)
        for n in (50, 100, 300):
            assert summation_time(p, n) <= bsp_sum_cost(b, n)

    def test_fft_cost_schedule_blind(self):
        # BSP cannot distinguish naive from staggered remap — the cost
        # function has no schedule argument at all; it charges g*h.
        b = BSPParams(g=4, l=50, P=8)
        cost = bsp_fft_cost(b, 1024)
        m, h = 128, 112
        assert cost == (m * 3) + (b.g * h + b.l + b.l) + (m * 7) + b.l

    def test_fft_requires_n_at_least_P_squared(self):
        with pytest.raises(ValueError):
            bsp_fft_cost(BSPParams(g=1, l=1, P=8), 32)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BSPParams(g=-1, l=0, P=1)
        with pytest.raises(ValueError):
            superstep_cost(BSPParams(g=1, l=1, P=1), w=-1, h=0)


class TestBSPRuntime:
    def test_superstep_on_simulator(self):
        p = LogPParams(L=6, o=2, g=4, P=4)

        def prog(rank, P):
            out = {(rank + 1) % P: [f"from{rank}"]}
            got = yield from bsp_superstep(rank, P, 10.0, out, step_id=0)
            return got

        res = run_programs(p, prog)
        for rank in range(4):
            got = res.value(rank)
            assert len(got) == 1
            assert got[0][0] == (rank - 1) % 4

    def test_supersteps_serialize(self):
        # A message sent in superstep s is only usable in s+1; two
        # supersteps cost at least two barriers.
        p = LogPParams(L=6, o=2, g=4, P=4)

        def prog(rank, P):
            yield from bsp_superstep(rank, P, 5.0, {}, step_id=0)
            yield from bsp_superstep(rank, P, 5.0, {}, step_id=1)
            from repro.sim import Now

            t = yield Now()
            return t

        res = run_programs(p, prog)
        assert min(res.values()) >= 10

    def test_software_barrier_variant(self):
        p = LogPParams(L=6, o=2, g=4, P=4)

        def prog(rank, P):
            got = yield from bsp_superstep(
                rank, P, 1.0, {}, step_id=0, use_hardware_barrier=False
            )
            return got

        res = run_programs(p, prog)
        assert all(v == [] for v in res.values())


class TestPostal:
    def test_informed_base_cases(self):
        assert postal_informed(0, 3) == 1
        assert postal_informed(2, 3) == 1
        assert postal_informed(3, 3) == 2

    def test_lam_one_doubles(self):
        assert [postal_informed(t, 1) for t in range(5)] == [1, 2, 4, 8, 16]

    def test_recurrence(self):
        lam = 4
        for t in range(lam, 30):
            assert postal_informed(t, lam) == postal_informed(
                t - 1, lam
            ) + postal_informed(t - lam, lam)

    def test_broadcast_time_inverse(self):
        for lam in (1, 2, 5):
            for P in (1, 2, 10, 64):
                t = postal_broadcast_time(P, lam)
                assert postal_informed(t, lam) >= P
                if t > 0:
                    assert postal_informed(t - 1, lam) < P

    @pytest.mark.parametrize("lam", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("P", [2, 7, 16, 100, 500])
    def test_equivalence_with_logp_broadcast(self, lam, P):
        """Footnote 3: the postal model is LogP at o=0, g=1, L=lam."""
        assert postal_broadcast_time(P, lam) == optimal_broadcast_time(
            postal_equivalent_params(P, lam)
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            postal_informed(1, 0)
        with pytest.raises(ValueError):
            postal_informed(-1, 2)
        with pytest.raises(ValueError):
            postal_broadcast_time(0, 2)


class TestDelayModel:
    def test_point_to_point(self):
        assert delay_point_to_point(7) == 7
        with pytest.raises(ValueError):
            delay_point_to_point(-1)

    def test_sum_time(self):
        assert delay_sum_time(80, 8, 5) == 9 + 3 * 6

    def test_fft_single_latency_charge(self):
        # The whole remap costs one d: no bandwidth term whatsoever.
        assert delay_fft_time(1024, 8, 5) == 128 * 10 + 5

    def test_fft_underestimates_logp(self):
        from repro.core import fft_total_time

        p = LogPParams(L=5, o=2, g=4, P=8)
        assert delay_fft_time(1024, 8, 5) < fft_total_time(p, 1024)

    def test_broadcast_matches_postal_bound(self):
        assert delay_broadcast_time(16, 2) == float(
            postal_broadcast_time(16, 3)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            delay_sum_time(0, 1, 1)
        with pytest.raises(ValueError):
            delay_fft_time(16, 8, 1)
