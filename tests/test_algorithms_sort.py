"""Tests for repro.algorithms.sort: splitter and bitonic sort."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.sort import (
    bitonic_sort_time,
    run_bitonic_sort,
    run_splitter_sort,
    splitter_sort_time,
)
from repro.sim import validate_schedule


@pytest.fixture
def p4():
    return LogPParams(L=6, o=2, g=4, P=4)


class TestSplitterSort:
    def test_sorts_random_data(self, p4, rng):
        data = rng.standard_normal(512)
        out = run_splitter_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_sorts_with_duplicates(self, p4, rng):
        data = rng.integers(0, 10, 300).astype(float)
        out = run_splitter_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_sorts_already_sorted(self, p4):
        data = np.arange(200, dtype=float)
        out = run_splitter_sort(p4, data)
        assert np.array_equal(out.sorted_values, data)

    def test_sorts_reverse_sorted(self, p4):
        data = np.arange(200, dtype=float)[::-1]
        out = run_splitter_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_uneven_chunks(self, p4, rng):
        data = rng.standard_normal(203)  # not divisible by 4
        out = run_splitter_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_schedule_validates(self, p4, rng):
        out = run_splitter_sort(p4, rng.standard_normal(128))
        assert validate_schedule(out.machine.schedule, exact_latency=True).ok

    def test_oversampling_bounds_buckets(self, p4, rng):
        data = rng.standard_normal(1024)
        small = run_splitter_sort(p4, data, oversample=2)
        big = run_splitter_sort(p4, data, oversample=32)
        # More samples -> tighter splitters -> flatter buckets.
        assert big.max_bucket <= small.max_bucket * 1.5
        assert big.max_bucket < 1024

    def test_eight_processors(self, rng):
        p8 = LogPParams(L=6, o=2, g=4, P=8)
        data = rng.standard_normal(640)
        out = run_splitter_sort(p8, data)
        assert np.array_equal(out.sorted_values, np.sort(data))


class TestBitonicSort:
    def test_sorts_random_data(self, p4, rng):
        data = rng.standard_normal(256)
        out = run_bitonic_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_padding_removed(self, p4, rng):
        data = rng.standard_normal(101)
        out = run_bitonic_sort(p4, data)
        assert len(out.sorted_values) == 101
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_eight_processors(self, rng):
        p8 = LogPParams(L=6, o=2, g=4, P=8)
        data = rng.standard_normal(256)
        out = run_bitonic_sort(p8, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_rejects_non_power_of_two_P(self, rng):
        p3 = LogPParams(L=6, o=2, g=4, P=3)
        with pytest.raises(ValueError):
            run_bitonic_sort(p3, rng.standard_normal(30))

    def test_schedule_validates(self, p4, rng):
        out = run_bitonic_sort(p4, rng.standard_normal(64))
        assert validate_schedule(out.machine.schedule, exact_latency=True).ok


class TestCostModels:
    def test_splitter_time_components_positive(self, p4):
        assert splitter_sort_time(p4, 1024) > 0

    def test_splitter_beats_bitonic_at_scale(self):
        # Splitter sort's single remap beats bitonic's log^2 P rounds
        # once P is large.
        p = LogPParams(L=6, o=2, g=4, P=64)
        n = 2**16
        assert splitter_sort_time(p, n) < bitonic_sort_time(p, n)

    def test_bitonic_round_count_scaling(self):
        # Doubling P adds (log P + 1) more rounds worth of cost.
        n = 2**14
        p16 = LogPParams(L=6, o=2, g=4, P=16)
        p64 = LogPParams(L=6, o=2, g=4, P=64)
        per16 = bitonic_sort_time(p16, n)
        per64 = bitonic_sort_time(p64, n)
        assert per64 > 0 and per16 > 0

    def test_rejects_tiny_n(self, p4):
        with pytest.raises(ValueError):
            splitter_sort_time(p4, 2)
        with pytest.raises(ValueError):
            bitonic_sort_time(p4, 2)

    def test_simulated_splitter_within_model_factor(self, p4, rng):
        # Model and simulation agree within a small constant factor
        # (the model charges comparisons; the sim charges the same).
        data = rng.standard_normal(512)
        out = run_splitter_sort(p4, data)
        predicted = splitter_sort_time(p4, 512)
        assert 0.4 * predicted <= out.makespan <= 2.5 * predicted
