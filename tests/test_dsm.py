"""Tests for the shared-memory layer (Section 3.2): repro.sim.dsm."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.sim import (
    AwaitPrefetch,
    Compute,
    Now,
    Prefetch,
    Read,
    Recv,
    Send,
    Write,
    block_owner,
    run_dsm,
    validate_schedule,
)


@pytest.fixture
def p4():
    return LogPParams(L=6, o=2, g=4, P=4)


def idle_app(rank, P):
    return None
    yield


class TestBlockOwner:
    def test_even_blocks(self):
        assert [block_owner(a, 16, 4) for a in (0, 3, 4, 12, 15)] == [
            0, 0, 1, 3, 3,
        ]

    def test_ragged_blocks(self):
        # 10 cells over 4 procs: chunks of 3 -> owners 0,0,0,1,...
        assert block_owner(9, 10, 4) == 3

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            block_owner(16, 16, 4)


class TestReadWrite:
    def test_remote_read_value_and_cost(self):
        """Section 3.2: 'reading a remote location requires time 2L+4o'."""
        p = LogPParams(L=6, o=2, g=4, P=2)

        def app(rank, P):
            if rank == 0:
                t0 = yield Now()
                v = yield Read(9)  # owner: rank 1
                t1 = yield Now()
                return (v, t1 - t0)
            return None
            yield

        res = run_dsm(p, app, initial=list(range(10)))
        v, dt = res.values[0]
        assert v == 9
        assert dt == p.remote_read()
        assert validate_schedule(res.machine.schedule, exact_latency=True).ok

    def test_local_read_is_cheap(self, p4):
        def app(rank, P):
            if rank == 0:
                t0 = yield Now()
                v = yield Read(1)  # local
                t1 = yield Now()
                return (v, t1 - t0)
            return None
            yield

        res = run_dsm(p4, app, initial=list(range(16)))
        v, dt = res.values[0]
        assert v == 1
        assert dt <= 1.0

    def test_writes_globally_visible(self, p4):
        def app(rank, P):
            addr = (rank * 4 + 7) % 16
            yield Write(addr, value=rank * 100)
            v = yield Read(addr)
            return v

        res = run_dsm(p4, app, initial=[0] * 16)
        assert res.values == [0, 100, 200, 300]
        for rank in range(4):
            assert res.memory[(rank * 4 + 7) % 16] == rank * 100

    def test_read_your_writes_local(self, p4):
        def app(rank, P):
            lo = rank * 4
            yield Write(lo, value=rank + 1)
            v = yield Read(lo)
            return v

        res = run_dsm(p4, app, initial=[0] * 16)
        assert res.values == [1, 2, 3, 4]

    def test_owner_serializes_concurrent_writes(self, p4):
        # All ranks write distinct cells of rank 0's shard; all land.
        def app(rank, P):
            yield Write(rank, value=f"from-{rank}")
            return None

        res = run_dsm(p4, app, initial=[None] * 16)
        assert [res.memory[r] for r in range(4)] == [
            "from-0", "from-1", "from-2", "from-3",
        ]


class TestPrefetch:
    def test_prefetch_overlaps_compute(self):
        p = LogPParams(L=6, o=2, g=4, P=2)

        def with_prefetch(rank, P):
            if rank == 0:
                h = yield Prefetch(9)
                yield Compute(50)
                v = yield AwaitPrefetch(h)
                t = yield Now()
                return (v, t)
            return None
            yield

        def without(rank, P):
            if rank == 0:
                yield Compute(50)
                v = yield Read(9)
                t = yield Now()
                return (v, t)
            return None
            yield

        r1 = run_dsm(p, with_prefetch, initial=list(range(10)))
        r2 = run_dsm(p, without, initial=list(range(10)))
        v1, t1 = r1.values[0]
        v2, t2 = r2.values[0]
        assert v1 == v2 == 9
        # Prefetch hides most of the 2L+4o behind the compute.
        assert t1 < t2

    def test_multiple_outstanding_prefetches(self, p4):
        def app(rank, P):
            if rank == 0:
                handles = []
                for addr in (5, 9, 13):
                    h = yield Prefetch(addr)
                    handles.append(h)
                yield Compute(100)
                vals = []
                for h in handles:
                    v = yield AwaitPrefetch(h)
                    vals.append(v)
                return vals
            return None
            yield

        res = run_dsm(p4, app, initial=list(range(16)))
        assert res.values[0] == [5, 9, 13]

    def test_unawaited_prefetch_harmless(self, p4):
        def app(rank, P):
            if rank == 0:
                yield Prefetch(9)
                return "done"
            return None
            yield

        res = run_dsm(p4, app, initial=list(range(16)))
        assert res.values[0] == "done"


class TestContention:
    def test_hot_owner_serializes(self, p4):
        """Everyone reads rank 0's shard: replies serialize at its
        send/receive gaps — contention LogP 'makes apparent'."""

        def app(rank, P):
            total = 0
            for i in range(4):
                v = yield Read(i)
                total += v
            return total

        res = run_dsm(p4, app, initial=list(range(16)))
        assert res.values == [6, 6, 6, 6]
        # Far more than one uncontended round trip per read.
        assert res.makespan > 3 * p4.remote_read()

    def test_spread_reads_faster_than_hot(self, p4):
        def hot(rank, P):
            acc = 0
            for i in range(4):
                acc += (yield Read(i))
            return acc

        def spread(rank, P):
            acc = 0
            for i in range(4):
                acc += (yield Read((rank * 4 + i) % 16))
            return acc

        t_hot = run_dsm(p4, hot, initial=list(range(16))).makespan
        t_spread = run_dsm(p4, spread, initial=list(range(16))).makespan
        assert t_spread < t_hot


class TestGuards:
    def test_raw_send_rejected(self, p4):
        def app(rank, P):
            yield Send(1)
            return None

        with pytest.raises(Exception, match="raw Send/Recv"):
            run_dsm(p4, app, initial=[0] * 16)

    def test_raw_recv_rejected(self, p4):
        def app(rank, P):
            yield Recv()
            return None

        with pytest.raises(Exception, match="raw Send/Recv"):
            run_dsm(p4, app, initial=[0] * 16)

    def test_unknown_action_rejected(self, p4):
        def app(rank, P):
            yield "nonsense"
            return None

        with pytest.raises(Exception, match="unknown DSM app action"):
            run_dsm(p4, app, initial=[0] * 16)

    def test_all_idle_apps_terminate(self, p4):
        res = run_dsm(p4, idle_app, initial=[0] * 16)
        assert res.values == [None] * 4
