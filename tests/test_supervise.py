"""Tests for the supervised worker pool (``repro.sim.supervise``).

The contract under test, in increasing order of violence:

* fault-free maps are bit-identical to the serial comprehension;
* a SIGKILLed worker is detected, replaced, and its orphaned chunk
  resubmitted — the caller still gets the complete, ordered result;
* an item that *reproducibly* kills its worker is quarantined after
  ``max_attempts`` and reported as :class:`PoisonItemError` naming the
  exact submission index — deterministically, at any worker count;
* hung chunks are bounded by ``chunk_timeout``, whole maps by
  ``deadline`` (:class:`SweepDeadlineError`), and runaway crash loops
  by the death budget (:class:`WorkerRestartStorm`);
* ordinary exceptions are *not* retried — they propagate immediately,
  exactly as the serial loop would raise them;
* ``close(drain=True)`` joins workers cleanly; ``drain=False`` kills.

Timing assertions carry generous slack: CI runs this on one busy core.
"""

from __future__ import annotations

import os
import signal
import time
from functools import partial

import pytest

from repro.sim.supervise import (
    PoisonItemError,
    SupervisedPool,
    SweepDeadlineError,
    WorkerRestartStorm,
)
from repro.sim.sweep import sweep_map


# ----------------------------------------------------------------------
# Worker functions (module-level: they cross the pipe by pickle).
# ----------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _die_once(flag_path: str, x: int) -> int:
    """SIGKILL the hosting worker on first sight of ``x == 3``."""
    if x == 3 and not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _poison(x: int) -> int:
    """Item 7 kills its worker every single time: a true poison item."""
    if x == 7:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang_once(flag_path: str, x: int) -> int:
    """Item 2 wedges (sleeps) on its first attempt only."""
    if x == 2 and not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("hung")
        time.sleep(60.0)
    return x * x


def _slow(x: int) -> int:
    time.sleep(0.2)
    return x


def _reciprocal(x: int) -> float:
    return 1.0 / x


def _fast_pool(workers: int, **kw) -> SupervisedPool:
    """A pool with test-friendly (short) backoff between retries."""
    from repro.sim.faults import ExponentialBackoffRetry

    kw.setdefault("retry", ExponentialBackoffRetry(base=0.01, mult=2.0, cap=0.1))
    return SupervisedPool(workers, **kw)


class TestFaultFree:
    def test_matches_serial_comprehension(self):
        with _fast_pool(2) as pool:
            assert pool.map(_square, list(range(40))) == [
                x * x for x in range(40)
            ]
            assert pool.deaths == 0 and pool.restarts == 0

    def test_reuse_across_maps(self):
        with _fast_pool(2) as pool:
            first = pool.map(_square, list(range(10)), chunksize=3)
            pids = pool.pids()
            second = pool.map(_square, list(range(10)), chunksize=2)
            assert first == second == [x * x for x in range(10)]
            assert pool.pids() == pids  # same workers, no churn

    def test_empty_map(self):
        with _fast_pool(2) as pool:
            assert pool.map(_square, []) == []

    def test_lazy_start(self):
        pool = _fast_pool(2)
        assert not pool.started and pool.pids() == []
        try:
            pool.map(_square, [1])
            assert pool.started and len(pool.pids()) == 2
        finally:
            pool.close(drain=False)


class TestWorkerDeath:
    def test_sigkilled_worker_is_replaced_and_chunk_resubmitted(
        self, tmp_path
    ):
        flag = str(tmp_path / "died")
        with _fast_pool(2) as pool:
            out = pool.map(partial(_die_once, flag), list(range(8)), chunksize=2)
            assert out == [x * x for x in range(8)]
            assert pool.deaths == 1 and pool.restarts == 1
            assert os.path.exists(flag)

    def test_sigkill_mid_sweep_map_is_invisible_to_the_caller(
        self, tmp_path
    ):
        # The acceptance drill in miniature: sweep_map over a supervised
        # pool with a worker killed mid-flight returns the identical,
        # complete, submission-order list the serial path produces.
        flag = str(tmp_path / "died")
        serial = [x * x for x in range(30)]
        with _fast_pool(2) as pool:
            out = sweep_map(
                partial(_die_once, flag),
                list(range(30)),
                workers=2,
                chunksize=2,
                pool=pool,
            )
            assert out == serial
            assert pool.deaths == 1


class TestPoisonQuarantine:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_poison_item_named_deterministically(self, workers):
        # sweep_map(workers=1) runs serial in-process — a self-SIGKILL
        # there would kill pytest — so the quarantine contract is
        # exercised through pool.map directly at every worker count.
        with _fast_pool(workers) as pool:
            with pytest.raises(PoisonItemError) as excinfo:
                pool.map(_poison, list(range(12)), chunksize=3)
            err = excinfo.value
            assert err.index == 7
            assert err.total == 12
            assert err.attempts == 3  # the default max_attempts
            assert "item 7 of 12" in str(err)
            # Three deaths, all blamed on item 7: the multi-item chunk
            # was split into singletons after the first kill.
            assert pool.deaths == 3

    def test_poison_blame_lands_after_split(self):
        # Item 7 starts inside a 4-item chunk [4..8); innocent
        # neighbours 4, 5, 6 must not be quarantined with it.
        with _fast_pool(2) as pool:
            with pytest.raises(PoisonItemError) as excinfo:
                pool.map(_poison, list(range(10)), chunksize=4)
            assert excinfo.value.index == 7

    def test_survivors_before_quarantine_are_complete(self):
        # The raise is deferred until every index below the quarantined
        # one has completed — so the failure is deterministic, not a
        # race between the poison chunk and its predecessors.
        with _fast_pool(2) as pool:
            with pytest.raises(PoisonItemError):
                pool.map(_poison, list(range(12)), chunksize=1)
            # Pool stays usable after a poison failure.
            assert pool.map(_square, [5]) == [25]


class TestTimeBounds:
    def test_chunk_timeout_heals_a_hung_worker(self, tmp_path):
        flag = str(tmp_path / "hung")
        with _fast_pool(2, chunk_timeout=0.3) as pool:
            t0 = time.monotonic()
            out = pool.map(partial(_hang_once, flag), list(range(6)))
            assert out == [x * x for x in range(6)]
            assert pool.deaths == 1  # the hung worker was killed
            assert time.monotonic() - t0 < 30.0  # healed, not waited out

    def test_map_deadline_raises_promptly(self):
        with _fast_pool(1) as pool:
            t0 = time.monotonic()
            with pytest.raises(SweepDeadlineError) as excinfo:
                pool.map(_slow, list(range(100)), deadline=0.5)
            elapsed = time.monotonic() - t0
            assert elapsed < 10.0  # bounded, not 100 * 0.2s
            assert excinfo.value.pending > 0
            assert "deadline" in str(excinfo.value)

    def test_restart_storm_is_bounded(self):
        # One poison item with a huge max_attempts would retry nearly
        # forever; the per-map death budget cuts the crash loop short.
        with _fast_pool(1, max_attempts=10**6, death_budget=4) as pool:
            with pytest.raises(WorkerRestartStorm):
                pool.map(_poison, [7], deadline=None)
            assert pool.deaths == 5  # budget + the death that tripped it


class TestExceptionsAreNotFaults:
    def test_fn_exception_propagates_immediately(self):
        with _fast_pool(2) as pool:
            with pytest.raises(ZeroDivisionError):
                pool.map(_reciprocal, [1, 0, 2])
            assert pool.deaths == 0  # an exception is not a worker death

    def test_sweep_map_integration_keeps_the_index(self):
        from repro.sim.sweep import SweepItemError

        with _fast_pool(2) as pool:
            with pytest.raises(ZeroDivisionError) as excinfo:
                sweep_map(
                    _reciprocal, [1, 0, 2], workers=2, chunksize=1, pool=pool
                )
            cause = excinfo.value.__cause__
            assert isinstance(cause, SweepItemError) and cause.index == 1


class TestTeardown:
    def test_close_drain_joins_cleanly(self):
        pool = _fast_pool(2)
        pool.map(_square, list(range(4)))
        pids = pool.pids()
        pool.close(drain=True)
        assert not pool.started
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_close_is_idempotent_and_reentrant(self):
        pool = _fast_pool(2)
        pool.close(drain=True)
        pool.close(drain=False)
        pool.close()

    def test_context_manager_closes(self):
        with _fast_pool(2) as pool:
            pool.map(_square, [1, 2])
            pids = pool.pids()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
