"""Tests for repro.sim.validate: the LogP semantics checker.

The validator must (a) pass every legitimate simulator trace and
(b) catch hand-built schedules violating each rule.
"""

import pytest

from repro.core import Activity, LogPParams, MessageRecord, Schedule
from repro.sim import validate_schedule


def p8():
    return LogPParams(L=6, o=2, g=4, P=8)


def add_msg(s, src, dst, t0, *, L=None, o=None, recv_delay=0.0):
    p = s.params
    L = p.L if L is None else L
    o = p.o if o is None else o
    s.add_interval(src, t0, t0 + p.o, Activity.SEND, f"->{dst}")
    arrive = t0 + o + L
    s.add_interval(dst, arrive + recv_delay, arrive + recv_delay + p.o, Activity.RECV)
    s.add_message(
        MessageRecord(
            src=src,
            dst=dst,
            send_start=t0,
            inject=t0 + o,
            arrive=arrive,
            recv_start=arrive + recv_delay,
            recv_end=arrive + recv_delay + p.o,
        )
    )


class TestCleanSchedules:
    def test_single_message_passes(self):
        s = Schedule(p8())
        add_msg(s, 0, 1, 0)
        assert validate_schedule(s, exact_latency=True).ok

    def test_gap_respecting_stream_passes(self):
        s = Schedule(p8())
        for k in range(5):
            add_msg(s, 0, 1, 4 * k)
        assert validate_schedule(s, exact_latency=True).ok

    def test_empty_schedule_passes(self):
        assert validate_schedule(Schedule(p8())).ok


class TestViolations:
    def test_send_gap_violation(self):
        s = Schedule(p8())
        add_msg(s, 0, 1, 0)
        add_msg(s, 0, 2, 2)  # only 2 apart, g=4
        rep = validate_schedule(s)
        assert any(v.rule == "send-gap" for v in rep.violations)

    def test_recv_gap_violation(self):
        s = Schedule(p8())
        add_msg(s, 0, 2, 0)
        add_msg(s, 1, 2, 1)  # receptions 1 apart at dst 2
        rep = validate_schedule(s)
        assert any(v.rule == "recv-gap" for v in rep.violations)

    def test_latency_bound_violation(self):
        s = Schedule(p8())
        add_msg(s, 0, 1, 0, L=9)  # flew 9 > L=6
        rep = validate_schedule(s)
        assert any(v.rule == "latency-bound" for v in rep.violations)

    def test_exact_latency_check(self):
        s = Schedule(p8())
        add_msg(s, 0, 1, 0, L=4)  # legal (<= 6) but not exact
        assert validate_schedule(s).ok
        rep = validate_schedule(s, exact_latency=True)
        assert any(v.rule == "latency-exact" for v in rep.violations)

    def test_overhead_duration_violation(self):
        s = Schedule(p8())
        s.add_interval(0, 0, 1, Activity.SEND)  # o=2 expected
        rep = validate_schedule(s)
        assert any(v.rule == "overhead" for v in rep.violations)

    def test_busy_overlap_violation(self):
        s = Schedule(p8())
        s.add_interval(0, 0, 2, Activity.SEND)
        s.add_interval(0, 1, 5, Activity.COMPUTE)
        rep = validate_schedule(s)
        assert any(v.rule == "busy-overlap" for v in rep.violations)

    def test_capacity_violation(self):
        # Capacity is 2; build 3 concurrent messages from one source by
        # claiming impossible gap-free sends (also triggers gap errors).
        s = Schedule(p8())
        for k in range(3):
            add_msg(s, 0, k + 1, 0.1 * k, recv_delay=20)
        rep = validate_schedule(s)
        assert any(v.rule == "capacity-from" for v in rep.violations)

    def test_capacity_check_can_be_disabled(self):
        s = Schedule(p8())
        for k in range(3):
            add_msg(s, 0, k + 1, 0.1 * k, recv_delay=20)
        rep = validate_schedule(s, check_capacity=False)
        assert not any(v.rule.startswith("capacity") for v in rep.violations)

    def test_inject_before_overhead_violation(self):
        s = Schedule(p8())
        s.add_message(
            MessageRecord(
                src=0, dst=1, send_start=0, inject=1, arrive=7,
                recv_start=7, recv_end=9,
            )
        )
        rep = validate_schedule(s)
        assert any(v.rule == "inject-before-overhead" for v in rep.violations)

    def test_raise_if_invalid(self):
        s = Schedule(p8())
        add_msg(s, 0, 1, 0, L=9)
        with pytest.raises(AssertionError, match="latency-bound"):
            validate_schedule(s).raise_if_invalid()

    def test_report_ok_does_not_raise(self):
        validate_schedule(Schedule(p8())).raise_if_invalid()
