"""Tests for the exhibit runner (python -m repro.exhibits) and the
routing/DSM additions bundled with it."""

import pytest

from repro.exhibits import EXHIBITS, main
from repro.topology.routing import butterfly_route, hop_count


class TestExhibitRegistry:
    def test_all_paper_exhibits_present(self):
        assert set(EXHIBITS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table1", "sec51", "sec53",
        }

    @pytest.mark.parametrize(
        "name", [n for n, (_, heavy) in EXHIBITS.items() if not heavy]
    )
    def test_fast_exhibits_render(self, name):
        text = EXHIBITS[name][0]()
        assert len(text.splitlines()) >= 3

    def test_fig3_contains_paper_number(self):
        assert "24" in EXHIBITS["fig3"][0]()

    def test_table1_contains_printed_values(self):
        text = EXHIBITS["table1"][0]()
        for value in ("6760", "3714", "246"):
            assert value in text

    def test_main_runs_selected(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "butterfly column locality" in out

    def test_main_default_skips_heavy(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Figure 6" not in out  # heavy, needs --full


class TestButterflyRoute:
    def test_route_length_is_dim(self):
        for src, dst in [(0, 0), (0, 7), (5, 2)]:
            assert hop_count(butterfly_route(src, dst, 3)) == 3

    def test_endpoints(self):
        r = butterfly_route(3, 6, 3)
        assert r[0] == (0, 3) and r[-1] == (3, 6)

    def test_hops_follow_butterfly_edges(self):
        dim = 4
        r = butterfly_route(5, 12, dim)
        for (c0, r0), (c1, r1) in zip(r, r[1:]):
            assert c1 == c0 + 1
            diff = r0 ^ r1
            assert diff == 0 or diff == 1 << (dim - 1 - c0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            butterfly_route(0, 8, 3)


class TestDSMReadCaching:
    def test_repeat_reads_become_local(self):
        from repro.core import LogPParams
        from repro.sim import Now, Read, run_dsm

        p = LogPParams(L=6, o=2, g=4, P=2)

        def app(rank, P):
            if rank == 0:
                t0 = yield Now()
                for _ in range(5):
                    v = yield Read(9)
                t1 = yield Now()
                return t1 - t0
            return None
            yield

        cold = run_dsm(p, app, initial=list(range(10))).values[0]
        warm = run_dsm(p, app, initial=list(range(10)), cache_reads=True).values[0]
        # Cached: one round trip + four 1-cycle hits.
        assert warm == p.remote_read() + 4
        assert cold == 5 * p.remote_read()

    def test_own_write_invalidates_cache(self):
        from repro.core import LogPParams
        from repro.sim import Read, Write, run_dsm

        p = LogPParams(L=6, o=2, g=4, P=2)

        def app(rank, P):
            if rank == 0:
                v1 = yield Read(9)
                yield Write(9, value=99)
                v2 = yield Read(9)
                return (v1, v2)
            return None
            yield

        res = run_dsm(p, app, initial=list(range(10)), cache_reads=True)
        assert res.values[0] == (9, 99)
