"""Tests for repro.algorithms.summation: optimal summation (Fig 4)."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.summation import (
    balanced_reduction_time,
    distribute_inputs,
    optimal_summation_tree,
    summation_capacity,
    summation_program,
    summation_time,
)
from repro.sim import run_programs, validate_schedule


class TestFigure4:
    """The paper's worked example: T=28, P=8, L=5, g=4, o=2."""

    def test_tree_deadlines_match_figure(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        assert sorted(n.deadline for n in tree.nodes) == [
            4, 4, 6, 8, 10, 14, 18, 28,
        ]

    def test_root_children_deadlines(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        kid_deadlines = sorted(
            tree.nodes[c].deadline for c in tree.nodes[0].children
        )
        assert kid_deadlines == [6, 10, 14, 18]

    def test_grandchildren(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        first = next(n for n in tree.nodes if n.deadline == 18)
        assert sorted(tree.nodes[c].deadline for c in first.children) == [4, 8]
        second = next(n for n in tree.nodes if n.deadline == 14)
        assert [tree.nodes[c].deadline for c in second.children] == [4]

    def test_all_eight_processors_used(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        assert tree.processors_used == 8

    def test_inputs_unequally_distributed(self, fig4_params):
        # "Notice that the inputs are not equally distributed over
        # processors."
        tree = optimal_summation_tree(fig4_params, 28)
        counts = [n.local_inputs for n in tree.nodes]
        assert len(set(counts)) > 1
        assert max(counts) == 17  # the root holds the most

    def test_capacity_79_values(self, fig4_params):
        assert summation_capacity(fig4_params, 28) == 79

    def test_simulation_hits_deadline_exactly(self, fig4_params, rng):
        tree = optimal_summation_tree(fig4_params, 28)
        values = rng.standard_normal(tree.total_values)
        inputs = distribute_inputs(tree, values)
        res = run_programs(fig4_params, summation_program(tree, inputs))
        assert res.makespan == 28
        assert res.value(0) == pytest.approx(values.sum())
        assert validate_schedule(res.schedule, exact_latency=True).ok


class TestCapacityFunction:
    def test_no_time_one_value(self, fig4_params):
        assert summation_capacity(fig4_params, 0) == 1

    def test_below_communication_threshold_is_serial(self, fig4_params):
        # T < L + 2o + 1: no partial sum can arrive; T+1 values serially.
        for T in range(0, 10):
            assert summation_capacity(fig4_params, T) == T + 1

    def test_monotone_in_T(self, grid_params):
        caps = [summation_capacity(grid_params, T) for T in range(0, 60, 3)]
        assert all(a <= b for a, b in zip(caps, caps[1:]))

    def test_parallel_beats_serial_eventually(self, grid_params):
        if grid_params.P == 1:
            pytest.skip("needs parallelism")
        T = 20 * (grid_params.L + 2 * grid_params.o + 1)
        assert summation_capacity(grid_params, T) > T + 1

    def test_negative_deadline_rejected(self, fig4_params):
        with pytest.raises(ValueError):
            optimal_summation_tree(fig4_params, -1)

    def test_single_processor_capacity(self):
        p = LogPParams(L=5, o=2, g=4, P=1)
        assert summation_capacity(p, 100) == 101


class TestSummationTime:
    def test_inverse_of_capacity(self, fig4_params):
        assert summation_time(fig4_params, 79) == 28

    def test_one_value_free(self, fig4_params):
        assert summation_time(fig4_params, 1) == 0

    def test_round_trip_inverse(self, grid_params):
        for n in (1, 5, 17, 60, 200):
            T = summation_time(grid_params, n)
            assert summation_capacity(grid_params, T) >= n
            if T > 0:
                assert summation_capacity(grid_params, T - 1) < n

    def test_rejects_zero(self, fig4_params):
        with pytest.raises(ValueError):
            summation_time(fig4_params, 0)


class TestOptimality:
    def test_beats_balanced_reduction(self, fig4_params):
        # The schedule-aware optimum beats the oblivious baseline.
        n = 79
        assert summation_time(fig4_params, n) < balanced_reduction_time(
            fig4_params, n
        )

    def test_balanced_baseline_formula(self, fig4_params):
        # ceil(79/8)-1 local adds + 3 levels of (L+2o+1).
        assert balanced_reduction_time(fig4_params, 79) == 9 + 3 * 10

    def test_never_beaten_by_balanced_across_grid(self, grid_params):
        for n in (10, 100, 500):
            assert summation_time(grid_params, n) <= balanced_reduction_time(
                grid_params, n
            )


class TestSimulationAgreement:
    """The schedule executes exactly, with correct numerics, everywhere."""

    @pytest.mark.parametrize("T", [10, 20, 35, 50])
    def test_makespan_and_sum(self, grid_params, T, rng):
        tree = optimal_summation_tree(grid_params, T)
        values = rng.standard_normal(tree.total_values)
        inputs = distribute_inputs(tree, values)
        res = run_programs(grid_params, summation_program(tree, inputs))
        assert res.makespan <= T + 1e-9
        assert res.value(0) == pytest.approx(values.sum())
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_root_makespan_tight(self, fig4_params, rng):
        # For the paper's instance the root finishes exactly at T.
        tree = optimal_summation_tree(fig4_params, 28)
        values = rng.standard_normal(tree.total_values)
        res = run_programs(
            fig4_params, summation_program(tree, distribute_inputs(tree, values))
        )
        assert res.results[0].finished_at == 28


class TestDistributeInputs:
    def test_partition_sizes(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        parts = distribute_inputs(tree, list(range(79)))
        assert [len(pt) for pt in parts] == [
            n.local_inputs for n in tree.nodes
        ]
        assert sorted(x for pt in parts for x in pt) == list(range(79))

    def test_wrong_length_rejected(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 28)
        with pytest.raises(ValueError):
            distribute_inputs(tree, [1.0] * 5)
