"""Differential fuzz harness over the LogP machine (tier-1 profile).

Runs the seeded sweep from :mod:`repro.sim.fuzz`: 500+ random
well-formed programs, each executed under the deterministic and the two
randomized latency models, semantically validated, differentially
compared (traced vs untraced, rerun determinism) and cross-checked
against the closed-form costs where one exists.  The whole sweep is a
few seconds — it runs in tier-1 so every later change to the simulator
core inherits the net.
"""

import pytest

from repro.core import LogPParams, pipelined_stream_exact
from repro.sim.fuzz import (
    FAMILIES,
    LATENCIES,
    fuzz_sweep,
    make_case,
    run_case,
)

SMOKE_SEEDS = range(0, 150)
FULL_SEEDS = range(0, 500)


def test_fuzz_smoke_fixed_latency():
    """Fast profile: fixed seeds, deterministic latency only (~0.5s)."""
    summary = fuzz_sweep(SMOKE_SEEDS, ("fixed",))
    assert summary.cases == len(SMOKE_SEEDS)
    assert summary.ok, "\n".join(summary.failures[:10])


def test_fuzz_full_sweep_all_latency_models():
    """The acceptance sweep: 500 seeded programs x 3 latency models with
    zero semantic violations and closed-form makespan agreement.

    Routed through the parallel sweep runner: ``workers=None`` honours
    the ``REPRO_SWEEP_WORKERS`` environment variable (serial when unset
    on a single-core box).  The summary is identical for any worker
    count — that contract is pinned by ``tests/test_sweep.py``.
    """
    summary = fuzz_sweep(FULL_SEEDS, tuple(LATENCIES), workers=None)
    assert summary.cases == 500
    assert summary.runs == 1500
    assert summary.ok, "\n".join(summary.failures[:10])
    # Every family must actually be exercised by the sweep.
    assert set(summary.by_family) == set(FAMILIES)
    assert summary.total_messages > 5000


def test_case_generation_is_deterministic():
    for seed in (0, 7, 123):
        a, b = make_case(seed), make_case(seed)
        assert (a.family, a.params, a.expected_messages, a.closed_form) == (
            b.family,
            b.params,
            b.expected_messages,
            b.closed_form,
        )


def test_every_family_reachable():
    seen = set()
    for seed in range(300):
        seen.add(make_case(seed).family)
        if seen == set(FAMILIES):
            return
    assert seen == set(FAMILIES)


@pytest.mark.parametrize("latency", sorted(LATENCIES))
def test_single_case_all_models(latency):
    case = make_case(3)
    out = run_case(case, latency)
    assert out.ok, out.failures
    assert out.messages == case.expected_messages


def test_closed_form_agreement_is_checked():
    """The harness must actually detect a closed-form mismatch: feed it
    a case whose claimed closed form is wrong and expect a failure."""
    from dataclasses import replace

    seed = next(
        s for s in range(100) if make_case(s).family == "stream"
    )
    case = make_case(seed)
    assert case.closed_form == pipelined_stream_exact(
        case.params, case.expected_messages
    )
    broken = replace(case, closed_form=case.closed_form + 1.0)
    out = run_case(broken, "fixed")
    assert not out.ok
    assert any("closed form" in f for f in out.failures)


def test_validation_violations_are_reported():
    """Sabotage the capacity limit (ablation-style override) and confirm
    the validator path of the harness flags it."""
    from repro.sim.fuzz import _run_machine
    from repro.sim import FixedLatency, validate_schedule

    seed = next(
        s
        for s in range(200)
        if make_case(s).family == "flood" and make_case(s).params.capacity >= 2
    )
    case = make_case(seed)
    p = case.params

    from repro.sim import LogPMachine

    # Run with a laxer capacity than the params advertise: the trace is
    # then invalid under the declared ceil(L/g) limit.
    machine = LogPMachine(
        p, latency=FixedLatency(p.L), capacity=p.capacity * 4, trace=True
    )
    res = machine.run(case.factory)
    report = validate_schedule(res.schedule)
    assert any(
        v.rule in ("capacity-from", "capacity-to") for v in report.violations
    ), "sabotaged run should violate the declared capacity"


def test_stall_heavy_seeds_have_stalls():
    """The sweep must exercise the stall path, not just contention-free
    schedules."""
    stalls = 0
    for seed in range(120):
        case = make_case(seed)
        if case.family == "flood":
            stalls += run_case(case, "fixed").stalls
    assert stalls > 0


def test_main_cli_smoke(capsys):
    from repro.sim.fuzz import main

    assert main(["--seeds", "10"]) == 0
    assert "zero violations" in capsys.readouterr().out
