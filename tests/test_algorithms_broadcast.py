"""Tests for repro.algorithms.broadcast: the optimal broadcast (Fig 3)."""

import pytest

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    binomial_tree,
    broadcast_program,
    broadcast_schedule,
    flat_tree,
    linear_tree,
    optimal_broadcast_time,
    optimal_broadcast_tree,
    tree_delivery_times,
)
from repro.sim import run_programs, validate_schedule


class TestFigure3:
    """The paper's worked example: P=8, L=6, g=4, o=2."""

    def test_completion_time_is_24(self, fig3_params):
        assert optimal_broadcast_time(fig3_params) == 24

    def test_receive_times_match_figure(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        # Figure 3's node labels: 0 at the root; 10, 14, 18, 22 for the
        # root's children; 20 and 24 under the first child; 24 under the
        # second.
        assert sorted(tree.recv_time) == [0, 10, 14, 18, 20, 22, 24, 24]

    def test_root_has_four_children(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        assert tree.fanout(0) == 4

    def test_first_child_sends_twice(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        first_child = tree.children[0][0]
        assert tree.fanout(first_child) == 2

    def test_source_send_times_spaced_by_g(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        starts = sorted(
            t for (src, _), t in tree.send_start.items() if src == 0
        )
        assert starts == [0, 4, 8, 12]

    def test_simulator_reproduces_completion(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        res = run_programs(fig3_params, broadcast_program(tree, "datum"))
        assert res.makespan == 24
        assert set(res.values()) == {"datum"}
        assert validate_schedule(res.schedule, exact_latency=True).ok


class TestTreeStructure:
    def test_single_processor(self):
        p = LogPParams(L=6, o=2, g=4, P=1)
        tree = optimal_broadcast_tree(p)
        assert tree.completion_time == 0
        assert tree.children[0] == []

    def test_two_processors(self):
        p = LogPParams(L=6, o=2, g=4, P=2)
        assert optimal_broadcast_time(p) == p.point_to_point()

    def test_every_rank_reached_once(self, grid_params):
        tree = optimal_broadcast_tree(grid_params)
        reached = [0] * grid_params.P
        reached[tree.root] = 1
        for r in range(grid_params.P):
            for c in tree.children[r]:
                reached[c] += 1
        assert reached == [1] * grid_params.P

    def test_parent_consistency(self, grid_params):
        tree = optimal_broadcast_tree(grid_params)
        for r in range(grid_params.P):
            for c in tree.children[r]:
                assert tree.parent[c] == r

    def test_nonzero_root(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params, root=3)
        assert tree.root == 3
        assert tree.recv_time[3] == 0
        assert tree.completion_time == 24

    def test_invalid_root_rejected(self, fig3_params):
        with pytest.raises(ValueError):
            optimal_broadcast_tree(fig3_params, root=8)

    def test_children_in_send_order(self, grid_params):
        tree = optimal_broadcast_tree(grid_params)
        for r in range(grid_params.P):
            times = [tree.send_start[(r, c)] for c in tree.children[r]]
            assert times == sorted(times)

    def test_depth_reasonable(self, fig3_params):
        tree = optimal_broadcast_tree(fig3_params)
        assert 1 <= tree.depth() <= 3


class TestOptimality:
    def test_beats_or_ties_standard_trees(self, grid_params):
        opt = optimal_broadcast_time(grid_params)
        for maker in (linear_tree, flat_tree, binomial_tree):
            children = maker(grid_params.P)
            t = max(tree_delivery_times(grid_params, children))
            assert opt <= t + 1e-9, f"{maker.__name__} beat 'optimal'"

    def test_flat_tree_good_when_latency_dominates(self):
        # With L >> g, relaying cannot beat the source sending everything
        # itself: the optimal tree is flat.
        p = LogPParams(L=50, o=0, g=1, P=6)
        opt = optimal_broadcast_time(p)
        flat = max(tree_delivery_times(p, flat_tree(6)))
        assert opt == pytest.approx(flat)

    def test_deep_tree_good_when_latency_small_gap_large(self):
        # Large g punishes repeated sends from one node: prefer chains.
        p = LogPParams(L=1, o=1, g=50, P=4)
        opt = optimal_broadcast_time(p)
        lin = max(tree_delivery_times(p, linear_tree(4)))
        assert opt == pytest.approx(lin)

    def test_monotone_in_P(self):
        times = [
            optimal_broadcast_time(LogPParams(L=6, o=2, g=4, P=P))
            for P in range(1, 40)
        ]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_monotone_in_L(self):
        times = [
            optimal_broadcast_time(LogPParams(L=L, o=2, g=4, P=16))
            for L in range(0, 30, 3)
        ]
        assert all(a <= b for a, b in zip(times, times[1:]))


class TestDeliveryTimes:
    def test_linear_tree_time(self, fig3_params):
        # Chain of 8: 7 hops of (L + 2o) back to back.
        t = max(tree_delivery_times(fig3_params, linear_tree(8)))
        assert t == 7 * 10

    def test_flat_tree_time(self, fig3_params):
        t = max(tree_delivery_times(fig3_params, flat_tree(8)))
        assert t == 6 * 4 + 10

    def test_rejects_duplicate_node(self, fig3_params):
        children = [[1, 2], [2], [], [], [], [], [], []]
        with pytest.raises(ValueError, match="twice"):
            tree_delivery_times(fig3_params, children)

    def test_rejects_unreachable_node(self, fig3_params):
        children = [[1], [], [], [], [], [], [], []]
        with pytest.raises(ValueError, match="reaches"):
            tree_delivery_times(fig3_params, children)


class TestSimulatorAgreement:
    """Analysis == simulation, exactly, across the parameter grid."""

    def test_optimal_tree_sim_matches_analysis(self, grid_params):
        tree = optimal_broadcast_tree(grid_params)
        res = run_programs(grid_params, broadcast_program(tree, 7))
        assert res.makespan == pytest.approx(tree.completion_time)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_binomial_tree_sim_matches_analysis(self, grid_params):
        children = binomial_tree(grid_params.P)
        expected = max(tree_delivery_times(grid_params, children))
        from repro.sim import tree_broadcast

        def prog(rank, P):
            v = yield from tree_broadcast(rank, P, 1 if rank == 0 else None, children)
            return v

        res = run_programs(grid_params, prog)
        assert res.makespan == pytest.approx(expected)


class TestScheduleRendering:
    def test_schedule_validates(self, fig3_params):
        sched = broadcast_schedule(optimal_broadcast_tree(fig3_params))
        assert validate_schedule(sched, exact_latency=True).ok

    def test_schedule_message_count(self, fig3_params):
        sched = broadcast_schedule(optimal_broadcast_tree(fig3_params))
        assert len(sched.messages) == 7

    def test_schedule_makespan(self, fig3_params):
        sched = broadcast_schedule(optimal_broadcast_tree(fig3_params))
        assert sched.makespan == 24
