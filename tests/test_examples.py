"""Smoke tests: every example script runs end to end and prints what it
promises.  (Examples double as integration tests of the public API.)"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Completion time: 24" in out
    assert "Simulated makespan: 24" in out
    assert "OK" in out
    assert "legend" in out  # the Gantt chart rendered


def test_fft_cm5_study(capsys):
    out = run_example("fft_cm5_study.py", capsys)
    assert "hybrid" in out
    assert "staggered" in out and "naive" in out
    assert "match numpy.fft" in out


def test_machine_design_space(capsys):
    out = run_example("machine_design_space.py", capsys)
    assert "bcast time" in out
    assert "Readings:" in out


def test_writing_programs(capsys):
    out = run_example("writing_programs.py", capsys)
    assert "Ping-pong" in out
    assert "matches serial" in out
    assert "yes" in out


def test_shared_memory_and_extensions(capsys):
    out = run_example("shared_memory_and_extensions.py", capsys)
    assert "prefetch" in out.lower()
    assert "bulk message" in out
    assert "chain" in out


def test_examples_are_documented_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in sorted(EXAMPLES.glob("*.py")):
        assert script.name in readme, f"{script.name} missing from README"
