"""Edge-case grab bag: degenerate parameters, boundary sizes, and
state-machine corners across the simulator and algorithms."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.broadcast import optimal_broadcast_tree
from repro.algorithms.fft import fft_dif, fft_natural, hybrid_fft_inmemory
from repro.algorithms.summation import optimal_summation_tree, summation_capacity
from repro.sim import (
    Barrier,
    Compute,
    LogPMachine,
    Now,
    Poll,
    Recv,
    Send,
    Sleep,
    run_programs,
    validate_schedule,
)


class TestDegenerateParameters:
    def test_zero_overhead_machine(self):
        p = LogPParams(L=6, o=0, g=4, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                m = yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        assert res.value(1) == 6  # pure flight, no overheads
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_zero_latency_machine(self):
        p = LogPParams(L=0, o=2, g=4, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                yield Recv()
                t = yield Now()
                return t
            return None

        assert run_programs(p, prog).value(1) == 4  # 2o

    def test_free_communication_machine(self):
        # The PRAM limit: L = o = 0, g -> 0 is forbidden by capacity
        # needing g context; g tiny instead.
        p = LogPParams(L=0, o=0, g=0.001, P=4)

        def prog(rank, P):
            if rank == 0:
                for d in range(1, P):
                    yield Send(d)
            else:
                yield Recv()
            return None

        res = run_programs(p, prog)
        assert res.makespan < 0.01

    def test_single_processor_trivia(self):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        assert optimal_broadcast_tree(p1).completion_time == 0
        assert summation_capacity(p1, 10) == 11

    def test_fractional_everything(self):
        p = LogPParams(L=1.3, o=0.44, g=0.89, P=3)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                yield Send(2)
            else:
                m = yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        assert res.value(1) == pytest.approx(1.3 + 2 * 0.44)
        assert res.value(2) == pytest.approx(0.89 + 1.3 + 2 * 0.44)


class TestStateMachineCorners:
    def test_sleep_extended_by_drain(self):
        # A message arrives mid-sleep; the reception extends busy time
        # but the sleeper still wakes and proceeds.
        p = LogPParams(L=6, o=5, g=1, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Compute(8)
                yield Send(1)
                return None
            yield Sleep(14)  # message arrives at 19... after the sleep?
            m = yield Recv()
            t = yield Now()
            return t

        res = run_programs(p, prog)
        # compute 8 + send o 5 -> inject 13, arrive 19; sleep ended 14;
        # idle Recv wait; recv [19, 24).
        assert res.value(1) == 24

    def test_sleep_with_arrival_during_sleep(self):
        p = LogPParams(L=2, o=1, g=1, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                return None
            yield Sleep(50)
            m = yield Recv()
            t = yield Now()
            return t

        res = run_programs(p, prog)
        # Arrives at 3, drained during sleep [3,4); Recv at 50 instant.
        assert res.value(1) == 50

    def test_zero_cycle_sleep_and_compute(self):
        p = LogPParams(L=1, o=1, g=1, P=1)

        def prog(rank, P):
            yield Sleep(0)
            yield Compute(0)
            t = yield Now()
            return t

        assert run_programs(p, prog).value(0) == 0

    def test_poll_then_recv_ordering(self):
        # Poll moves arrivals to the mailbox; a tagged Recv still finds
        # the right message among polled ones.
        p = LogPParams(L=2, o=1, g=1, P=3)

        def prog(rank, P):
            if rank in (0, 1):
                yield Send(2, payload=rank, tag=("m", rank))
                return None
            yield Compute(20)
            yield Poll()
            yield Poll()
            b = yield Recv(tag=("m", 1))
            a = yield Recv(tag=("m", 0))
            return (a.payload, b.payload)

        res = run_programs(p, prog)
        assert res.value(2) == (0, 1)

    def test_barrier_then_messages(self):
        p = LogPParams(L=6, o=2, g=4, P=3)

        def prog(rank, P):
            yield Barrier()
            if rank == 0:
                yield Send(1)
            elif rank == 1:
                yield Recv()
            yield Barrier()
            t = yield Now()
            return t

        res = run_programs(p, prog)
        assert len(set(res.values())) == 1

    def test_explicit_generator_list(self):
        p = LogPParams(L=6, o=2, g=4, P=2)

        def sender():
            yield Send(1, payload="x")
            return "sent"

        def receiver():
            m = yield Recv()
            return m.payload

        res = LogPMachine(p).run([sender(), receiver()])
        assert res.values() == ["sent", "x"]

    def test_machine_reusable_for_multiple_runs(self):
        p = LogPParams(L=6, o=2, g=4, P=2)
        machine = LogPMachine(p)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                yield Recv()
            return None

        r1 = machine.run(prog)
        r2 = machine.run(prog)
        assert r1.makespan == r2.makespan == 10


class TestFFTBoundaries:
    def test_length_one_fft(self):
        x = np.array([3.0 + 4.0j])
        assert np.allclose(fft_dif(x), x)
        assert np.allclose(fft_natural(x), np.fft.fft(x))

    def test_length_two(self):
        x = np.array([1.0, 2.0])
        assert np.allclose(fft_natural(x), np.fft.fft(x))

    def test_hybrid_P_equals_sqrt_n(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64) + 0j
        assert np.allclose(hybrid_fft_inmemory(x, 8), np.fft.fft(x))

    def test_zeros_input(self):
        x = np.zeros(16)
        assert np.allclose(fft_natural(x), np.zeros(16))


class TestSummationBoundaries:
    def test_zero_deadline(self, fig4_params):
        tree = optimal_summation_tree(fig4_params, 0)
        assert tree.total_values == 1
        assert tree.processors_used == 1

    def test_fractional_deadline(self, fig4_params):
        # Non-integer T floors the local chains.
        c = summation_capacity(fig4_params, 5.5)
        assert c == 6

    def test_huge_P_small_T_uses_few(self):
        p = LogPParams(L=5, o=2, g=4, P=1000)
        tree = optimal_summation_tree(p, 12)
        assert tree.processors_used < 10
