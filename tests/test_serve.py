"""The serving contract: bit-identical results from every serving path.

``repro.serve`` may answer a point from the LRU cache, from another
job's in-flight computation, from a coalesced cross-request batch, or
from a pool shard — and each answer must be exactly what the serial
loop ``[run(point) for point in points]`` produces.  These tests pin
that equality cold-cache, warm-cache, and coalesced, against both
``sweep_map(workers=1)`` over per-point machine runs and direct
``grid_map``, plus the cache/dedup/registry/protocol plumbing around
it.
"""

import asyncio

import pytest

from repro.core import LogPParams
from repro.serve import (
    CacheKey,
    ResultCache,
    ServeConfig,
    SimulationServer,
    SweepRequest,
    serve_sweep,
)
from repro.serve.cache import point_key
from repro.serve.registry import build, canonical_args, fingerprint
from repro.sim import LogPMachine
from repro.sim.sweep import grid_map, sweep_map

O_SWEEP = [
    LogPParams(L=6.0, o=0.5 + 0.75 * i, g=4.0, P=P)
    for P in (2, 4)
    for i in range(6)
]
FLOOD_POINTS = [
    LogPParams(L=8.0, o=1.0, g=4.0, P=8),
    LogPParams(L=16.0, o=1.0, g=2.0, P=8),
]


def _machine_pair(spec):
    """One point on the event machine: the serial reference semantics.

    Module-level and fully derived from ``spec`` (program name, args,
    point tuple), per the sweep runner's determinism contract.
    """
    program, args, (L, o, g, P, _G) = spec
    res = LogPMachine(
        LogPParams(L=L, o=o, g=g, P=P), trace=False
    ).run(build(program, dict(args), None))
    return (res.makespan, res.total_stall_time)


def _serial_reference(program: str, args: dict, points) -> list:
    """The ISSUE's ground truth: ``sweep_map(workers=1)`` per point."""
    specs = [
        (program, canonical_args(args), point_key(p)) for p in points
    ]
    return sweep_map(_machine_pair, specs, workers=1)


def _serve(coro):
    return asyncio.run(coro)


class TestServedVsSerialDeterminism:
    """The tentpole invariant: served == serial, bit for bit."""

    def test_cold_cache_machine_backend(self):
        request = SweepRequest.make(
            "bcast_tree", O_SWEEP, args={"k": 6}, backend="machine"
        )
        served = serve_sweep(request)
        assert served == _serial_reference("bcast_tree", {"k": 6}, O_SWEEP)

    def test_cold_cache_compiled_backend(self):
        request = SweepRequest.make(
            "bcast_tree", O_SWEEP, args={"k": 6}, backend="compiled"
        )
        served = serve_sweep(request)
        assert served == _serial_reference("bcast_tree", {"k": 6}, O_SWEEP)

    def test_warm_cache_is_bit_identical_and_simulation_free(self):
        async def run():
            request = SweepRequest.make(
                "bcast_tree", O_SWEEP, args={"k": 6}, backend="machine"
            )
            async with SimulationServer() as server:
                cold_job = await server.submit(request)
                cold = await cold_job.wait()
                warm_job = await server.submit(request)
                warm = await warm_job.wait()
                return cold, warm, warm_job.sources

        cold, warm, warm_sources = _serve(run())
        assert cold == warm
        assert warm == _serial_reference("bcast_tree", {"k": 6}, O_SWEEP)
        assert warm_sources == {
            "cache": len(O_SWEEP),
            "inflight": 0,
            "computed": 0,
        }

    def test_coalesced_batch_is_bit_identical(self):
        """Two concurrent half-sweeps merge into ONE grid evaluation and
        still reproduce the serial loop point for point."""
        half = len(O_SWEEP) // 2

        async def run():
            config = ServeConfig(batch_window=0.05)
            async with SimulationServer(config) as server:
                j1 = await server.submit(
                    SweepRequest.make(
                        "bcast_tree", O_SWEEP[:half], args={"k": 6}
                    )
                )
                j2 = await server.submit(
                    SweepRequest.make(
                        "bcast_tree", O_SWEEP[half:], args={"k": 6}
                    )
                )
                r1 = await j1.wait()
                r2 = await j2.wait()
                return r1 + r2, server.stats_snapshot()

        merged, stats = _serve(run())
        assert stats["batches"] == 1
        assert stats["largest_batch"] == len(O_SWEEP)
        assert merged == _serial_reference("bcast_tree", {"k": 6}, O_SWEEP)

    def test_stall_regime_machine_parity(self):
        served = serve_sweep(
            SweepRequest.make(
                "flood", FLOOD_POINTS, args={"k": 6}, backend="machine"
            )
        )
        assert served == _serial_reference("flood", {"k": 6}, FLOOD_POINTS)
        # Stalls really happen in this regime — nonzero second component.
        assert any(stall > 0 for _mk, stall in served)

    def test_mixed_p_request_matches_grid_map(self):
        request = SweepRequest.make(
            "bcast_tree", O_SWEEP, args={"k": 6}, backend="auto"
        )
        served = serve_sweep(request)
        direct = grid_map(
            build("bcast_tree", {"k": 6}, None), O_SWEEP, backend="auto"
        )
        assert served == direct


class TestDedupAndProgress:
    def test_identical_concurrent_jobs_compute_once(self):
        async def run():
            request = SweepRequest.make(
                "stream", O_SWEEP[:4], args={"k": 4}
            )
            config = ServeConfig(batch_window=0.05)
            async with SimulationServer(config) as server:
                j1 = await server.submit(request)
                j2 = await server.submit(request)
                r1 = await j1.wait()
                r2 = await j2.wait()
                return r1, r2, j2.sources, server.stats_snapshot()

        r1, r2, j2_sources, stats = _serve(run())
        assert r1 == r2
        assert j2_sources["inflight"] == 4 and j2_sources["computed"] == 0
        assert stats["computed"] == 4  # not 8: the dedup did its job
        assert stats["served_inflight"] == 4

    def test_progress_stream_reaches_total(self):
        async def run():
            request = SweepRequest.make("stream", O_SWEEP, args={"k": 4})
            async with SimulationServer() as server:
                job = await server.submit(request)
                seen = []
                async for done, total in job.updates():
                    seen.append((done, total))
                await job.wait()
                return seen, job.total

        seen, total = _serve(run())
        assert seen[-1] == (total, total)
        assert [d for d, _t in seen] == sorted(d for d, _t in seen)

    def test_run_request_convenience(self):
        async def run():
            async with SimulationServer() as server:
                return await server.run_request(
                    SweepRequest.make("stream", O_SWEEP[:2], args={"k": 4})
                )

        assert _serve(run()) == _serial_reference(
            "stream", {"k": 4}, O_SWEEP[:2]
        )

    def test_serve_sweep_accepts_request_lists(self):
        reqs = [
            SweepRequest.make("stream", O_SWEEP[:2], args={"k": 4}),
            SweepRequest.make("flood", FLOOD_POINTS[:1], args={"k": 4}),
        ]
        out = serve_sweep(reqs)
        assert len(out) == 2 and len(out[0]) == 2 and len(out[1]) == 1


class TestFailureHandling:
    def test_unknown_family_refuses_at_submit(self):
        with pytest.raises(KeyError, match="no_such_family"):
            SweepRequest.make("no_such_family", O_SWEEP[:1])

    def test_bad_backend_refuses_at_submit(self):
        with pytest.raises(ValueError, match="backend"):
            SweepRequest.make("stream", O_SWEEP[:1], backend="gpu")

    def test_empty_points_refuse(self):
        with pytest.raises(ValueError, match="at least one point"):
            SweepRequest.make("stream", [])

    def test_batch_failure_fails_the_job_and_server_survives(self):
        async def run():
            async with SimulationServer() as server:
                bad = SweepRequest.make(
                    "stream", O_SWEEP[:2], args={"k": -5}
                )
                job = await server.submit(bad)
                with pytest.raises(ValueError, match="k must be"):
                    await job.wait()
                # The server keeps serving after a failed batch.
                good = await server.run_request(
                    SweepRequest.make("stream", O_SWEEP[:2], args={"k": 4})
                )
                return good, server.stats_snapshot()

        good, stats = _serve(run())
        assert good == _serial_reference("stream", {"k": 4}, O_SWEEP[:2])
        assert stats["errors"] == 1

    def test_failed_keys_are_not_cached(self):
        async def run():
            async with SimulationServer() as server:
                bad = SweepRequest.make(
                    "stream", O_SWEEP[:2], args={"k": -5}
                )
                job = await server.submit(bad)
                with pytest.raises(ValueError):
                    await job.wait()
                return len(server.cache), server.stats_snapshot()

        entries, stats = _serve(run())
        assert entries == 0
        assert stats["inflight"] == 0  # failed flights are reaped


class TestCacheAndKeys:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(max_entries=2)
        k1 = CacheKey("f", (1.0,), None, "auto")
        k2 = CacheKey("f", (2.0,), None, "auto")
        k3 = CacheKey("f", (3.0,), None, "auto")
        cache.put(k1, (1.0, 0.0))
        cache.put(k2, (2.0, 0.0))
        assert cache.get(k1) == (1.0, 0.0)  # refreshes k1's recency
        cache.put(k3, (3.0, 0.0))  # evicts k2, the least recent
        assert cache.get(k2) is None
        assert cache.get(k1) == (1.0, 0.0)
        assert cache.get(k3) == (3.0, 0.0)
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3 and cache.stats.misses == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_key_separates_seed_backend_and_fingerprint(self):
        pt = point_key(O_SWEEP[0])
        base = CacheKey("fp1", pt, None, "auto")
        assert base != CacheKey("fp1", pt, 7, "auto")
        assert base != CacheKey("fp1", pt, None, "machine")
        assert base != CacheKey("fp2", pt, None, "auto")

    def test_point_key_distinguishes_loggp(self):
        from repro.core import LogGPParams

        logp = LogPParams(L=6, o=2, g=4, P=2)
        loggp = LogGPParams(L=6, o=2, g=4, P=2, G=0.5)
        assert point_key(logp) != point_key(loggp)

    def test_tiny_cache_still_serves_correct_results(self):
        served = serve_sweep(
            SweepRequest.make("stream", O_SWEEP, args={"k": 4}),
            config=ServeConfig(cache_entries=2),
        )
        assert served == _serial_reference("stream", {"k": 4}, O_SWEEP)


class TestRegistry:
    def test_fingerprint_stable_and_arg_sensitive(self):
        a = fingerprint("stream", {"k": 4})
        assert a == fingerprint("stream", {"k": 4})
        assert a != fingerprint("stream", {"k": 5})
        assert a != fingerprint("flood", {"k": 4})

    def test_unknown_args_refuse(self):
        with pytest.raises(ValueError, match="unknown args"):
            build("stream", {"k": 4, "bogus": 1}, None)

    def test_families_lists_builtins(self):
        from repro.serve import families

        names = families()
        for expected in ("stream", "flood", "bcast_tree"):
            assert expected in names and names[expected]


class TestWireProtocol:
    def test_tcp_roundtrip_with_progress_and_stats(self):
        from repro.serve.protocol import ServeClient, start_tcp_server

        points = [
            {"L": 6.0, "o": 0.5 + i, "g": 4.0, "P": 4} for i in range(4)
        ]
        want = _serial_reference(
            "stream",
            {"k": 4},
            [LogPParams(L=d["L"], o=d["o"], g=d["g"], P=d["P"]) for d in points],
        )

        async def run():
            server = SimulationServer()
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            client = await ServeClient.connect(host, port)
            try:
                assert await client.ping()
                frame = await client.submit(
                    "stream", points, args={"k": 4}, stream=True
                )
                stats = await client.stats()
                with pytest.raises(RuntimeError, match="unknown program"):
                    await client.submit("nope", points)
                return frame, stats
            finally:
                await client.aclose()
                tcp.close()
                await tcp.wait_closed()
                await server.aclose()

        frame, stats = _serve(run())
        assert [tuple(p) for p in frame["results"]] == want
        assert frame["progress"][-1] == [len(points), len(points)]
        assert stats["requests"] == 1
        assert stats["cache"]["entries"] == len(points)

    def test_malformed_frames_keep_the_connection_alive(self):
        from repro.serve.protocol import ServeClient, start_tcp_server

        async def run():
            server = SimulationServer()
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                writer.write(b'{"op": "teleport"}\n')
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                frames = [
                    __import__("json").loads(await reader.readline())
                    for _ in range(3)
                ]
                return frames
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()
                await server.aclose()

        frames = _serve(run())
        assert frames[0]["op"] == "error" and "JSON" in frames[0]["error"]
        assert frames[1]["op"] == "error" and "teleport" in frames[1]["error"]
        assert frames[2]["op"] == "pong"


class TestGracefulShutdown:
    """``aclose(drain=...)``: finish accepted jobs, or fail them loudly."""

    def test_drain_completes_inflight_jobs(self):
        from repro.serve import ServerShutdown

        points = O_SWEEP[:6]
        want = _serial_reference("stream", {"k": 4}, points)

        async def run():
            server = await SimulationServer(
                ServeConfig(use_pool=False, batch_window=0.01)
            ).start()
            req = SweepRequest.make("stream", points, args={"k": 4})
            job = await server.submit(req)
            # Close immediately: the batcher has not evaluated yet.
            await server.aclose()  # drain=True default
            results = await job.wait()
            with pytest.raises(ServerShutdown):
                await server.submit(req)
            return results

        assert _serve(run()) == want

    def test_abandon_fails_jobs_with_server_shutdown(self):
        from repro.serve import ServerShutdown

        async def run():
            # A long coalescing window guarantees the batch is still
            # pending when the server abandons it.
            server = await SimulationServer(
                ServeConfig(use_pool=False, batch_window=30.0)
            ).start()
            req = SweepRequest.make("stream", O_SWEEP[:4], args={"k": 4})
            job = await server.submit(req)
            await server.aclose(drain=False)
            with pytest.raises(ServerShutdown, match="server-shutdown"):
                await job.wait()

        _serve(run())

    def test_close_is_an_alias(self):
        from repro.serve import ServerShutdown

        async def run():
            server = await SimulationServer(
                ServeConfig(use_pool=False)
            ).start()
            await server.close()
            with pytest.raises(ServerShutdown):
                await server.submit(
                    SweepRequest.make("stream", O_SWEEP[:1], args={"k": 4})
                )

        _serve(run())

    def test_tcp_client_sees_server_shutdown_error_frame(self):
        import json

        from repro.serve.protocol import start_tcp_server

        async def run():
            server = SimulationServer(
                ServeConfig(use_pool=False, batch_window=30.0)
            )
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(
                    json.dumps(
                        {
                            "op": "submit",
                            "program": "stream",
                            "points": [
                                {"L": 6.0, "o": 1.0, "g": 4.0, "P": 4}
                            ],
                            "args": {"k": 4},
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                accepted = json.loads(await reader.readline())
                await server.aclose(drain=False)
                error = json.loads(await reader.readline())
                return accepted, error
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        accepted, error = _serve(run())
        assert accepted["op"] == "accepted"
        assert error["op"] == "error"
        assert error["error"] == "server-shutdown"
        assert "abandoned" in error["detail"]
