"""Tests for repro.algorithms.lu: LU decomposition layouts."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.lu import (
    Layout,
    distributed_lu,
    lu_factor,
    lu_sim_program,
    make_layout,
    predict_lu_time,
    reconstruct,
    run_lu_on_machine,
)
from repro.sim import validate_schedule

ALL_KINDS = (
    "bad",
    "column-blocked",
    "column-cyclic",
    "grid-blocked",
    "grid-scattered",
)


class TestSerialKernel:
    def test_factorization_correct(self, rng):
        A = rng.standard_normal((20, 20))
        piv, L, U = lu_factor(A)
        assert np.allclose(reconstruct(piv, L, U), A)

    def test_L_unit_lower_U_upper(self, rng):
        A = rng.standard_normal((12, 12))
        _, L, U = lu_factor(A)
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(L, np.tril(L))
        assert np.allclose(U, np.triu(U))

    def test_partial_pivoting_bounds_multipliers(self, rng):
        A = rng.standard_normal((30, 30))
        _, L, _ = lu_factor(A)
        assert np.abs(L).max() <= 1.0 + 1e-12

    def test_pivoting_handles_zero_leading_entry(self):
        A = np.array([[0.0, 1.0], [2.0, 3.0]])
        piv, L, U = lu_factor(A)
        assert np.allclose(reconstruct(piv, L, U), A)

    def test_singular_rejected(self):
        A = np.zeros((3, 3))
        with pytest.raises(np.linalg.LinAlgError):
            lu_factor(A)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lu_factor(np.ones((3, 4)))

    def test_identity(self):
        piv, L, U = lu_factor(np.eye(5))
        assert np.allclose(L, np.eye(5)) and np.allclose(U, np.eye(5))


class TestLayouts:
    def test_owner_ranges(self):
        for kind in ALL_KINDS:
            lay = make_layout(kind, 16, 4)
            ii, jj = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
            owners = np.asarray(lay.owner(ii, jj))
            assert owners.min() >= 0 and owners.max() < 4

    def test_column_cyclic_owner(self):
        lay = make_layout("column-cyclic", 8, 4)
        assert lay.owner(3, 5) == 1
        assert lay.owner(0, 4) == 0

    def test_grid_scattered_owner(self):
        lay = make_layout("grid-scattered", 8, 4)
        assert lay.owner(0, 0) == 0
        assert lay.owner(1, 0) == 2
        assert lay.owner(0, 1) == 1

    def test_grid_requires_square_P(self):
        with pytest.raises(ValueError):
            make_layout("grid-blocked", 16, 8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_layout("hilbert", 16, 4)

    def test_analysis_kind_mapping(self):
        assert make_layout("bad", 8, 4).analysis_kind == "bad"
        assert make_layout("column-cyclic", 8, 4).analysis_kind == "column"
        assert make_layout("grid-scattered", 8, 4).analysis_kind == "grid"


class TestDistributedLU:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_numerics_identical_to_serial(self, kind, rng):
        A = rng.standard_normal((16, 16))
        piv0, L0, U0 = lu_factor(A)
        lay = make_layout(kind, 16, 4)
        piv, L, U, _ = distributed_lu(A, lay)
        assert np.array_equal(piv, piv0)
        assert np.allclose(L, L0) and np.allclose(U, U0)

    def test_blocked_grid_idles_processors(self, rng):
        A = rng.standard_normal((32, 32))
        blocked = distributed_lu(A, make_layout("grid-blocked", 32, 4))[3]
        scattered = distributed_lu(A, make_layout("grid-scattered", 32, 4))[3]
        # "Only one processor is active for the last n/sqrt(P) steps."
        assert blocked.tail_active(0.2) < scattered.tail_active(0.2)
        assert blocked.steps[-1].active_processors == 1

    def test_scattered_better_balanced(self, rng):
        A = rng.standard_normal((32, 32))
        blocked = distributed_lu(A, make_layout("grid-blocked", 32, 4))[3]
        scattered = distributed_lu(A, make_layout("grid-scattered", 32, 4))[3]
        assert scattered.load_imbalance < blocked.load_imbalance

    def test_grid_reduces_communication_vs_column(self, rng):
        A = rng.standard_normal((36, 36))
        col = distributed_lu(A, make_layout("column-cyclic", 36, 9))[3]
        grid = distributed_lu(A, make_layout("grid-scattered", 36, 9))[3]
        col_comm = sum(s.comm_values_received_max for s in col.steps)
        grid_comm = sum(s.comm_values_received_max for s in grid.steps)
        # sqrt(P) = 3 gain, up to pivot-column edge effects.
        assert grid_comm < col_comm

    def test_mismatched_layout_rejected(self, rng):
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            distributed_lu(A, make_layout("bad", 16, 4))


class TestPrediction:
    def test_layout_ordering(self):
        p = LogPParams(L=6, o=2, g=4, P=16)
        times = {
            kind: predict_lu_time(p, 48, make_layout(kind, 48, 16))
            for kind in ("bad", "column-cyclic", "grid-scattered")
        }
        assert times["bad"] > times["column-cyclic"] > times["grid-scattered"]

    def test_measured_imbalance_increases_blocked_time(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        A = rng.standard_normal((24, 24))
        lay_b = make_layout("grid-blocked", 24, 4)
        lay_s = make_layout("grid-scattered", 24, 4)
        _, _, _, stats_b = distributed_lu(A, lay_b)
        _, _, _, stats_s = distributed_lu(A, lay_s)
        t_b = predict_lu_time(p, 24, lay_b, from_stats=stats_b)
        t_s = predict_lu_time(p, 24, lay_s, from_stats=stats_s)
        assert t_b > t_s


class TestSimulatedLU:
    def test_numerics_on_machine(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        A = rng.standard_normal((16, 16))
        piv, L, U, res = run_lu_on_machine(p, A)
        piv0, L0, U0 = lu_factor(A)
        assert np.array_equal(piv, piv0)
        assert np.allclose(L, L0) and np.allclose(U, U0)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_more_processors_faster(self, rng):
        A = rng.standard_normal((24, 24))
        t2 = run_lu_on_machine(LogPParams(L=6, o=2, g=4, P=2), A)[3].makespan
        t4 = run_lu_on_machine(LogPParams(L=6, o=2, g=4, P=4), A)[3].makespan
        assert t4 < t2

    def test_single_processor(self, rng):
        A = rng.standard_normal((8, 8))
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        piv, L, U, _ = run_lu_on_machine(p1, A)
        assert np.allclose(reconstruct(piv, L, U), A)
