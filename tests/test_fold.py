"""Symmetry folding: rank equivalence classes for million-processor runs.

The contract under test: for eligible broadcast-tree schedules, the
folded evaluator (:mod:`repro.sim.compiled.fold`) produces *exactly* —
``==``, no tolerances — what the unfolded compiled evaluator and the
event machine produce, while doing Θ(classes) work instead of Θ(P).
Covered here:

* pinned equivalence-class counts per tree family (linear and flat
  stay Θ(P); binomial collapses to the ``(popcount, high bit, bit-sum)``
  lattice; the one-message stream folds to 2; floods and reductions
  refuse loudly);
* bit-identity of every aggregate and every expanded per-rank view
  against the unfolded evaluator and the machine, scalar and grid,
  numpy and pure-python replay;
* the class-compact constructors (``binomial_tree_folded``,
  ``optimal_broadcast_tree_folded``) against the generic fold of their
  own expansions, plus the machine differential at sub-sampled large P;
* huge-P behaviour: ``P = 2**20`` built, folded and evaluated without
  any per-rank materialization, with pinned class counts and makespans;
* the dispatch story: ``fold={auto,on,off}`` through
  ``sweep.grid_map`` with truthful ``GridGroupReport`` fold fields and
  loud refusals (``resolve_fold``), ``compile_representatives``'s
  solo-rank compile, and the fold-fuzz pin (100 seeds x 3 latency
  models, folded == unfolded == machine).
"""

from __future__ import annotations

import pytest

from repro.algorithms.broadcast import (
    BroadcastTree,
    binomial_tree,
    binomial_tree_folded,
    flat_tree,
    linear_tree,
    optimal_broadcast_tree,
    optimal_broadcast_tree_folded,
    tree_delivery_times,
    tree_delivery_times_folded,
)
from repro.core import LogPParams
from repro.sim import LogPMachine, Recv, Send
from repro.sim.collectives import binomial_reduce, tree_broadcast
from repro.sim.compiled import (
    FOLD_MODES,
    CompileError,
    FoldError,
    TimingDependentError,
    compile_programs,
    compile_representatives,
    evaluate,
    evaluate_folded,
    evaluate_folded_grid,
    evaluate_grid,
    fold_ineligibility,
    fold_program,
    fold_tree,
    resolve_fold,
)
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.sweep import GridMapReport, grid_map

BASE = LogPParams(L=6.0, o=2.0, g=4.0, P=8)


def _tree_factory(children, root=0, payload=42):
    def factory(rank: int, P: int):
        return tree_broadcast(
            rank, P, payload if rank == root else None, children, root=root
        )

    return factory


def _partition(class_of, P):
    groups: dict = {}
    for r in range(P):
        groups.setdefault(class_of(r), []).append(r)
    return sorted(map(tuple, groups.values()))


def _params(P, L=6.0, o=2.0, g=4.0):
    return LogPParams(L=L, o=o, g=g, P=P)


class TestClassCounts:
    """Pinned equivalence-class counts per family: the compression story."""

    def test_linear_chain_has_no_symmetry(self):
        # Every rank sits at a distinct depth: Θ(P) classes, correctly.
        ft = fold_tree(linear_tree(64))
        assert ft.n_classes == 64

    def test_flat_tree_has_no_symmetry(self):
        # Each child hangs off a distinct send slot of the root, so its
        # arrival time differs: Θ(P) classes, correctly.
        ft = fold_tree(flat_tree(64))
        assert ft.n_classes == 64

    @pytest.mark.parametrize(
        "k,classes", [(4, 16), (6, 57), (10, 386), (14, 1471)]
    )
    def test_binomial_lattice_counts(self, k, classes):
        assert binomial_tree_folded(2**k).n_classes == classes

    def test_binomial_generic_fold_matches_compact_count(self):
        assert fold_tree(binomial_tree(1024)).n_classes == 386

    def test_optimal_tree_counts(self):
        p = _params(1024)
        # The generic fold of the scalar greedy's naming vs the compact
        # constructor's canonical naming: both collapse ~1000 ranks to
        # ~60 classes; the canonical naming merges slightly more.
        assert fold_tree(optimal_broadcast_tree(p)).n_classes == 63
        assert optimal_broadcast_tree_folded(p).n_classes == 61

    def test_single_message_stream_folds_to_two(self):
        def stream(rank, P):
            if rank == 0:
                yield Send(1, payload=7)
                return None
            m = yield Recv()
            return m.payload

        folded = fold_program(compile_programs(stream, 2))
        assert folded.n_classes == 2

    def test_flood_refuses(self):
        def flood(rank, P):
            if rank == 0:
                for _ in range(P - 1):
                    yield Recv()
                return None
            yield Send(0)

        with pytest.raises(FoldError):
            fold_program(compile_programs(flood, 8))

    def test_summation_refuses(self):
        def summ(rank, P):
            return (yield from binomial_reduce(rank, P, float(rank)))

        with pytest.raises(FoldError):
            fold_program(compile_programs(summ, 8))

    def test_class_sizes_partition_the_ranks(self):
        ft = fold_tree(binomial_tree(128))
        assert sum(c.size for c in ft.classes) == 128
        part = _partition(ft.class_index, 128)
        assert sorted(r for grp in part for r in grp) == list(range(128))


class TestBitIdentity:
    """folded == unfolded compiled == machine, with no tolerance."""

    POINTS = [
        (6.0, 2.0, 4.0),
        (1.0, 1.0, 1.0),
        (8.0, 2.0, 4.0),
        (4.5, 0.5, 1.5),
        (16.0, 1.0, 0.0),  # g=0: the infinite-capacity sentinel
    ]

    @pytest.mark.parametrize("family", ["linear", "flat", "binomial", "optimal"])
    def test_folded_matches_unfolded_per_rank(self, family):
        for P in (2, 4, 16):
            for L, o, g in self.POINTS:
                p = _params(P, L, o, g)
                children = {
                    "linear": lambda: linear_tree(P),
                    "flat": lambda: flat_tree(P),
                    "binomial": lambda: binomial_tree(P),
                    "optimal": lambda: optimal_broadcast_tree(p).children,
                }[family]()
                prog = compile_programs(_tree_factory(children), P)
                ref = evaluate(prog, p)
                fr = evaluate_folded(fold_program(prog), p)
                assert fr.makespan == ref.makespan
                assert fr.total_stall_time == ref.total_stall_time
                assert fr.total_messages == sum(ref.sends)
                for r in range(P):
                    assert fr.finished_at(r) == ref.finished_at[r]
                    assert fr.sends(r) == ref.sends[r]
                    assert fr.receives(r) == ref.receives[r]
                    assert fr.value(r) == ref.values[r]

    def test_folded_matches_machine(self):
        for P in (4, 16):
            p = _params(P)
            children = binomial_tree(P)
            fac = _tree_factory(children, payload=9)
            res = LogPMachine(p, trace=False).run(fac)
            fr = evaluate_folded(fold_program(compile_programs(fac, P)), p)
            assert fr.makespan == res.makespan
            assert fr.total_stall_time == res.total_stall_time
            assert fr.total_messages == res.total_messages
            for r in range(P):
                assert fr.value(r) == res.value(r)

    def test_machine_differential_at_subsampled_large_P(self):
        # The huge-P claim, spot-checked where the machine is still
        # feasible: the compact-constructor pipeline reproduces the
        # event machine exactly at P=64 and P=256.
        for P in (64, 256):
            p = _params(P)
            fac = _tree_factory(binomial_tree(P), payload=9)
            res = LogPMachine(p, trace=False).run(fac)
            fr = evaluate_folded(fold_tree(binomial_tree_folded(P)), p)
            assert fr.makespan == res.makespan
            assert fr.total_stall_time == res.total_stall_time
            assert fr.total_messages == res.total_messages

    def test_capacity_constrained_point_still_exact(self):
        # Small g relative to L: finite capacity, sends actually stall.
        P = 16
        p = LogPParams(L=12.0, o=0.5, g=0.5, P=P)
        prog = compile_programs(_tree_factory(flat_tree(P)), P)
        ref = evaluate(prog, p)
        fr = evaluate_folded(fold_program(prog), p)
        assert fr.makespan == ref.makespan
        assert fr.total_stall_time == ref.total_stall_time


class TestFoldedGrid:
    GRID = [
        _params(32, L, o, g)
        for L in (1.0, 2.0, 4.0, 8.0, 12.0)
        for o in (0.5, 1.0, 2.0)
        for g in (0.0, 0.5, 2.0, 4.0)
    ]

    def test_grid_matches_unfolded_grid(self):
        prog = compile_programs(_tree_factory(binomial_tree(32)), 32)
        ref = evaluate_grid(prog, self.GRID)
        fr = evaluate_folded_grid(fold_program(prog), self.GRID)
        assert fr.folded and fr.classes > 0
        for i in range(len(self.GRID)):
            if i in fr.divergent:
                continue
            assert fr.makespans[i] == ref.makespans[i]
            assert fr.total_stall_times[i] == ref.total_stall_times[i]

    def test_numpy_and_python_replay_identical(self):
        folded = fold_program(
            compile_programs(_tree_factory(binomial_tree(32)), 32)
        )
        a = evaluate_folded_grid(folded, self.GRID, use_numpy=True)
        b = evaluate_folded_grid(folded, self.GRID, use_numpy=False)
        assert a.makespans == b.makespans
        assert a.total_stall_times == b.total_stall_times
        assert a.divergent == b.divergent

    def test_seeded_latency_refuses(self):
        folded = fold_program(
            compile_programs(_tree_factory(binomial_tree(8)), 8)
        )
        with pytest.raises(FoldError):
            evaluate_folded_grid(
                folded,
                [BASE],
                latency=UniformLatency(6.0, lo_frac=0.25, seed=1),
            )

    def test_non_dyadic_point_refuses(self):
        folded = fold_program(
            compile_programs(_tree_factory(binomial_tree(8)), 8)
        )
        with pytest.raises(FoldError):
            evaluate_folded_grid(folded, [_params(8, L=0.1)])


class TestCompactConstructors:
    def test_binomial_partition_matches_generic_fold(self):
        for k in (0, 1, 3, 6, 8):
            P = 2**k
            ft = binomial_tree_folded(P)
            gen = fold_tree(binomial_tree(P))
            assert ft.n_classes == gen.n_classes
            assert _partition(ft.classify, P) == _partition(
                gen.class_index, P
            )

    def test_binomial_rotated_root(self):
        ft = binomial_tree_folded(16, root=5)
        gen = fold_tree(binomial_tree(16, root=5), root=5)
        assert _partition(ft.classify, 16) == _partition(gen.class_index, 16)

    def test_binomial_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            binomial_tree_folded(24)

    def test_binomial_representative_is_min_member(self):
        P = 256
        ft = binomial_tree_folded(P)
        reps: dict = {}
        for r in range(P):
            c = ft.classify(r)
            reps[c] = min(reps.get(c, r), r)
        for c in ft.classes:
            assert c.rep == reps[c.index]

    def test_optimal_compact_vs_scalar_greedy(self):
        for P in (1, 2, 5, 16, 33, 100):
            for L, o, g in ((6.0, 2.0, 4.0), (2.0, 1.0, 1.0), (10.0, 2.0, 3.0)):
                p = _params(P, L, o, g)
                ft = optimal_broadcast_tree_folded(p)
                tree = optimal_broadcast_tree(p)
                # Same delivery-time multiset and completion time as the
                # scalar greedy (the greedy's rank naming is arbitrary,
                # so multiset equality is the honest invariant) ...
                dt = tree_delivery_times_folded(p, ft)
                folded_times = sorted(
                    t
                    for c in ft.classes
                    for t in [dt[c.index]] * c.size
                )
                assert folded_times == sorted(tree.recv_time)
                assert max(dt) == tree.completion_time
                # ... and an exact partition match against the generic
                # fold of its *own* expansion.
                kids = ft.expand()
                assert tree_delivery_times(p, kids) == [
                    dt[ft.classify(r)] for r in range(P)
                ]
                gen = fold_tree(kids)
                assert _partition(ft.classify, P) == _partition(
                    gen.class_index, P
                )

    def test_optimal_degenerate_corner_refuses(self):
        # g == L + 2o: the greedy's heap interleaves per-rank at every
        # timestamp, so there is no class-invariant naming.
        with pytest.raises(FoldError):
            optimal_broadcast_tree_folded(
                LogPParams(L=2.0, o=1.0, g=4.0, P=8)
            )

    def test_folded_evaluation_through_compact_trees(self):
        for P in (8, 64):
            p = _params(P)
            rb = evaluate_folded(fold_tree(binomial_tree_folded(P)), p)
            re = evaluate_folded(fold_tree(binomial_tree(P)), p)
            assert rb.makespan == re.makespan
            assert [rb.finished_at(r) for r in range(P)] == [
                re.finished_at(r) for r in range(P)
            ]

    def test_depth_linear_and_binomial(self):
        # depth() is BFS one-pass now; the old recursion was quadratic
        # on deep chains.
        p = _params(4)
        kids = linear_tree(1000)
        parent: list = [None] * 1000
        for src, cs in enumerate(kids):
            for c in cs:
                parent[c] = src
        lin = BroadcastTree(
            params=_params(1000),
            root=0,
            parent=parent,
            children=kids,
            recv_time=[0.0] * 1000,
        )
        assert lin.depth() == 999
        assert optimal_broadcast_tree(p).depth() >= 1

    def test_folded_tree_depth_and_sizes(self):
        ft = binomial_tree_folded(1024)
        assert ft.depth() == 10
        assert sum(ft.sizes()) == 1024


class TestHugeP:
    """P = 2**20 without materializing a single per-rank object."""

    def test_binomial_million_ranks(self):
        P = 2**20
        ft = binomial_tree_folded(P)
        assert ft.n_classes == 6196
        assert sum(ft.sizes()) == P
        fr = evaluate_folded(fold_tree(ft), _params(P, L=8.0, o=2.0, g=4.0))
        assert fr.makespan == 1000.0
        assert fr.total_messages == P - 1
        # Per-rank views come from classify, not from a P-length table.
        assert fr.finished_at(0) < fr.finished_at(P - 1) <= fr.makespan

    def test_optimal_million_ranks(self):
        P = 2**20
        p = _params(P, L=8.0, o=2.0, g=4.0)
        ft = optimal_broadcast_tree_folded(p)
        assert ft.n_classes == 235
        assert sum(ft.sizes()) == P
        fr = evaluate_folded(fold_tree(ft), p)
        assert fr.makespan == ft.completion_time(p) == 152.0
        assert fr.total_messages == P - 1

    def test_grid_at_million_ranks(self):
        P = 2**20
        folded = fold_tree(binomial_tree_folded(P))
        pts = [_params(P, L=8.0, o=o, g=4.0) for o in (0.5, 1.0, 2.0, 4.0)]
        gr = evaluate_folded_grid(folded, pts)
        assert not gr.divergent
        assert gr.folded and gr.classes == 6196
        for i, p in enumerate(pts):
            assert gr.makespans[i] == evaluate_folded(folded, p).makespan


class TestFoldModes:
    def test_fold_modes_tuple(self):
        assert FOLD_MODES == ("auto", "on", "off")

    def test_resolve_fold_validates_mode(self):
        with pytest.raises(ValueError, match="fold must be one of"):
            resolve_fold("maybe")

    def test_resolve_fold_eligibility(self):
        assert resolve_fold("auto") == "on"
        assert resolve_fold("off") == "off"
        assert resolve_fold("on", latency=FixedLatency(2.0)) == "on"
        seeded = UniformLatency(6.0, lo_frac=0.25, seed=3)
        assert resolve_fold("auto", latency=seeded) == "off"
        with pytest.raises(ValueError, match="cannot use symmetry folding"):
            resolve_fold("on", latency=seeded)
        with pytest.raises(ValueError, match="compute_jitter"):
            resolve_fold("on", compute_jitter=lambda r, t: 0.0)

    def test_fold_ineligibility_reasons(self):
        assert fold_ineligibility() is None
        assert fold_ineligibility(latency=FixedLatency(1.0)) is None
        assert "draw" in fold_ineligibility(
            latency=UniformLatency(6.0, lo_frac=0.25, seed=3)
        )


class TestGridMapFold:
    PTS = [
        _params(64, L, o, g)
        for L in (1.0, 4.0, 8.0)
        for o in (0.5, 2.0)
        for g in (0.0, 1.0, 4.0)
    ]

    def test_fold_on_off_auto_identical_results(self):
        fac = _tree_factory(binomial_tree(64))
        on = grid_map(fac, self.PTS, fold="on")
        off = grid_map(fac, self.PTS, fold="off")
        auto = grid_map(fac, self.PTS, fold="auto")
        assert on == off == auto

    def test_report_records_folded_path(self):
        fac = _tree_factory(binomial_tree(64))
        report = GridMapReport()
        grid_map(fac, self.PTS, fold="on", report=report)
        (group,) = report.groups
        assert group.path == "compiled-folded"
        assert group.fold == "on"
        assert group.classes == 57
        assert report.folded == [group]

    def test_auto_skips_non_compressing_fold(self):
        fac = _tree_factory(linear_tree(8))
        report = GridMapReport()
        grid_map(fac, [BASE], fold="auto", report=report)
        (group,) = report.groups
        assert group.path == "compiled"
        assert group.fold == "off"
        assert "no compression" in group.fold_reason

    def test_auto_records_shape_refusal(self):
        def reduce_prog(rank, P):
            return (yield from binomial_reduce(rank, P, float(rank)))

        report = GridMapReport()
        grid_map(reduce_prog, [BASE], fold="auto", report=report)
        (group,) = report.groups
        assert group.path == "compiled"
        assert group.fold == "off"
        assert group.fold_reason  # the FoldError text, verbatim

    def test_auto_records_timing_ineligibility(self):
        fac = _tree_factory(binomial_tree(8))
        report = GridMapReport()
        grid_map(
            fac,
            [BASE],
            fold="auto",
            latency=UniformLatency(6.0, lo_frac=0.25, seed=1),
            report=report,
        )
        (group,) = report.groups
        assert group.fold == "off"
        assert "class-invariant" in group.fold_reason

    def test_fold_on_raises_on_unfoldable_shape(self):
        def reduce_prog(rank, P):
            return (yield from binomial_reduce(rank, P, float(rank)))

        with pytest.raises(FoldError):
            grid_map(reduce_prog, [BASE], fold="on")

    def test_fold_on_requires_compiled_backend(self):
        fac = _tree_factory(binomial_tree(8))
        with pytest.raises(ValueError, match="requires the compiled"):
            grid_map(fac, [BASE], backend="machine", fold="on")

    def test_fold_on_refuses_seeded_latency(self):
        fac = _tree_factory(binomial_tree(8))
        with pytest.raises(ValueError, match="cannot use symmetry folding"):
            grid_map(
                fac,
                [BASE],
                fold="on",
                latency=UniformLatency(6.0, lo_frac=0.25, seed=1),
            )

    def test_best_pipelined_tree_accepts_fold(self):
        from repro.algorithms.broadcast import best_pipelined_tree

        p = _params(8)
        name_a, tree_a = best_pipelined_tree(p, 1, backend="auto", fold="auto")
        name_b, tree_b = best_pipelined_tree(p, 1, backend="auto", fold="off")
        assert (name_a, tree_a) == (name_b, tree_b)


class TestCompileRepresentatives:
    def test_matches_full_compile(self):
        P = 64
        fac = _tree_factory(binomial_tree(P))
        full = compile_programs(fac, P)
        reps = compile_representatives(fac, P, [0, 1, 5, 32, 63])
        for rank, ops in reps.items():
            assert ops == tuple(full.ops[rank])

    def test_theta_reps_not_theta_p(self):
        # Only the requested generators are driven: a factory that
        # explodes for any other rank proves no hidden Θ(P) pass.
        P = 2**20
        kids_of_rank_0 = [1, 2]

        def fac(rank, P_):
            if rank > 2:
                raise AssertionError(f"rank {rank} was instantiated")
            return tree_broadcast(
                rank,
                P_,
                7 if rank == 0 else None,
                {0: kids_of_rank_0, 1: [], 2: []},
                root=0,
            )

        reps = compile_representatives(fac, P, [0, 1])
        assert set(reps) == {0, 1}

    def test_refuses_barrier_and_now(self):
        from repro.sim import Barrier, Now
        from repro.sim.program import Compute

        def with_barrier(rank, P):
            yield Compute(1.0)
            yield Barrier()

        with pytest.raises(CompileError, match="Barrier"):
            compile_representatives(with_barrier, 4, [0])

        def with_now(rank, P):
            t = yield Now()
            yield Compute(t + 1.0)

        with pytest.raises(TimingDependentError):
            compile_representatives(with_now, 4, [0])

    def test_rejects_out_of_range_rank(self):
        fac = _tree_factory(binomial_tree(4))
        with pytest.raises(CompileError, match="out of range"):
            compile_representatives(fac, 4, [4])


class TestFoldFuzzPin:
    def test_hundred_seeds_three_latency_models(self):
        from repro.sim.fuzz import fold_fuzz_sweep

        summary = fold_fuzz_sweep(
            range(100), ("fixed", "uniform", "jittered"), workers=1
        )
        assert summary.cases == 100
        assert summary.runs == 300
        assert summary.ok, summary.failures[:5]
        # Every tree family must actually have been drawn.
        assert set(summary.by_family) == {
            "linear", "flat", "binomial", "optimal", "random"
        }


class TestBenchFoldedWorkloads:
    def test_folded_vs_unfolded_report_keys(self):
        from repro.bench import run_all

        report = run_all(smoke=True, reps=1, only="folded_vs_unfolded")
        t = report["timings_s"]
        assert "folded_vs_unfolded_folded_s" in t
        assert "folded_vs_unfolded_unfolded_s" in t
        assert report["folded_vs_unfolded_speedup"] > 1.0
        assert report["max_rss_kb"] > 0

    def test_peak_rss_regression_gate(self):
        from repro.bench import compare_reports

        report = {"timings_s": {}, "max_rss_kb": 1000}
        ratios, regressions = compare_reports(
            report, {"timings_s": {}, "max_rss_kb": 700}
        )
        assert ratios["max_rss_kb"] == pytest.approx(1.429, abs=1e-3)
        assert regressions == ["max_rss_kb"]
        ratios, regressions = compare_reports(
            report, {"timings_s": {}, "max_rss_kb": 900}
        )
        assert regressions == []
