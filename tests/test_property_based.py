"""Property-based tests (hypothesis) on the core invariants.

The heaviest net here is semantic: *any* random message-passing program,
run on *any* random LogP machine, must produce a trace that satisfies
every clause of the model — overhead durations, send/receive gaps, the
latency bound, and the capacity constraint.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    optimal_broadcast_time,
    optimal_broadcast_tree,
    tree_delivery_times,
)
from repro.algorithms.fft import fft_natural, hybrid_fft_inmemory
from repro.algorithms.summation import (
    distribute_inputs,
    optimal_summation_tree,
    summation_capacity,
    summation_program,
)
from repro.memory.cache import Cache
from repro.sim import (
    Compute,
    LogPMachine,
    Recv,
    Send,
    UniformLatency,
    run_programs,
    validate_schedule,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

logp_params = st.builds(
    LogPParams,
    L=st.integers(0, 20).map(float),
    o=st.integers(0, 6).map(float),
    g=st.integers(1, 8).map(float),
    P=st.integers(2, 6),
)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_traffic(draw):
    """A random machine plus a random message multiset (src != dst)."""
    p = draw(logp_params)
    n_msgs = draw(st.integers(0, 12))
    msgs = []
    for _ in range(n_msgs):
        src = draw(st.integers(0, p.P - 1))
        dst = draw(st.integers(0, p.P - 2))
        if dst >= src:
            dst += 1
        msgs.append((src, dst))
    computes = {
        r: draw(st.integers(0, 15)) for r in range(p.P)
    }
    return p, msgs, computes


def traffic_programs(p, msgs, computes):
    """Sends-then-receives programs (deadlock-free by construction)."""
    outgoing = {r: [] for r in range(p.P)}
    incoming = {r: 0 for r in range(p.P)}
    for src, dst in msgs:
        outgoing[src].append(dst)
        incoming[dst] += 1

    def factory(rank, P):
        def run():
            if computes[rank]:
                yield Compute(computes[rank])
            for dst in outgoing[rank]:
                yield Send(dst, payload=(rank, dst))
            got = []
            for _ in range(incoming[rank]):
                m = yield Recv()
                got.append(m.payload)
            return got

        return run()

    return factory


# ----------------------------------------------------------------------
# Simulator semantics
# ----------------------------------------------------------------------


class TestSimulatorSemantics:
    @SLOW
    @given(random_traffic())
    def test_any_program_yields_valid_trace(self, traffic):
        p, msgs, computes = traffic
        res = run_programs(p, traffic_programs(p, msgs, computes))
        validate_schedule(res.schedule, exact_latency=True).raise_if_invalid()
        assert res.total_messages == len(msgs)

    @SLOW
    @given(random_traffic(), st.integers(0, 2**32 - 1))
    def test_random_latency_still_valid_and_delivers_all(self, traffic, seed):
        p, msgs, computes = traffic
        machine = LogPMachine(
            p, latency=UniformLatency(p.L, lo_frac=0.25, seed=seed)
        )
        res = machine.run(traffic_programs(p, msgs, computes))
        validate_schedule(res.schedule).raise_if_invalid()
        delivered = [x for r in res.values() for x in r]
        assert sorted(delivered) == sorted((s, d) for s, d in msgs)

    @SLOW
    @given(random_traffic())
    def test_determinism(self, traffic):
        p, msgs, computes = traffic
        r1 = run_programs(p, traffic_programs(p, msgs, computes))
        r2 = run_programs(p, traffic_programs(p, msgs, computes))
        assert r1.makespan == r2.makespan
        assert r1.total_stall_time == r2.total_stall_time

    @SLOW
    @given(random_traffic())
    def test_capacity_off_never_slower(self, traffic):
        p, msgs, computes = traffic
        with_cap = run_programs(p, traffic_programs(p, msgs, computes))
        machine = LogPMachine(p, enforce_capacity=False)
        without = machine.run(traffic_programs(p, msgs, computes))
        assert without.makespan <= with_cap.makespan + 1e-9


# ----------------------------------------------------------------------
# Broadcast optimality
# ----------------------------------------------------------------------


@st.composite
def random_tree(draw, P):
    """A random spanning arborescence on 0..P-1 rooted at 0, with
    random child orders."""
    children = [[] for _ in range(P)]
    nodes = [0]
    for v in range(1, P):
        parent = draw(st.sampled_from(nodes))
        children[parent].append(v)
        nodes.append(v)
    for c in children:
        draw(st.randoms()).shuffle(c)
    return children


class TestBroadcastOptimality:
    @SLOW
    @given(logp_params, st.data())
    def test_greedy_never_beaten_by_random_tree(self, p, data):
        children = data.draw(random_tree(p.P))
        opt = optimal_broadcast_time(p)
        rand = max(tree_delivery_times(p, children))
        assert opt <= rand + 1e-9

    @SLOW
    @given(logp_params)
    def test_tree_recv_times_self_consistent(self, p):
        tree = optimal_broadcast_tree(p)
        recomputed = tree_delivery_times(p, tree.children, tree.root)
        assert recomputed == tree.recv_time


# ----------------------------------------------------------------------
# Summation invariants
# ----------------------------------------------------------------------


class TestSummationProperties:
    @SLOW
    @given(logp_params, st.integers(0, 40))
    def test_capacity_monotone_and_consistent(self, p, T):
        c1 = summation_capacity(p, T)
        c2 = summation_capacity(p, T + 1)
        assert c2 >= c1 >= 1
        tree = optimal_summation_tree(p, T)
        assert tree.total_values == c1
        assert tree.processors_used <= p.P

    @SLOW
    @given(logp_params, st.integers(5, 35), st.integers(0, 2**31 - 1))
    def test_simulated_sum_is_exact(self, p, T, seed):
        tree = optimal_summation_tree(p, T)
        rng = np.random.default_rng(seed)
        values = rng.integers(-100, 100, tree.total_values).astype(float)
        res = run_programs(p, summation_program(tree, distribute_inputs(tree, values)))
        assert res.value(0) == values.sum()
        assert res.makespan <= T + 1e-9


# ----------------------------------------------------------------------
# FFT correctness
# ----------------------------------------------------------------------


class TestFFTProperties:
    @SLOW
    @given(
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    def test_local_fft_matches_numpy(self, logn, seed):
        n = 2**logn
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft_natural(x), np.fft.fft(x))

    @SLOW
    @given(
        st.sampled_from([(16, 2), (16, 4), (64, 4), (64, 8), (256, 4)]),
        st.integers(0, 2**31 - 1),
    )
    def test_hybrid_matches_numpy(self, shape, seed):
        n, P = shape
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(hybrid_fft_inmemory(x, P), np.fft.fft(x))

    @SLOW
    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_parseval(self, logn, seed):
        n = 2**logn
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        X = fft_natural(x)
        assert np.sum(np.abs(X) ** 2) / n == np.sum(np.abs(x) ** 2) * (
            1 + 0
        ) or np.isclose(np.sum(np.abs(X) ** 2) / n, np.sum(np.abs(x) ** 2))


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------


class TestCacheProperties:
    @SLOW
    @given(
        st.lists(st.integers(0, 2**14 - 1), max_size=300),
        st.sampled_from([256, 1024, 4096]),
        st.sampled_from([16, 32]),
    )
    def test_vectorized_equals_scalar(self, addrs, size, line):
        a = np.asarray(addrs, dtype=np.int64)
        c1 = Cache(size, line)
        c1.access_block(a)
        c2 = Cache(size, line)
        for x in addrs:
            c2.access(int(x))
        assert c1.stats.misses == c2.stats.misses

    @SLOW
    @given(st.lists(st.integers(0, 2**12 - 1), max_size=200))
    def test_miss_bounds(self, addrs):
        c = Cache(1024, 32)
        for x in addrs:
            c.access(x)
        st_ = c.stats
        distinct_lines = len({x // 32 for x in addrs})
        assert distinct_lines <= st_.misses + 0 or st_.misses >= 0
        assert st_.misses >= min(distinct_lines, 1) if addrs else True
        assert st_.misses <= st_.accesses

    @SLOW
    @given(st.integers(1, 32), st.integers(0, 2**31 - 1))
    def test_working_set_within_capacity_all_hits_second_pass(
        self, n_lines, seed
    ):
        rng = np.random.default_rng(seed)
        # n_lines distinct lines, all mapping to distinct sets of a
        # 32-set direct-mapped cache.
        lines = rng.choice(32, size=min(n_lines, 32), replace=False)
        addrs = lines * 32
        c = Cache(1024, 32)
        c.access_block(addrs)
        before = c.stats.misses
        c.access_block(addrs)
        assert c.stats.misses == before


# ----------------------------------------------------------------------
# Parameter object
# ----------------------------------------------------------------------


class TestParamProperties:
    @given(logp_params)
    def test_capacity_consistent(self, p):
        cap = p.capacity
        assert cap >= 1
        assert cap * p.g >= p.L or p.g == 0

    @given(logp_params, st.floats(0.1, 10))
    def test_scaling_preserves_ratios(self, p, k):
        q = p.scaled(k)
        if p.g > 0 and p.L > 0:
            assert q.L / q.g == pytest.approx(p.L / p.g)
        assert q.P == p.P

    @given(logp_params, st.integers(1, 20))
    def test_merge_overhead_additive_bound(self, p, k):
        # o := max(o, g) inflates a k-message stream by exactly the two
        # endpoint overheads' growth: 2 * (max(g, o) - o).  (The paper's
        # informal "conservative by at most a factor of two" follows
        # whenever 2g <= L + 4o — see the ablation benchmark.)
        from repro.core import pipelined_stream_exact

        merged = p.merge_overhead_into_gap()
        inflation = pipelined_stream_exact(merged, k) - pipelined_stream_exact(p, k)
        assert inflation == pytest.approx(2 * (max(p.g, p.o) - p.o))

    @given(logp_params, st.integers(1, 20))
    def test_merge_factor_two_in_physical_regime(self, p, k):
        # The factor-2 claim, in the regime where it provably holds.
        from repro.core import pipelined_stream_exact

        if 2 * p.g > p.L + 4 * p.o:
            return
        merged = p.merge_overhead_into_gap()
        orig = pipelined_stream_exact(p, k)
        assert pipelined_stream_exact(merged, k) <= 2 * orig + 1e-9
