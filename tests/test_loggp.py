"""Tests for the long-message extension (Section 5.4 / LogGP):
repro.core.loggp plus the simulator's multi-word sends."""

import pytest

from repro.core import (
    LogGPParams,
    LogPParams,
    fragmentation_crossover,
    long_message_processor_time,
    long_message_time,
    pipelined_stream_exact,
)
from repro.sim import (
    Now,
    Recv,
    Send,
    SimulationError,
    run_programs,
    validate_schedule,
)


@pytest.fixture
def gp():
    return LogGPParams(L=6, o=2, g=4, G=0.5, P=2)


class TestParams:
    def test_inherits_logp_fields(self, gp):
        assert (gp.L, gp.o, gp.g, gp.G, gp.P) == (6, 2, 4, 0.5, 2)
        assert gp.point_to_point() == 10

    def test_negative_G_rejected(self):
        with pytest.raises(ValueError):
            LogGPParams(L=6, o=2, g=4, G=-1, P=2)

    def test_bulk_bandwidth(self, gp):
        assert gp.bulk_bandwidth == 2.0
        assert LogGPParams(L=1, o=1, g=1, G=0, P=2).bulk_bandwidth == float("inf")

    def test_as_logp_drops_extension(self, gp):
        p = gp.as_logp()
        assert isinstance(p, LogPParams) and not isinstance(p, LogGPParams)
        assert (p.L, p.o, p.g) == (6, 2, 4)

    def test_base_validation_still_applies(self):
        with pytest.raises(ValueError):
            LogGPParams(L=-1, o=2, g=4, G=0.5, P=2)


class TestCosts:
    def test_single_word_degenerates_to_small_message(self, gp):
        assert long_message_time(gp, 1) == gp.point_to_point()

    def test_k_word_formula(self, gp):
        # o + (k-1)G + L + o
        assert long_message_time(gp, 101) == 2 + 100 * 0.5 + 6 + 2

    def test_processor_time_is_just_setup(self, gp):
        assert long_message_processor_time(gp, 1000) == gp.o

    def test_bulk_beats_fragmentation(self, gp):
        k = 50
        bulk = long_message_time(gp, k)
        frag = pipelined_stream_exact(gp, k)
        assert bulk < frag

    def test_crossover(self, gp):
        assert fragmentation_crossover(gp) == 2.0
        slow = LogGPParams(L=6, o=2, g=1, G=9, P=2)
        assert fragmentation_crossover(slow) == float("inf")

    def test_rejects_zero_words(self, gp):
        with pytest.raises(ValueError):
            long_message_time(gp, 0)


class TestSimulatedBulkSends:
    def test_end_to_end_time(self, gp):
        def prog(rank, P):
            if rank == 0:
                yield Send(1, payload="x" * 64, words=64)
            else:
                m = yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(gp, prog)
        assert res.value(1) == long_message_time(gp, 64)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_sender_free_after_setup(self, gp):
        def prog(rank, P):
            if rank == 0:
                yield Send(1, words=1000)
                t = yield Now()
                return t
            else:
                yield Recv()
            return None

        res = run_programs(gp, prog)
        assert res.value(0) == gp.o  # DMA overlap: only the setup costs

    def test_port_occupancy_serializes_bulk_sends(self, gp):
        def prog(rank, P):
            if rank == 0:
                yield Send(1, words=50)
                yield Send(1, words=50)
            else:
                yield Recv()
                yield Recv()
            return None

        res = run_programs(gp, prog)
        msgs = sorted(res.schedule.messages, key=lambda m: m.inject)
        # Second send cannot start before the port finishes streaming
        # the first: o + 49*G = 2 + 24.5.
        assert msgs[1].send_start >= 2 + 49 * 0.5 - 1e-9

    def test_small_sends_unaffected_by_G(self, gp):
        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                yield Send(1)
            else:
                yield Recv()
                yield Recv()
            return None

        res = run_programs(gp, prog)
        msgs = sorted(res.schedule.messages, key=lambda m: m.inject)
        assert msgs[1].send_start - msgs[0].send_start == gp.send_interval

    def test_bulk_send_on_plain_logp_rejected(self):
        p = LogPParams(L=6, o=2, g=4, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1, words=10)
            else:
                yield Recv()
            return None

        with pytest.raises(SimulationError, match="LogGPParams"):
            run_programs(p, prog)

    def test_words_validation(self):
        with pytest.raises(ValueError):
            Send(1, words=0)

    def test_bulk_vs_fragmented_on_machine(self, gp):
        """The motivating comparison: one 40-word message vs 40 small
        ones, both simulated; bulk wins on makespan and processor time."""

        def bulk(rank, P):
            if rank == 0:
                yield Send(1, words=40, tag="b")
            else:
                yield Recv(tag="b")
            return None

        def frag(rank, P):
            if rank == 0:
                for _ in range(40):
                    yield Send(1, tag="f")
            else:
                for _ in range(40):
                    yield Recv(tag="f")
            return None

        res_b = run_programs(gp, bulk)
        res_f = run_programs(gp, frag)
        assert res_b.makespan < res_f.makespan / 2
