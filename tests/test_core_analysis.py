"""Tests for repro.core.analysis: the Section 4 closed forms."""

import math

import pytest

from repro.core import (
    LogPParams,
    efficiency,
    fft_comm_time_blocked,
    fft_comm_time_cyclic,
    fft_comm_time_hybrid,
    fft_compute_time,
    fft_optimality_ratio,
    fft_total_time,
    lu_active_processors,
    lu_comm_per_step,
    lu_compute_per_step,
    lu_total_time,
    speedup,
)


@pytest.fixture
def p():
    return LogPParams(L=6, o=2, g=4, P=8)


class TestFFTAnalysis:
    def test_compute_time_n_over_p_log_n(self, p):
        assert fft_compute_time(1024, 8) == 128 * 10

    def test_compute_rejects_non_powers(self):
        with pytest.raises(ValueError):
            fft_compute_time(1000, 8)
        with pytest.raises(ValueError):
            fft_compute_time(1024, 3)

    def test_compute_rejects_P_exceeding_n(self):
        with pytest.raises(ValueError):
            fft_compute_time(8, 16)

    def test_cyclic_comm_formula(self, p):
        # (g n/P + L) log P = (4*128+6)*3
        assert fft_comm_time_cyclic(p, 1024) == (4 * 128 + 6) * 3

    def test_blocked_equals_cyclic(self, p):
        assert fft_comm_time_blocked(p, 1024) == fft_comm_time_cyclic(p, 1024)

    def test_hybrid_comm_formula(self, p):
        # g(n/P - n/P^2) + L
        assert fft_comm_time_hybrid(p, 1024) == 4 * (128 - 16) + 6

    def test_hybrid_beats_cyclic_by_about_log_p(self, p):
        cyc = fft_comm_time_cyclic(p, 2**16)
        hyb = fft_comm_time_hybrid(p, 2**16)
        ratio = cyc / hyb
        # Limit is log2(P) / (1 - 1/P) = 3/(7/8) ~ 3.43 for large n.
        assert 2.5 < ratio <= 3.0 / (1 - 1 / 8) + 0.01

    def test_hybrid_requires_n_at_least_P_squared(self, p):
        with pytest.raises(ValueError):
            fft_comm_time_hybrid(p, 32)

    def test_single_processor_no_communication(self):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        assert fft_comm_time_cyclic(p1, 64) == 0
        assert fft_comm_time_hybrid(p1, 64) == 0

    def test_total_time_layouts(self, p):
        assert fft_total_time(p, 1024, "hybrid") == pytest.approx(
            fft_compute_time(1024, 8) + fft_comm_time_hybrid(p, 1024)
        )
        with pytest.raises(ValueError):
            fft_total_time(p, 1024, "diagonal")

    def test_optimality_ratio(self, p):
        assert fft_optimality_ratio(p, 1024) == pytest.approx(1 + 4 / 10)

    def test_optimality_ratio_approaches_one(self, p):
        big = fft_optimality_ratio(p, 2**20)
        small = fft_optimality_ratio(p, 2**10)
        assert big < small


class TestLUAnalysis:
    def test_bad_layout_per_step(self, p):
        # 2(n-1-k)g + L
        assert lu_comm_per_step(p, 100, 0, "bad") == 2 * 99 * 4 + 6

    def test_column_halves_bad(self, p):
        bad = lu_comm_per_step(p, 100, 10, "bad")
        col = lu_comm_per_step(p, 100, 10, "column")
        assert bad - p.L == 2 * (col - p.L)

    def test_grid_gains_sqrt_P(self):
        p = LogPParams(L=6, o=2, g=4, P=16)
        col = lu_comm_per_step(p, 100, 0, "column")
        grid = lu_comm_per_step(p, 100, 0, "grid")
        # 2m g / sqrt(P) vs m g: grid = column/2 at P=16
        assert (grid - p.L) == pytest.approx((col - p.L) / 2)

    def test_grid_requires_square_P(self, p):
        with pytest.raises(ValueError):
            lu_comm_per_step(p, 10, 0, "grid")

    def test_last_step_no_communication(self, p):
        assert lu_comm_per_step(p, 10, 9, "column") == 0.0

    def test_compute_per_step(self):
        assert lu_compute_per_step(10, 0, 1) == 2 * 81
        assert lu_compute_per_step(10, 0, 4) == 2 * 81 / 4

    def test_total_time_monotone_in_layout_quality(self):
        p = LogPParams(L=6, o=2, g=4, P=16)
        bad = lu_total_time(p, 64, "bad")
        col = lu_total_time(p, 64, "column")
        grid = lu_total_time(p, 64, "grid")
        assert bad > col > grid

    def test_unknown_layout_rejected(self, p):
        with pytest.raises(ValueError):
            lu_comm_per_step(p, 10, 0, "diagonal")


class TestActiveProcessors:
    def test_scattered_keeps_all_busy_early(self):
        assert lu_active_processors(64, 16, 0, "scattered") == 16
        assert lu_active_processors(64, 16, 32, "scattered") == 16

    def test_scattered_tail(self):
        # With remaining submatrix smaller than the grid side, fewer.
        assert lu_active_processors(64, 16, 61, "scattered") == 4
        assert lu_active_processors(64, 16, 62, "scattered") == 1

    def test_blocked_idles_early(self):
        # Halfway through, blocked has lost processors.
        act = lu_active_processors(64, 16, 40, "blocked")
        assert act < 16

    def test_blocked_last_steps_single_processor(self):
        assert lu_active_processors(64, 16, 62, "blocked") == 1

    def test_scattered_never_worse_than_blocked(self):
        for k in range(0, 63, 5):
            s = lu_active_processors(64, 16, k, "scattered")
            b = lu_active_processors(64, 16, k, "blocked")
            assert s >= b

    def test_no_work_after_last_step(self):
        assert lu_active_processors(64, 16, 63, "scattered") == 0

    def test_rejects_non_square_P(self):
        with pytest.raises(ValueError):
            lu_active_processors(64, 8, 0)

    def test_rejects_unknown_allocation(self):
        with pytest.raises(ValueError):
            lu_active_processors(64, 16, 0, "wavefront")


class TestMetrics:
    def test_speedup(self):
        assert speedup(100, 10) == 10

    def test_efficiency(self):
        assert efficiency(100, 25, 8) == 0.5

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            speedup(10, 0)
        with pytest.raises(ValueError):
            efficiency(10, 1, 0)
