"""Tests for repro.models.pram_on_logp: the Section 6.1 PRAM emulation."""

import pytest

from repro.core import LogPParams
from repro.models import (
    PramStep,
    pram_broadcast_program,
    pram_slowdown,
    pram_sum_program,
    run_pram_on_logp,
)


@pytest.fixture
def p8():
    return LogPParams(L=6, o=2, g=4, P=8)


class TestEmulationCorrectness:
    def test_sum_matches_ideal(self, p8):
        n = 16
        ideal, emulated, slowdown = pram_slowdown(
            p8, pram_sum_program(n), n, initial=list(range(n))
        )
        assert emulated.memory[0] == sum(range(16))
        assert slowdown > 0

    def test_broadcast_matches_ideal(self, p8):
        ideal, emulated, _ = pram_slowdown(
            p8, pram_broadcast_program(16), 16, initial=[7] + [0] * 15
        )
        assert all(v == 7 for v in emulated.memory)
        assert ideal.steps == emulated.steps

    def test_synchronous_swap_semantics(self):
        """Reads happen before writes within a step: two processors
        swapping through shared memory must not lose a value."""
        p2 = LogPParams(L=6, o=2, g=4, P=2)

        def prog(pid, P):
            def run():
                other = 1 - pid
                vals = yield PramStep(
                    reads=[other], write=lambda v: (pid, v[0])
                )
                return vals[0]

            return run()

        ideal, emulated, _ = pram_slowdown(p2, prog, 2, initial=[10, 20])
        assert emulated.memory == [20, 10]
        assert emulated.returns == [20, 10]

    def test_multi_step_dependency_chain(self, p8):
        """Step k+1 must observe step k's writes."""

        def prog(pid, P):
            def run():
                # Everyone increments its own cell, twice, reading it
                # back in between.
                yield PramStep(reads=[pid], write=lambda v: (pid, v[0] + 1))
                vals = yield PramStep(
                    reads=[pid], write=lambda v: (pid, v[0] * 10)
                )
                return vals[0]

            return run()

        result = run_pram_on_logp(p8, prog, 8, initial=[0] * 8)
        assert result.memory == [10] * 8
        assert result.returns == [1] * 8

    def test_lockstep_violation_detected(self, p8):
        def prog(pid, P):
            def run():
                yield PramStep()
                if pid == 0:
                    yield PramStep()
                return None

            return run()

        with pytest.raises(Exception):
            run_pram_on_logp(p8, prog, 8)

    def test_non_pramstep_rejected(self, p8):
        def prog(pid, P):
            def run():
                yield "junk"
                return None

            return run()

        with pytest.raises(Exception, match="PramStep"):
            run_pram_on_logp(p8, prog, 8)


class TestSlowdown:
    def test_unacceptably_slow(self, p8):
        """The Section 6.1 point: a PRAM step that the model charges 1
        costs two orders of magnitude more once bandwidth and overhead
        are properly accounted."""
        n = 16
        _, emulated, cycles_per_step = pram_slowdown(
            p8, pram_sum_program(n), n, initial=list(range(n))
        )
        assert cycles_per_step > 50

    def test_slowdown_grows_with_latency(self):
        n = 16
        cheap = LogPParams(L=2, o=1, g=1, P=8)
        costly = LogPParams(L=40, o=8, g=8, P=8)
        _, _, s_cheap = pram_slowdown(
            cheap, pram_sum_program(n), n, initial=list(range(n))
        )
        _, _, s_costly = pram_slowdown(
            costly, pram_sum_program(n), n, initial=list(range(n))
        )
        assert s_costly > 3 * s_cheap

    def test_steps_counted(self, p8):
        res = run_pram_on_logp(
            p8, pram_sum_program(16), 16, initial=list(range(16))
        )
        assert res.steps == 4
        assert res.cycles_per_step == pytest.approx(res.makespan / 4)
