"""Tests for repro.sim.trace (statistics) and repro.sim.latency."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.sim import (
    Compute,
    FixedLatency,
    JitteredLatency,
    LogPMachine,
    Recv,
    Send,
    UniformLatency,
    communication_rate,
    message_stats,
    receive_histogram,
    run_programs,
    utilization,
)


@pytest.fixture
def ping_result():
    p = LogPParams(L=6, o=2, g=4, P=2)

    def prog(rank, P):
        if rank == 0:
            yield Compute(10)
            yield Send(1)
        else:
            yield Recv()
        return None

    return run_programs(p, prog)


class TestUtilization:
    def test_fractions_sum_to_one(self, ping_result):
        for u in utilization(ping_result.schedule):
            total = u.compute + u.send_overhead + u.recv_overhead + u.stall + u.idle
            assert total == pytest.approx(1.0)

    def test_compute_fraction(self, ping_result):
        u0 = utilization(ping_result.schedule)[0]
        # 10 compute out of 20 makespan.
        assert u0.compute == pytest.approx(0.5)
        assert u0.send_overhead == pytest.approx(0.1)

    def test_receiver_mostly_idle(self, ping_result):
        u1 = utilization(ping_result.schedule)[1]
        assert u1.idle > 0.8
        assert u1.recv_overhead == pytest.approx(0.1)

    def test_busy_property(self, ping_result):
        u0 = utilization(ping_result.schedule)[0]
        assert u0.busy == pytest.approx(0.6)


class TestMessageStats:
    def test_single_message(self, ping_result):
        st = message_stats(ping_result.schedule)
        assert st.count == 1
        assert st.mean_flight == 6
        assert st.mean_end_to_end == 10
        assert st.reordered == 0

    def test_empty_schedule(self):
        p = LogPParams(L=6, o=2, g=4, P=2)

        def prog(rank, P):
            yield Compute(1)
            return None

        res = run_programs(p, prog)
        st = message_stats(res.schedule)
        assert st.count == 0

    def test_reordering_counted_under_random_latency(self):
        p = LogPParams(L=30, o=0, g=1, P=2)

        def prog(rank, P):
            if rank == 0:
                for i in range(60):
                    yield Send(1, payload=i)
            else:
                for _ in range(60):
                    yield Recv()
            return None

        machine = LogPMachine(p, latency=UniformLatency(30, lo_frac=0.0, seed=7))
        res = machine.run(prog)
        assert message_stats(res.schedule).reordered > 0


class TestCommunicationRate:
    def test_rate_formula(self, ping_result):
        # 1 message * 16 bytes over (makespan 20 * P 2).
        assert communication_rate(ping_result.schedule, 16) == pytest.approx(
            16 / (20 * 2)
        )

    def test_rejects_nonpositive_size(self, ping_result):
        with pytest.raises(ValueError):
            communication_rate(ping_result.schedule, 0)


class TestReceiveHistogram:
    def test_histogram(self):
        p = LogPParams(L=6, o=2, g=4, P=4)

        def prog(rank, P):
            if rank != 0:
                yield Send(0)
            else:
                for _ in range(P - 1):
                    yield Recv()
            return None

        res = run_programs(p, prog)
        hist = receive_histogram(res.schedule)
        assert hist.tolist() == [3, 0, 0, 0]


class TestLatencyModels:
    def test_fixed(self):
        m = FixedLatency(6)
        assert m.draw(0, 1) == 6

    def test_uniform_within_bounds(self):
        m = UniformLatency(10, lo_frac=0.5, seed=0)
        draws = [m.draw(0, 1) for _ in range(200)]
        assert all(5 <= d <= 10 for d in draws)
        assert len(set(draws)) > 100

    def test_uniform_reset_reproducible(self):
        m = UniformLatency(10, seed=42)
        a = [m.draw(0, 1) for _ in range(10)]
        m.reset()
        b = [m.draw(0, 1) for _ in range(10)]
        assert a == b

    def test_jittered_bounded(self):
        m = JitteredLatency(10, scale_frac=0.3, seed=1)
        draws = [m.draw(0, 1) for _ in range(200)]
        assert all(0 <= d <= 10 for d in draws)
        assert np.mean(draws) > 5  # most arrive near the bound

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)
        with pytest.raises(ValueError):
            UniformLatency(10, lo_frac=1.5)
        with pytest.raises(ValueError):
            JitteredLatency(10, scale_frac=-0.1)
