"""Tests for repro.algorithms.fft: butterfly, layouts, remap schedules."""

import numpy as np
import pytest

from repro.core import LogPParams, fft_comm_time_hybrid, fft_compute_time
from repro.algorithms.fft import (
    bit_reverse_permutation,
    blocked_proc,
    blocked_rows,
    cyclic_proc,
    cyclic_rows,
    distributed_fft_program,
    fft_dif,
    fft_natural,
    hybrid_fft_inmemory,
    remap_message_count,
    remote_reference_profile,
    run_distributed_fft,
    simulate_remap,
)
from repro.sim import validate_schedule


class TestLocalFFT:
    @pytest.mark.parametrize("n", [2, 4, 16, 128, 1024])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft_natural(x), np.fft.fft(x))

    def test_output_bit_reversed(self, rng):
        # "The outputs are in bit-reverse order."
        x = rng.standard_normal(8) + 0j
        raw = fft_dif(x)
        assert np.allclose(raw[bit_reverse_permutation(8)], np.fft.fft(x))

    def test_real_input(self, rng):
        x = rng.standard_normal(64)
        assert np.allclose(fft_natural(x), np.fft.fft(x))

    def test_impulse(self):
        x = np.zeros(16)
        x[0] = 1.0
        assert np.allclose(fft_natural(x), np.ones(16))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_dif(np.ones(12))

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 64):
            rev = bit_reverse_permutation(n)
            assert np.array_equal(rev[rev], np.arange(n))


class TestLayouts:
    def test_cyclic_ownership(self):
        rows = cyclic_rows(2, 16, 4)
        assert rows.tolist() == [2, 6, 10, 14]
        assert all(cyclic_proc(r, 16, 4) == 2 for r in rows)

    def test_blocked_ownership(self):
        rows = blocked_rows(2, 16, 4)
        assert rows.tolist() == [8, 9, 10, 11]
        assert all(blocked_proc(r, 16, 4) == 2 for r in rows)

    def test_layouts_partition_rows(self):
        n, P = 64, 8
        for maker in (cyclic_rows, blocked_rows):
            seen = np.concatenate([maker(r, n, P) for r in range(P)])
            assert sorted(seen.tolist()) == list(range(n))


class TestRemoteReferenceProfile:
    """The Figure 5 exhibit: which butterfly columns touch remote data."""

    def test_cyclic_first_columns_local(self):
        # n=8, P=2: first log(n/P)=2 columns local, last log P=1 remote.
        prof = remote_reference_profile(8, 2, "cyclic")
        assert [c.remote_nodes for c in prof] == [0, 0, 8]

    def test_blocked_mirror_image(self):
        prof = remote_reference_profile(8, 2, "blocked")
        assert [c.remote_nodes for c in prof] == [8, 0, 0]

    def test_hybrid_all_local(self):
        prof = remote_reference_profile(64, 8, "hybrid")
        assert all(c.remote_nodes == 0 for c in prof)

    def test_hybrid_remap_column_bounds(self):
        with pytest.raises(ValueError):
            remote_reference_profile(64, 8, "hybrid", remap_col=2)
        # log P = 3 and log(n/P) = 3: only column 3 is legal for n=64.
        prof = remote_reference_profile(64, 8, "hybrid", remap_col=3)
        assert all(c.remote_nodes == 0 for c in prof)

    def test_larger_hybrid_any_middle_column(self):
        for rc in (3, 4, 5):
            prof = remote_reference_profile(256, 8, "hybrid", remap_col=rc)
            assert all(c.remote_nodes == 0 for c in prof)

    def test_cyclic_remote_count_total(self):
        # Total remote nodes = n log P, the paper's per-layout cost.
        n, P = 256, 16
        prof = remote_reference_profile(n, P, "cyclic")
        assert sum(c.remote_nodes for c in prof) == n * 4

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            remote_reference_profile(64, 8, "diagonal")


class TestHybridInMemory:
    @pytest.mark.parametrize("n,P", [(16, 4), (64, 8), (256, 16), (512, 8)])
    def test_matches_numpy(self, n, P, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(hybrid_fft_inmemory(x, P), np.fft.fft(x))

    def test_all_legal_remap_columns(self, rng):
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        for rc in (2, 3, 4, 5, 6):
            assert np.allclose(
                hybrid_fft_inmemory(x, 4, remap_col=rc), np.fft.fft(x)
            )

    def test_single_processor(self, rng):
        x = rng.standard_normal(32) + 0j
        assert np.allclose(hybrid_fft_inmemory(x, 1), np.fft.fft(x))

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            hybrid_fft_inmemory(np.ones(8), 4)


class TestDistributedOnSimulator:
    @pytest.mark.parametrize("stagger", [True, False])
    def test_numerically_correct(self, stagger, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        out, res = run_distributed_fft(p, x, stagger=stagger)
        assert np.allclose(out, np.fft.fft(x))
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_staggered_not_slower_than_naive(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=8)
        x = rng.standard_normal(256) + 0j
        _, res_s = run_distributed_fft(p, x, stagger=True)
        _, res_n = run_distributed_fft(p, x, stagger=False)
        assert res_s.makespan <= res_n.makespan

    def test_compute_charged_per_stage(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        x = rng.standard_normal(64) + 0j
        _, res = run_distributed_fft(p, x)
        # Total compute time across processors = n log n cycles.
        from repro.core import Activity

        total = sum(
            tl.time_in(Activity.COMPUTE)
            for tl in res.schedule.timelines.values()
        )
        assert total == pytest.approx(64 * 6)


class TestRemapSimulation:
    def test_message_count(self):
        assert remap_message_count(1024, 8) == 128 - 16

    def test_message_count_rejects_small_n(self):
        with pytest.raises(ValueError):
            remap_message_count(16, 8)

    def test_staggered_contention_free(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        r = simulate_remap(p, 1024, "staggered")
        assert r.total_stall == 0

    def test_staggered_bounded_by_paper_formula(self):
        # The paper's g*(n/P - n/P^2) + L is the send-side lower bound;
        # the simulated makespan lands within ~1.5x of it (imperfect
        # send/receive phase overlap — the same effect that left the
        # CM-5's measured remap at 2 MB/s against a predicted 3.2).
        p = LogPParams(L=6, o=2, g=4, P=8)
        r = simulate_remap(p, 4096, "staggered")
        predicted = fft_comm_time_hybrid(p, 4096)
        assert predicted <= r.makespan <= 1.5 * predicted

    def test_staggered_matches_prediction_when_overhead_limited(self):
        # With per-point work so that point + 2o >= g, the sender loop is
        # overhead-limited and the simulation tracks max(point+2o, g)
        # per point closely (the regime of the paper's Figure 8
        # prediction).
        p = LogPParams(L=6, o=2, g=4, P=8)
        r = simulate_remap(p, 4096, "staggered", point_cost=1.0)
        per_message = r.makespan / r.messages_per_proc
        assert per_message == pytest.approx(max(1 + 2 * p.o, p.g), rel=0.03)

    def test_naive_slower_with_stalls(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        r_s = simulate_remap(p, 1024, "staggered")
        r_n = simulate_remap(p, 1024, "naive")
        assert r_n.makespan > 1.3 * r_s.makespan
        assert r_n.total_stall > 0

    def test_barrier_variant_runs(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        r = simulate_remap(p, 256, "staggered", barrier_every=16)
        assert r.makespan > 0

    def test_double_net_halves_g(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        r = simulate_remap(p, 256, "staggered", double_net=True)
        assert r.params.g == 2

    def test_rate_computation(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        r = simulate_remap(p, 256, "staggered")
        rate = r.rate(16, 1.0)
        assert rate == pytest.approx(
            r.messages_per_proc * 16 / r.makespan
        )

    def test_bad_schedule_name_rejected(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        with pytest.raises(ValueError):
            simulate_remap(p, 256, "random")

    def test_gap_bound_when_g_dominates(self):
        # With g >> o + point cost, the remap is bandwidth-bound: time
        # per point approaches g.
        p = LogPParams(L=6, o=0.5, g=10, P=4)
        r = simulate_remap(p, 1024, "staggered")
        per_message = r.makespan / r.messages_per_proc
        assert per_message == pytest.approx(10, rel=0.1)
