"""Tests for repro.algorithms.stencil (Section 6.4's grid argument)."""

import numpy as np
import pytest

from repro.core import LogGPParams, LogPParams
from repro.algorithms.stencil import (
    communication_share,
    reference_stencil1d,
    reference_stencil2d,
    run_stencil1d,
    run_stencil2d,
    stencil1d_iteration_time,
    stencil2d_iteration_time,
)
from repro.sim import validate_schedule


class TestStencil1D:
    @pytest.mark.parametrize("P,n,it", [(2, 16, 1), (4, 64, 4), (8, 64, 6)])
    def test_matches_serial(self, P, n, it, rng):
        p = LogPParams(L=6, o=2, g=4, P=P)
        values = rng.standard_normal(n)
        out, res = run_stencil1d(p, values, iterations=it)
        assert np.allclose(out, reference_stencil1d(values, it))
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_single_processor(self, rng):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        values = rng.standard_normal(12)
        out, _ = run_stencil1d(p1, values, iterations=3)
        assert np.allclose(out, reference_stencil1d(values, 3))

    def test_indivisible_length_rejected(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        with pytest.raises(ValueError):
            run_stencil1d(p, rng.standard_normal(13), 1)

    def test_iteration_time_scales_with_cells(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        t1 = stencil1d_iteration_time(p, 100)
        t2 = stencil1d_iteration_time(p, 200)
        assert t2 - t1 == 100  # pure compute growth; halo unchanged


class TestStencil2D:
    @pytest.mark.parametrize("P,n", [(4, 8), (4, 16), (9, 12)])
    def test_matches_serial_bulk(self, P, n, rng):
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=P)
        grid = rng.standard_normal((n, n))
        out, res = run_stencil2d(gp, grid, iterations=3)
        assert np.allclose(out, reference_stencil2d(grid, 3))
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_matches_serial_element_streams(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        grid = rng.standard_normal((8, 8))
        out, _ = run_stencil2d(p, grid, iterations=2)
        assert np.allclose(out, reference_stencil2d(grid, 2))

    def test_bulk_edges_beat_element_streams(self, rng):
        grid = rng.standard_normal((16, 16))
        plain = run_stencil2d(
            LogPParams(L=6, o=2, g=4, P=4), grid, 2
        )[1].makespan
        bulk = run_stencil2d(
            LogGPParams(L=6, o=2, g=4, G=0.25, P=4), grid, 2
        )[1].makespan
        assert bulk < 0.6 * plain

    def test_single_processor(self, rng):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        grid = rng.standard_normal((6, 6))
        out, _ = run_stencil2d(p1, grid, 2)
        assert np.allclose(out, reference_stencil2d(grid, 2))

    def test_non_square_P_rejected(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=8)
        with pytest.raises(ValueError):
            run_stencil2d(p, rng.standard_normal((8, 8)), 1)

    def test_indivisible_grid_rejected(self, rng):
        p = LogPParams(L=6, o=2, g=4, P=4)
        with pytest.raises(ValueError):
            run_stencil2d(p, rng.standard_normal((9, 9)), 1)


class TestSurfaceToVolume:
    def test_share_shrinks_with_block_side(self):
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=4)
        shares = [
            communication_share(gp, b, G=gp.G) for b in (4, 16, 64, 256)
        ]
        assert all(a > b for a, b in zip(shares, shares[1:]))
        assert shares[-1] < 0.01  # "the cost of communication becomes trivial"

    def test_share_roughly_inverse_block_side(self):
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=4)
        s16 = communication_share(gp, 16, G=gp.G)
        s64 = communication_share(gp, 64, G=gp.G)
        # Surface/volume ~ 1/b; doubling b twice cuts the share ~4-16x
        # (super-linear because fixed o/L amortize too).
        assert 3 < s16 / s64 < 30

    def test_iteration_time_bulk_below_streams(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        assert stencil2d_iteration_time(p, 32, G=0.25) < (
            stencil2d_iteration_time(p, 32)
        )

    def test_invalid_block_rejected(self):
        p = LogPParams(L=6, o=2, g=4, P=4)
        with pytest.raises(ValueError):
            stencil2d_iteration_time(p, 0)
