"""Tests for repro.core.cost: primitive communication cost formulas."""

import pytest

from repro.core import (
    LogPParams,
    all_to_all_remap,
    all_to_all_remap_exact,
    barrier_cost,
    capacity_stall_rate,
    h_relation,
    h_relation_exact,
    long_message,
    pipelined_stream,
    pipelined_stream_exact,
    point_to_point,
    prefetch_issue_cost,
    protocol_send_recv,
    remote_read,
)


@pytest.fixture
def p():
    return LogPParams(L=6, o=2, g=4, P=8)


class TestPrimitives:
    def test_point_to_point_L_plus_2o(self, p):
        assert point_to_point(p) == 10

    def test_remote_read_2L_plus_4o(self, p):
        assert remote_read(p) == 20

    def test_prefetch_costs_2o_of_processing(self, p):
        assert prefetch_issue_cost(p) == 4


class TestStreams:
    def test_single_message_stream_exact(self, p):
        # k=1 degenerates to o + L + o.
        assert pipelined_stream_exact(p, 1) == 10

    def test_stream_paper_formula(self, p):
        assert pipelined_stream(p, 10) == 4 * 10 + 6

    def test_stream_exact_gap_dominated(self, p):
        # o + (k-1)max(g,o) + L + o = 2 + 9*4 + 6 + 2
        assert pipelined_stream_exact(p, 10) == 46

    def test_stream_exact_overhead_dominated(self):
        p = LogPParams(L=6, o=5, g=2, P=2)
        assert pipelined_stream_exact(p, 3) == 5 + 2 * 5 + 6 + 5

    def test_stream_rejects_zero(self, p):
        with pytest.raises(ValueError):
            pipelined_stream(p, 0)
        with pytest.raises(ValueError):
            pipelined_stream_exact(p, 0)

    def test_long_message_equals_word_stream(self, p):
        assert long_message(p, 7) == pipelined_stream_exact(p, 7)


class TestHRelation:
    def test_paper_formula(self, p):
        assert h_relation(p, 5) == 5 * 4 + 6

    def test_exact_form(self, p):
        assert h_relation_exact(p, 5) == 2 + 4 * 4 + 6 + 2

    def test_exact_at_least_point_to_point(self, grid_params):
        assert h_relation_exact(grid_params, 1) >= point_to_point(grid_params)


class TestRemap:
    def test_paper_formula_fft_remap(self, p):
        # g*(n/P - n/P^2) + L with n=1024, P=8: 4*(128-16)+6
        assert all_to_all_remap(p, 1024) == 4 * 112 + 6

    def test_exact_close_to_paper(self, p):
        exact = all_to_all_remap_exact(p, 1024)
        paper = all_to_all_remap(p, 1024)
        # Differ by at most one gap plus the two overheads.
        assert abs(exact - paper) <= p.g + 2 * p.o

    def test_single_processor_remap_nothing_to_send(self):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        assert all_to_all_remap_exact(p1, 16) == 0.0


class TestProtocol:
    def test_cm5_synchronous_send_recv(self, p):
        # 3(L+2o) + ng from the Table 1 discussion.
        assert protocol_send_recv(p, 10) == 3 * 10 + 10 * 4

    def test_protocol_dominates_active_message(self, grid_params):
        assert protocol_send_recv(grid_params, 1) >= point_to_point(grid_params)


class TestBarrier:
    def test_single_processor_free(self):
        assert barrier_cost(LogPParams(L=6, o=2, g=4, P=1)) == 0

    def test_grows_with_log_p(self):
        c8 = barrier_cost(LogPParams(L=6, o=2, g=4, P=8))
        c64 = barrier_cost(LogPParams(L=6, o=2, g=4, P=64))
        assert c64 == 2 * c8

    def test_positive_for_multiprocessor(self, grid_params):
        if grid_params.P > 1:
            assert barrier_cost(grid_params) > 0


class TestStallRate:
    def test_under_capacity_no_stall(self, p):
        assert capacity_stall_rate(p, targets=1, rate=0.1) == 0.0

    def test_over_capacity_stalls(self, p):
        # 8 senders at 1 msg/cycle vs drain rate 1/g = 0.25.
        r = capacity_stall_rate(p, targets=8, rate=1.0)
        assert r == pytest.approx(1 - 0.25 / 8)

    def test_rejects_bad_args(self, p):
        with pytest.raises(ValueError):
            capacity_stall_rate(p, targets=0, rate=1.0)
        with pytest.raises(ValueError):
            capacity_stall_rate(p, targets=1, rate=0.0)
