"""Tests for repro.sim.machine: LogP semantics on the simulator.

Each test encodes one clause of the model as observable behaviour:
overhead engagement, send/receive gaps, the latency bound, capacity
stalling, polling, barriers, deadlock detection.
"""

import pytest

from repro.core import Activity, LogPParams
from repro.sim import (
    Barrier,
    Compute,
    FixedLatency,
    LogPMachine,
    Now,
    Poll,
    Recv,
    Send,
    SimulationError,
    Sleep,
    UniformLatency,
    run_programs,
    validate_schedule,
)


def P2(L=6, o=2, g=4):
    return LogPParams(L=L, o=o, g=g, P=2)


class TestPointToPoint:
    def test_message_takes_L_plus_2o(self, grid_params):
        def prog(rank, P):
            if rank == 0:
                yield Send(1 % P, payload=123)
            elif rank == 1:
                m = yield Recv()
                t = yield Now()
                return (m.payload, t)
            return None

        if grid_params.P < 2:
            pytest.skip("needs 2 processors")
        res = run_programs(grid_params, prog)
        payload, t = res.value(1)
        assert payload == 123
        assert t == pytest.approx(grid_params.point_to_point())

    def test_payload_and_metadata(self):
        def prog(rank, P):
            if rank == 0:
                yield Send(1, payload={"a": [1, 2]}, tag="x")
            else:
                m = yield Recv(tag="x")
                return (m.src, m.payload, m.tag, m.sent_at, m.in_flight)
            return None

        res = run_programs(P2(), prog)
        src, payload, tag, sent_at, flight = res.value(1)
        assert src == 0 and payload == {"a": [1, 2]} and tag == "x"
        assert sent_at == 0 and flight == 10

    def test_send_to_self_rejected(self):
        def prog(rank, P):
            if rank == 0:
                yield Send(0)
            return None
            yield

        with pytest.raises(SimulationError, match="itself"):
            run_programs(P2(), prog)

    def test_send_out_of_range_rejected(self):
        def prog(rank, P):
            if rank == 0:
                yield Send(5)
            return None
            yield

        with pytest.raises(SimulationError, match="invalid destination"):
            run_programs(P2(), prog)


class TestGaps:
    def test_consecutive_sends_spaced_by_max_g_o(self):
        p = P2(L=6, o=2, g=4)

        def prog(rank, P):
            if rank == 0:
                for _ in range(4):
                    yield Send(1)
            else:
                for _ in range(4):
                    yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        sends = [
            iv.start
            for iv in res.schedule.timeline(0).intervals
            if iv.kind is Activity.SEND
        ]
        assert sends == [0, 4, 8, 12]

    def test_overhead_dominates_gap_when_larger(self):
        p = P2(L=6, o=5, g=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                yield Send(1)
            else:
                yield Recv()
                yield Recv()
            return None

        res = run_programs(p, prog)
        sends = [
            iv.start
            for iv in res.schedule.timeline(0).intervals
            if iv.kind is Activity.SEND
        ]
        assert sends[1] - sends[0] == 5

    def test_receive_gap_throttles_drain(self):
        # Two messages arrive nearly together; receptions must start >= g apart.
        p = LogPParams(L=6, o=1, g=5, P=3)

        def prog(rank, P):
            if rank in (0, 1):
                yield Send(2)
            else:
                yield Recv()
                yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        recvs = sorted(
            iv.start
            for iv in res.schedule.timeline(2).intervals
            if iv.kind is Activity.RECV
        )
        assert recvs[1] - recvs[0] >= 5

    def test_compute_blocks_reception(self):
        # While computing, an arrived message waits.
        p = P2()

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                yield Compute(50)
                m = yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        # Message arrived at 8 but reception starts at 50.
        assert res.value(1) == 52


class TestLatency:
    def test_fixed_latency_exact(self):
        res = run_programs(P2(), _ping_prog())
        rep = validate_schedule(res.schedule, exact_latency=True)
        assert rep.ok

    def test_random_latency_bounded_and_reordered(self):
        p = LogPParams(L=20, o=0, g=1, P=2)

        def prog(rank, P):
            if rank == 0:
                for i in range(50):
                    yield Send(1, payload=i)
            else:
                got = []
                for _ in range(50):
                    m = yield Recv()
                    got.append(m.payload)
                return got
            return None

        machine = LogPMachine(p, latency=UniformLatency(20, lo_frac=0.2, seed=3))
        res = machine.run(prog)
        rep = validate_schedule(res.schedule)
        assert rep.ok  # bound holds even though latency is random
        assert res.value(1) != sorted(res.value(1))  # reordering observed
        assert sorted(res.value(1)) == list(range(50))

    def test_latency_model_exceeding_L_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            LogPMachine(P2(L=6), latency=FixedLatency(10))


class TestCapacity:
    def test_hotspot_sender_stalls(self):
        # Many senders flood one destination: capacity ceil(L/g)=2 per
        # destination, so senders must stall and total time stretches.
        p = LogPParams(L=8, o=1, g=4, P=6)

        def prog(rank, P):
            if rank == 0:
                for _ in range(P - 1):
                    yield Recv()
            else:
                for _ in range(1):
                    yield Send(0)
            return None

        res = run_programs(p, prog)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_capacity_stall_time_recorded(self):
        p = LogPParams(L=4, o=0, g=4, P=8)  # capacity 1

        def prog(rank, P):
            if rank == 0:
                for _ in range(2 * (P - 1)):
                    yield Recv()
            else:
                yield Send(0)
                yield Send(0)
            return None

        res = run_programs(p, prog)
        assert res.total_stall_time > 0

    def test_capacity_disabled_removes_stalls(self):
        p = LogPParams(L=4, o=0, g=4, P=8)

        def prog(rank, P):
            if rank == 0:
                for _ in range(2 * (P - 1)):
                    yield Recv()
            else:
                yield Send(0)
                yield Send(0)
            return None

        machine = LogPMachine(p, enforce_capacity=False)
        res = machine.run(prog)
        assert res.total_stall_time == 0

    def test_self_paced_sender_never_self_stalls(self):
        # A sender pacing itself at g keeps at most L/g <= ceil(L/g) of
        # its own messages in the network, so the from-side capacity
        # constraint never bites (the reading that makes Figure 3's
        # schedule feasible).  L=12, g=3: capacity 4, exactly L/g.
        p = LogPParams(L=12, o=3, g=3, P=6)

        def prog(rank, P):
            if rank == 0:
                for d in range(1, P):
                    yield Send(d)
            else:
                yield Recv()
            return None

        res = run_programs(p, prog)
        assert res.total_stall_time == 0
        assert validate_schedule(res.schedule, exact_latency=True).ok
        sends = [
            iv.start
            for iv in res.schedule.timeline(0).intervals
            if iv.kind is Activity.SEND
        ]
        assert sends == [0, 3, 6, 9, 12]

    def test_destination_backpressure_paces_flood(self):
        # A flooded destination drains one message per g; with capacity 1
        # each sender's injection must wait for the previous reception.
        p = LogPParams(L=4, o=1, g=4, P=4)  # capacity 1

        def prog(rank, P):
            if rank == 0:
                for _ in range(3 * (P - 1)):
                    yield Recv()
            else:
                for _ in range(3):
                    yield Send(0)
            return None

        res = run_programs(p, prog)
        assert res.total_stall_time > 0
        recvs = sorted(
            iv.start
            for iv in res.schedule.timeline(0).intervals
            if iv.kind is Activity.RECV
        )
        gaps = [b - a for a, b in zip(recvs, recvs[1:])]
        assert all(gap >= 4 for gap in gaps)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_explicit_capacity_override(self):
        p = LogPParams(L=8, o=1, g=4, P=3)
        machine = LogPMachine(p, capacity=1)
        assert machine.capacity == 1
        with pytest.raises(ValueError):
            LogPMachine(p, capacity=0)


class TestComputeAndSleep:
    def test_compute_advances_time(self):
        def prog(rank, P):
            yield Compute(17.5)
            t = yield Now()
            return t

        res = run_programs(LogPParams(L=1, o=1, g=1, P=1), prog)
        assert res.value(0) == 17.5

    def test_zero_compute_is_instant(self):
        def prog(rank, P):
            yield Compute(0)
            t = yield Now()
            return t

        res = run_programs(LogPParams(L=1, o=1, g=1, P=1), prog)
        assert res.value(0) == 0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_sleep_allows_reception(self):
        p = P2()

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                yield Sleep(50)
                m = yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(p, prog)
        # Message received during sleep (arrives at 8, recv ends 10) so
        # Recv returns immediately at 50.
        assert res.value(1) == 50

    def test_compute_jitter_applied(self):
        def jitter(rank, cycles):
            return cycles * 2

        def prog(rank, P):
            yield Compute(10)
            t = yield Now()
            return t

        machine = LogPMachine(LogPParams(L=1, o=1, g=1, P=1), compute_jitter=jitter)
        assert machine.run(prog).value(0) == 20

    def test_negative_jitter_result_rejected(self):
        machine = LogPMachine(
            LogPParams(L=1, o=1, g=1, P=1), compute_jitter=lambda r, c: -1
        )

        def prog(rank, P):
            yield Compute(10)
            return None

        with pytest.raises(SimulationError):
            machine.run(prog)


class TestPoll:
    def test_poll_returns_zero_when_nothing_arrived(self):
        def prog(rank, P):
            n = yield Poll()
            return n

        res = run_programs(LogPParams(L=1, o=1, g=1, P=1), prog)
        assert res.value(0) == 0

    def test_poll_services_arrived_message(self):
        p = P2()

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                return None
            yield Compute(20)  # message arrives meanwhile, undrained
            n = yield Poll()
            m = yield Recv()  # already in mailbox
            t = yield Now()
            return (n, m.payload is None, t)

        res = run_programs(p, prog)
        n, _, t = res.value(1)
        assert n == 1
        assert t == 22  # poll paid o=2 right after the compute

    def test_poll_does_not_wait_for_gap(self):
        p = LogPParams(L=2, o=1, g=10, P=3)

        def prog(rank, P):
            if rank in (0, 1):
                yield Send(2)
                return None
            yield Compute(30)  # both messages arrive during this
            n1 = yield Poll()
            n2 = yield Poll()  # gap (10) not yet elapsed: services nothing
            m = yield Recv()
            m2 = yield Recv()
            return (n1, n2)

        res = run_programs(p, prog)
        n1, n2 = res.value(2)
        assert n1 == 1
        assert n2 == 0


class TestBarrier:
    def test_barrier_synchronizes(self):
        p = LogPParams(L=1, o=1, g=1, P=4)

        def prog(rank, P):
            yield Compute(rank * 7)
            yield Barrier()
            t = yield Now()
            return t

        res = run_programs(p, prog)
        assert len(set(res.values())) == 1
        assert res.value(0) == 21

    def test_barrier_cost_added(self):
        p = LogPParams(L=1, o=1, g=1, P=2)

        def prog(rank, P):
            yield Barrier()
            t = yield Now()
            return t

        machine = LogPMachine(p, hw_barrier_cost=5)
        res = machine.run(prog)
        assert set(res.values()) == {5}

    def test_repeated_barriers(self):
        p = LogPParams(L=1, o=1, g=1, P=3)

        def prog(rank, P):
            for i in range(3):
                yield Compute(rank + 1)
                yield Barrier()
            t = yield Now()
            return t

        res = run_programs(p, prog)
        assert set(res.values()) == {9.0}

    def test_negative_barrier_cost_rejected(self):
        with pytest.raises(ValueError):
            LogPMachine(P2(), hw_barrier_cost=-1)


class TestDeadlockAndErrors:
    def test_recv_without_send_deadlocks(self):
        def prog(rank, P):
            if rank == 1:
                yield Recv()
            return None
            yield

        with pytest.raises(SimulationError, match="deadlock"):
            run_programs(P2(), prog)

    def test_mismatched_barrier_deadlocks(self):
        def prog(rank, P):
            if rank == 0:
                yield Barrier()
            return None
            yield

        with pytest.raises(SimulationError, match="deadlock"):
            run_programs(P2(), prog)

    def test_unknown_action_rejected(self):
        def prog(rank, P):
            yield "garbage"
            return None

        with pytest.raises(SimulationError, match="unknown action"):
            run_programs(LogPParams(L=1, o=1, g=1, P=1), prog)

    def test_wrong_program_count_rejected(self):
        def one():
            return None
            yield

        with pytest.raises(ValueError, match="expected 2"):
            run_programs(P2(), [one()])

    def test_program_exceptions_propagate(self):
        def prog(rank, P):
            yield Compute(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_programs(LogPParams(L=1, o=1, g=1, P=1), prog)


class TestResults:
    def test_return_values_collected(self):
        def prog(rank, P):
            yield Compute(1)
            return rank * rank

        res = run_programs(LogPParams(L=1, o=1, g=1, P=4), prog)
        assert res.values() == [0, 1, 4, 9]

    def test_counters(self):
        def prog(rank, P):
            if rank == 0:
                yield Send(1)
                yield Send(1)
            else:
                yield Recv()
                yield Recv()
            return None

        res = run_programs(P2(), prog)
        assert res.results[0].sends == 2
        assert res.results[1].receives == 2
        assert res.total_messages == 2

    def test_trace_disabled_keeps_summary(self):
        machine = LogPMachine(P2(), trace=False)
        res = machine.run(_ping_prog())
        assert res.schedule is None
        assert res.makespan == 10

    def test_leftover_mailbox_messages_allowed(self):
        # A processor may finish without consuming everything sent to it;
        # the message is still drained (reception paid).
        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            return None
            yield

        res = run_programs(P2(), prog)
        assert res.results[1].receives == 1


def _ping_prog():
    def prog(rank, P):
        if rank == 0:
            yield Send(1, payload="ping")
        else:
            yield Recv()
        return None

    return prog
