"""Documentation consistency: DESIGN.md's experiment index, EXPERIMENTS.md
and the benchmark suite must agree with the code that exists."""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent
DESIGN = (ROOT / "DESIGN.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()
README = (ROOT / "README.md").read_text()
BENCH_DIR = ROOT / "benchmarks"


class TestDesignIndex:
    def test_every_indexed_bench_file_exists(self):
        for name in re.findall(r"benchmarks/(test_\w+\.py)", DESIGN):
            assert (BENCH_DIR / name).exists(), f"DESIGN.md references missing {name}"

    def test_every_module_in_inventory_exists(self):
        listed = set(re.findall(r"- `(\w+)\.py` —", DESIGN))
        on_disk = {
            p.stem
            for p in (ROOT / "src" / "repro").rglob("*.py")
        }
        missing = listed - on_disk
        assert not missing, f"DESIGN.md lists nonexistent modules: {missing}"

    def test_named_subpackages_exist(self):
        for sub in ("core", "sim", "algorithms", "topology", "models",
                    "machines", "memory", "viz"):
            assert (ROOT / "src" / "repro" / sub / "__init__.py").exists()

    def test_experiment_ids_all_have_bench_rows(self):
        for exp_id in ("FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7",
                       "FIG8", "TAB1", "SEC51", "SEC53", "SEC33",
                       "SEC421", "SEC422", "SEC423", "SEC6", "ABL"):
            assert exp_id in DESIGN, f"experiment {exp_id} missing from DESIGN.md"


class TestExperimentsDoc:
    def test_every_referenced_bench_exists(self):
        for name in set(re.findall(r"`(test_\w+\.py)`", EXPERIMENTS)):
            assert (BENCH_DIR / name).exists(), f"EXPERIMENTS.md references missing {name}"

    def test_every_exhibit_section_present(self):
        for section in ("## FIG2", "## FIG3", "## FIG4", "## FIG5",
                        "## FIG6", "## FIG7", "## FIG8", "## TAB1",
                        "## SEC51", "## SEC53", "## SEC6", "## ABL",
                        "## SEC64", "## SEC7", "## EXT"):
            assert section in EXPERIMENTS, f"{section} missing"

    def test_headline_numbers_match_code(self):
        """The numbers EXPERIMENTS.md quotes for Figures 3/4 must be what
        the library computes."""
        from repro.core import LogPParams
        from repro.algorithms.broadcast import optimal_broadcast_time
        from repro.algorithms.summation import summation_capacity

        assert optimal_broadcast_time(LogPParams(L=6, o=2, g=4, P=8)) == 24
        assert summation_capacity(LogPParams(L=5, o=2, g=4, P=8), 28) == 79
        assert "t = 24" in EXPERIMENTS or "24" in EXPERIMENTS
        assert "79" in EXPERIMENTS


class TestBenchmarkSuiteShape:
    def test_every_bench_module_saves_an_exhibit(self):
        for path in BENCH_DIR.glob("test_*.py"):
            text = path.read_text()
            if path.name == "test_perf_simulator.py":
                continue  # infrastructure timing only
            assert "save_exhibit" in text, f"{path.name} saves no exhibit"

    def test_every_bench_module_has_paper_docstring(self):
        for path in BENCH_DIR.glob("test_*.py"):
            text = path.read_text()
            assert text.startswith('"""'), f"{path.name} lacks a docstring"

    def test_readme_mentions_all_top_level_docs(self):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/MODEL.md"):
            assert doc in README
