"""Every registry family must rebuild bit-identically across processes.

The live backend ships programs to rank processes as pickles (or
rebuilds them by registry name on the worker side), and the serve
layer's pool shards do the same — so a family whose pickle or rebuild
drifts from the parent's build would silently produce different
physics on different backends.  These tests pin the guarantee with a
*spawn*-context child (the strictest start method: nothing inherited,
everything crosses as bytes): for every registered family, a child
process rebuilds the program and runs it on the reference machine, and
the makespan and per-rank values must equal the parent's bit for bit.
Failures name the family.
"""

import multiprocessing
import pickle

import pytest

from repro.core import LogPParams
from repro.serve.registry import build, families
from repro.sim.machine import run_programs

_PARAMS = LogPParams(L=6.0, o=2.0, g=4.0, P=4)
_ARGS = {"k": 6}
_SEED = 11


def _reference(name: str):
    res = run_programs(_PARAMS, build(name, dict(_ARGS), _SEED), trace=False)
    return res.makespan, res.values()


def _child_rebuild(name, conn) -> None:
    """Spawn-side: rebuild the family *by name* and run it."""
    try:
        makespan, values = _reference(name)
        conn.send(("ok", makespan, values))
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}", None))
    finally:
        conn.close()


def _child_unpickle(blob, conn) -> None:
    """Spawn-side: unpickle the parent's *program object* and run it."""
    try:
        programs = pickle.loads(blob)
        res = run_programs(_PARAMS, programs, trace=False)
        conn.send(("ok", res.makespan, res.values()))
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}", None))
    finally:
        conn.close()


def _run_in_child(target, payload):
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=target, args=(payload, child_conn))
    proc.start()
    child_conn.close()
    try:
        reply = parent_conn.recv()
    finally:
        proc.join(timeout=30)
        parent_conn.close()
    return reply


@pytest.mark.parametrize("name", sorted(families()))
def test_family_rebuilds_bit_identical_in_child_process(name):
    want_makespan, want_values = _reference(name)
    status, makespan, values = _run_in_child(_child_rebuild, name)
    assert status == "ok", (
        f"family {name!r} failed to rebuild in a spawned child: {makespan}"
    )
    assert makespan == want_makespan and values == want_values, (
        f"family {name!r} is not deterministic across the process "
        f"boundary: parent (makespan={want_makespan}, values={want_values}) "
        f"vs child (makespan={makespan}, values={values})"
    )


@pytest.mark.parametrize("name", sorted(families()))
def test_family_program_object_pickles_and_reruns_identically(name):
    programs = build(name, dict(_ARGS), _SEED)
    try:
        blob = pickle.dumps(programs, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - the assertion message matters
        pytest.fail(
            f"family {name!r} built an unpicklable program object "
            f"({type(exc).__name__}: {exc}) — the live backend and pool "
            "shards cannot ship it across the process boundary"
        )
    want_makespan, want_values = _reference(name)
    status, makespan, values = _run_in_child(_child_unpickle, blob)
    assert status == "ok", (
        f"family {name!r}'s pickled program failed in a spawned child: "
        f"{makespan}"
    )
    assert makespan == want_makespan and values == want_values, (
        f"family {name!r}'s pickle does not rebuild bit-identically: "
        f"parent (makespan={want_makespan}, values={want_values}) "
        f"vs child (makespan={makespan}, values={values})"
    )
