"""Tests for the Section 3.1 pipelined (k-item) broadcast."""

import pytest

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    best_pipelined_tree,
    binomial_tree,
    linear_tree,
    optimal_broadcast_tree,
    pipelined_broadcast_program,
    pipelined_tree_time,
)
from repro.sim import run_programs, validate_schedule


@pytest.fixture
def p8():
    return LogPParams(L=6, o=2, g=4, P=8)


TREES = {
    "chain": lambda p: linear_tree(p.P),
    "binomial": lambda p: binomial_tree(p.P),
    "optimal-single": lambda p: optimal_broadcast_tree(p).children,
}


class TestPrediction:
    @pytest.mark.parametrize("name", list(TREES))
    @pytest.mark.parametrize("k", [1, 3, 10, 40])
    def test_prediction_matches_simulation(self, p8, name, k):
        children = TREES[name](p8)
        items = list(range(k))
        res = run_programs(p8, pipelined_broadcast_program(children, items))
        assert res.makespan == pytest.approx(
            pipelined_tree_time(p8, children, k)
        )
        assert all(v == items for v in res.values())
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_single_item_reduces_to_plain_broadcast(self, p8):
        children = optimal_broadcast_tree(p8).children
        from repro.algorithms.broadcast import tree_delivery_times

        assert pipelined_tree_time(p8, children, 1) == max(
            tree_delivery_times(p8, children)
        )

    def test_rejects_zero_items(self, p8):
        with pytest.raises(ValueError):
            pipelined_tree_time(p8, linear_tree(8), 0)

    @pytest.mark.parametrize("name", list(TREES))
    def test_grid_params_agreement(self, grid_params, name):
        if grid_params.P < 2:
            pytest.skip("needs 2 processors")
        p = grid_params
        children = TREES[name](p)
        items = list(range(6))
        res = run_programs(p, pipelined_broadcast_program(children, items))
        pred = pipelined_tree_time(p, children, 6)
        if max(p.g, p.o) >= 2 * p.o:
            assert res.makespan == pytest.approx(pred)
        else:
            # Bursty regime (g < 2o): prediction is a lower bound with
            # at most ~(2o - g) of pipeline skew per hop.
            skew = (2 * p.o - p.g) * p.P
            assert pred - 1e-9 <= res.makespan <= pred + skew


class TestStructureCrossover:
    def test_single_item_wants_optimal_tree(self, p8):
        name, _ = best_pipelined_tree(p8, 1)
        assert name == "optimal-single"

    def test_long_stream_wants_chain(self, p8):
        name, _ = best_pipelined_tree(p8, 100)
        assert name == "chain"

    def test_chain_throughput_is_per_item_bound(self, p8):
        # Chain steady state: one item per max(g, 2o) at each relay.
        t10 = pipelined_tree_time(p8, linear_tree(8), 10)
        t11 = pipelined_tree_time(p8, linear_tree(8), 11)
        assert t11 - t10 == max(p8.g, 2 * p8.o)

    def test_crossover_monotone(self, p8):
        # Once the chain wins, it keeps winning for larger k.
        winners = [best_pipelined_tree(p8, k)[0] for k in (1, 2, 5, 20, 80)]
        if "chain" in winners:
            first = winners.index("chain")
            assert all(w == "chain" for w in winners[first:])
