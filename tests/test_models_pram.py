"""Tests for repro.models.pram: the PRAM simulator and its loopholes."""

import pytest

from repro.models import (
    PRAM,
    ConcurrencyViolation,
    PramStep,
    pram_broadcast_program,
    pram_broadcast_steps,
    pram_sum_program,
    pram_sum_steps,
)


class TestMachine:
    def test_single_step_write(self):
        def prog(pid, P):
            def run():
                yield PramStep(write=(pid, pid * 10))
                return None

            return run()

        pram = PRAM(4, 4)
        res = pram.run(prog)
        assert res.memory == [0, 10, 20, 30]
        assert res.steps == 1

    def test_read_then_write_same_step(self):
        def prog(pid, P):
            def run():
                yield PramStep(reads=[pid], write=lambda v: (pid, v[0] + 1))
                return None

            return run()

        pram = PRAM(3, 3, initial=[5, 6, 7])
        res = pram.run(prog)
        assert res.memory == [6, 7, 8]

    def test_reads_see_values_before_writes(self):
        # Swap via simultaneous read/write: the PRAM's synchronous
        # semantics make this atomic.
        def prog(pid, P):
            def run():
                other = 1 - pid
                yield PramStep(reads=[other], write=lambda v: (pid, v[0]))
                return None

            return run()

        pram = PRAM(2, 2, initial=[10, 20])
        res = pram.run(prog)
        assert res.memory == [20, 10]

    def test_programs_run_in_lockstep(self):
        log = []

        def prog(pid, P):
            def run():
                for step in range(3):
                    log.append((step, pid))
                    yield PramStep()
                return None

            return run()

        PRAM(2, 1).run(prog)
        assert log == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_return_values(self):
        def prog(pid, P):
            def run():
                yield PramStep()
                return pid * 2

            return run()

        res = PRAM(3, 1).run(prog)
        assert res.returns == [0, 2, 4]

    def test_address_bounds_checked(self):
        def prog(pid, P):
            def run():
                yield PramStep(reads=[99])
                return None

            return run()

        with pytest.raises(IndexError):
            PRAM(1, 4).run(prog)

    def test_max_steps_guard(self):
        def prog(pid, P):
            def run():
                while True:
                    yield PramStep()

            return run()

        with pytest.raises(RuntimeError, match="exceeded"):
            PRAM(1, 1).run(prog, max_steps=10)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PRAM(1, 1, mode="CRCW-chaotic")


class TestConcurrencyRules:
    @staticmethod
    def concurrent_read(pid, P):
        def run():
            yield PramStep(reads=[0])
            return None

        return run()

    @staticmethod
    def concurrent_write(pid, P):
        def run():
            yield PramStep(write=(0, pid))
            return None

        return run()

    @staticmethod
    def concurrent_common_write(pid, P):
        def run():
            yield PramStep(write=(0, 7))
            return None

        return run()

    def test_erew_rejects_concurrent_read(self):
        with pytest.raises(ConcurrencyViolation):
            PRAM(2, 2, mode="EREW").run(self.concurrent_read)

    def test_crew_allows_concurrent_read(self):
        PRAM(2, 2, mode="CREW").run(self.concurrent_read)

    def test_crew_rejects_concurrent_write(self):
        with pytest.raises(ConcurrencyViolation):
            PRAM(2, 2, mode="CREW").run(self.concurrent_write)

    def test_crcw_arbitrary_resolves_to_lowest_pid(self):
        res = PRAM(4, 2, mode="CRCW-arbitrary").run(self.concurrent_write)
        assert res.memory[0] == 0

    def test_crcw_common_requires_equal_values(self):
        PRAM(4, 2, mode="CRCW-common").run(self.concurrent_common_write)
        with pytest.raises(ConcurrencyViolation):
            PRAM(4, 2, mode="CRCW-common").run(self.concurrent_write)

    def test_crcw_priority(self):
        res = PRAM(4, 2, mode="CRCW-priority").run(self.concurrent_write)
        assert res.memory[0] == 0


class TestCanonicalAlgorithms:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_sum_correct_and_log_steps(self, n):
        pram = PRAM(n // 2, n, mode="EREW", initial=list(range(n)))
        res = pram.run(pram_sum_program(n))
        assert res.memory[0] == n * (n - 1) // 2
        assert res.steps == pram_sum_steps(n)

    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_broadcast_correct_and_log_steps(self, n):
        pram = PRAM(n, n, mode="EREW", initial=[42] + [0] * (n - 1))
        res = pram.run(pram_broadcast_program(n))
        assert all(v == 42 for v in res.memory)
        assert res.steps == pram_broadcast_steps(n)

    def test_the_loophole(self):
        """The PRAM's cost is blind to communication parameters — the
        central critique of Section 6.1: its step count is the same no
        matter what the machine's L, o, g are, while the LogP optimal
        broadcast time varies by an order of magnitude."""
        from repro.core import LogPParams
        from repro.algorithms.broadcast import optimal_broadcast_time

        steps = pram_broadcast_steps(8)  # 3, always
        cheap = optimal_broadcast_time(LogPParams(L=1, o=0, g=1, P=8))
        costly = optimal_broadcast_time(LogPParams(L=60, o=20, g=40, P=8))
        assert steps == 3
        assert costly > 10 * cheap
