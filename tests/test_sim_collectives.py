"""Tests for repro.sim.collectives: message-built collective operations."""

import operator

import pytest

from repro.core import LogPParams
from repro.sim import (
    all_reduce,
    all_to_all,
    binomial_broadcast,
    binomial_children,
    binomial_parent,
    binomial_reduce,
    exchange,
    run_programs,
    software_barrier,
    tree_broadcast,
    tree_reduce,
    validate_schedule,
    Now,
)


@pytest.fixture
def p8():
    return LogPParams(L=6, o=2, g=4, P=8)


class TestBinomialTreeStructure:
    def test_root_has_no_parent(self):
        assert binomial_parent(0, 8) is None

    def test_parent_clears_highest_bit(self):
        assert binomial_parent(5, 8) == 1  # 101 -> 001
        assert binomial_parent(6, 8) == 2
        assert binomial_parent(7, 8) == 3
        assert binomial_parent(4, 8) == 0

    def test_children_of_root(self):
        assert sorted(binomial_children(0, 8)) == [1, 2, 4]

    def test_children_respect_P_boundary(self):
        assert binomial_children(1, 6) == [5, 3]
        assert binomial_children(2, 6) == []

    def test_parent_child_consistency(self):
        for P in (2, 3, 5, 8, 13, 16):
            for r in range(P):
                for c in binomial_children(r, P):
                    assert binomial_parent(c, P) == r

    def test_every_node_reachable(self):
        for P in (1, 2, 7, 16):
            seen = {0}
            frontier = [0]
            while frontier:
                n = frontier.pop()
                for c in binomial_children(n, P):
                    assert c not in seen
                    seen.add(c)
                    frontier.append(c)
            assert seen == set(range(P))

    def test_nonzero_root_relabeling(self):
        for r in range(8):
            assert binomial_parent((3 + r) % 8, 8, root=3) == (
                None if r == 0 else (binomial_parent(r, 8) + 3) % 8
            )


class TestBroadcast:
    @pytest.mark.parametrize("P", [1, 2, 3, 7, 8, 16])
    def test_all_ranks_receive(self, P):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def prog(rank, PP):
            v = yield from binomial_broadcast(rank, PP, "v" if rank == 0 else None)
            return v

        res = run_programs(p, prog)
        assert res.values() == ["v"] * P

    def test_nonzero_root(self, p8):
        def prog(rank, P):
            v = yield from binomial_broadcast(rank, P, rank, root=5)
            return v

        res = run_programs(p8, prog)
        assert res.values() == [5] * 8

    def test_schedule_validates(self, p8):
        def prog(rank, P):
            v = yield from binomial_broadcast(rank, P, 0 if rank == 0 else None)
            return v

        res = run_programs(p8, prog)
        assert validate_schedule(res.schedule, exact_latency=True).ok


class TestReduce:
    @pytest.mark.parametrize("P", [1, 2, 5, 8, 16])
    def test_sum_reduction(self, P):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def prog(rank, PP):
            v = yield from binomial_reduce(rank, PP, rank + 1, operator.add)
            return v

        res = run_programs(p, prog)
        assert res.value(0) == P * (P + 1) // 2
        assert all(v is None for v in res.values()[1:])

    def test_non_commutative_combine_deterministic(self, p8):
        def prog(rank, P):
            v = yield from binomial_reduce(
                rank, P, str(rank), lambda a, b: a + b
            )
            return v

        r1 = run_programs(p8, prog).value(0)
        r2 = run_programs(p8, prog).value(0)
        assert r1 == r2
        assert sorted(r1) == list("01234567")

    def test_reduce_then_broadcast_all_reduce(self, p8):
        def prog(rank, P):
            v = yield from all_reduce(rank, P, rank, operator.add)
            return v

        res = run_programs(p8, prog)
        assert res.values() == [28] * 8


class TestExplicitTrees:
    def test_tree_broadcast_on_custom_tree(self, p8):
        children = [[1, 2], [3, 4], [5, 6], [7], [], [], [], []]

        def prog(rank, P):
            v = yield from tree_broadcast(rank, P, 99 if rank == 0 else None, children)
            return v

        res = run_programs(p8, prog)
        assert res.values() == [99] * 8

    def test_tree_reduce_on_custom_tree(self, p8):
        children = [[1, 2], [3, 4], [5, 6], [7], [], [], [], []]

        def prog(rank, P):
            v = yield from tree_reduce(rank, P, 1, operator.add, children)
            return v

        res = run_programs(p8, prog)
        assert res.value(0) == 8

    def test_tree_reduce_detects_orphan(self, p8):
        children = [[1], [], [], [], [], [], [], []]  # ranks 2..7 orphaned

        def prog(rank, P):
            v = yield from tree_reduce(rank, P, 1, operator.add, children)
            return v

        with pytest.raises(Exception):
            run_programs(p8, prog)


class TestSoftwareBarrier:
    def test_synchronizes_without_hardware(self, p8):
        from repro.sim import Compute

        def prog(rank, P):
            yield Compute(rank * 10)
            yield from software_barrier(rank, P)
            t = yield Now()
            return t

        res = run_programs(p8, prog)
        exits = res.values()
        # Nobody exits before the slowest processor reached the barrier.
        assert min(exits) >= 70

    def test_single_processor_noop(self):
        def prog(rank, P):
            yield from software_barrier(rank, P)
            t = yield Now()
            return t

        res = run_programs(LogPParams(L=6, o=2, g=4, P=1), prog)
        assert res.value(0) == 0


class TestAllToAll:
    @pytest.mark.parametrize("stagger", [True, False])
    def test_data_delivered(self, p8, stagger):
        def prog(rank, P):
            out = {d: [(rank, d, i) for i in range(3)] for d in range(P) if d != rank}
            msgs = yield from all_to_all(rank, P, out, expected=3 * (P - 1), stagger=stagger)
            return sorted(m.payload for m in msgs)

        res = run_programs(p8, prog)
        for rank in range(8):
            expected = sorted(
                (s, rank, i) for s in range(8) if s != rank for i in range(3)
            )
            assert res.value(rank) == expected

    def test_staggered_no_stalls_naive_stalls(self, p8):
        def factory(stagger):
            def prog(rank, P):
                out = {d: [0] * 8 for d in range(P) if d != rank}
                yield from all_to_all(rank, P, out, expected=8 * (P - 1), stagger=stagger)
                return None

            return prog

        res_s = run_programs(p8, factory(True))
        res_n = run_programs(p8, factory(False))
        assert res_s.total_stall_time == 0
        assert res_n.total_stall_time > 0
        assert res_n.makespan > res_s.makespan

    def test_rejects_self_destination(self, p8):
        def prog(rank, P):
            yield from all_to_all(rank, P, {rank: [1]}, expected=0)
            return None

        with pytest.raises(ValueError):
            run_programs(p8, prog)


class TestExchange:
    def test_irregular_exchange(self, p8):
        # Rank r sends r messages to rank (r+1) % P.
        def prog(rank, P):
            dst = (rank + 1) % P
            out = {dst: [f"m{rank}-{i}" for i in range(rank)]} if rank else {}
            got = yield from exchange(rank, P, out, tag="t")
            return sorted(got)

        res = run_programs(p8, prog)
        # Rank r+1 receives r messages from rank r.
        for rank in range(1, 8):
            got = res.value((rank + 1) % 8)
            assert len(got) == rank
            assert all(src == rank for src, _ in got)
        assert res.value(1) == []  # rank 0 sent nothing

    def test_empty_exchange(self, p8):
        def prog(rank, P):
            got = yield from exchange(rank, P, {}, tag="none")
            return got

        res = run_programs(p8, prog)
        assert all(v == [] for v in res.values())
