"""Integration tests: cross-layer agreement and the paper's headline
numbers, end to end.

These tie the analytical layer, the simulator, the algorithm suite and
the machine database together — each test states a claim from the paper
and checks it against at least two independent implementations.
"""

import numpy as np
import pytest

from repro.core import (
    LogPParams,
    fft_comm_time_cyclic,
    fft_comm_time_hybrid,
    h_relation_exact,
    pipelined_stream_exact,
    point_to_point,
)
from repro.algorithms.broadcast import (
    broadcast_program,
    optimal_broadcast_time,
    optimal_broadcast_tree,
)
from repro.algorithms.fft import run_distributed_fft, simulate_remap
from repro.algorithms.summation import (
    distribute_inputs,
    optimal_summation_tree,
    summation_program,
)
from repro.machines import CM5_FFT_CALIBRATION, cm5
from repro.models import bsp_from_logp, bsp_sum_cost
from repro.sim import (
    Compute,
    Recv,
    Send,
    run_programs,
    validate_schedule,
)


class TestPaperHeadlines:
    def test_figure3_full_stack(self, fig3_params):
        """Figure 3 end to end: tree analysis == simulation == 24."""
        tree = optimal_broadcast_tree(fig3_params)
        assert tree.completion_time == 24
        res = run_programs(fig3_params, broadcast_program(tree, 0))
        assert res.makespan == 24

    def test_figure4_full_stack(self, fig4_params, rng):
        """Figure 4 end to end: 79 values summed in exactly 28 cycles."""
        tree = optimal_summation_tree(fig4_params, 28)
        assert tree.total_values == 79
        values = rng.standard_normal(79)
        res = run_programs(
            fig4_params, summation_program(tree, distribute_inputs(tree, values))
        )
        assert res.makespan == 28
        assert res.value(0) == pytest.approx(values.sum())

    def test_remote_read_is_2L_4o_on_simulator(self, fig3_params):
        """Section 3.2: reading a remote location takes 2L + 4o."""

        def prog(rank, P):
            if rank == 0:
                yield Send(1, tag="req")
                m = yield Recv(tag="rep")
                from repro.sim import Now

                t = yield Now()
                return t
            elif rank == 1:
                yield Recv(tag="req")
                yield Send(0, tag="rep")
            return None

        res = run_programs(fig3_params, prog)
        assert res.value(0) == fig3_params.remote_read()

    def test_cm5_predicted_remap_rate(self):
        """Section 4.1.4: the remap pipeline is bounded by
        max(1us + 2o, g) = 5 us/point, an asymptotic 3.2 MB/s — and the
        simulated machine attains it."""
        machine = cm5(P=16)
        p = machine.params_us()
        cal = machine.calibration
        r = simulate_remap(p, 2**14, "staggered", point_cost=cal.point_us)
        rate_mb_s = r.rate(cal.bytes_per_point, 1e-6) / 1e6
        assert rate_mb_s == pytest.approx(3.2, abs=0.25)

    def test_naive_schedule_order_of_magnitude_worse(self):
        """Figure 6: the contention-free schedule is 'an order of
        magnitude faster' than the naive one (ratio grows with P; ~5x
        at our reduced P=16)."""
        machine = cm5(P=16)
        p = machine.params_us()
        cal = machine.calibration
        naive = simulate_remap(p, 2**13, "naive", point_cost=cal.point_us)
        stag = simulate_remap(p, 2**13, "staggered", point_cost=cal.point_us)
        assert naive.makespan > 3 * stag.makespan

    def test_double_network_gains_little(self):
        """Figure 8: doubling the network bandwidth helps by only ~15%
        'because the network interface overhead (o) and the loop
        processing dominate'."""
        machine = cm5(P=16)
        p = machine.params_us()
        cal = machine.calibration
        single = simulate_remap(p, 2**13, "staggered", point_cost=cal.point_us)
        double = simulate_remap(
            p, 2**13, "staggered", point_cost=cal.point_us, double_net=True
        )
        gain = single.makespan / double.makespan - 1
        assert gain < 0.20

    def test_hybrid_layout_beats_cyclic_by_log_P(self):
        p = LogPParams(L=6, o=2, g=4, P=16)
        n = 2**14
        assert fft_comm_time_cyclic(p, n) > 3.5 * fft_comm_time_hybrid(p, n)

    def test_multithreading_capacity_limit(self, fig3_params):
        """Section 3.2: multithreading masks latency only up to L/g
        virtual processors — more outstanding requests stall."""
        p = fig3_params  # capacity 2

        def prog(rank, P):
            if rank == 0:
                # Issue 6 'prefetches' back to back to the same server.
                for i in range(6):
                    yield Send(1, tag="req")
                for _ in range(6):
                    yield Recv(tag="rep")
                from repro.sim import Now

                t = yield Now()
                return t
            elif rank == 1:
                for _ in range(6):
                    yield Recv(tag="req")
                    yield Send(0, tag="rep")
            return None

        res = run_programs(p, prog)
        # Perfect pipelining would finish near 6g + 2L + 4o; the
        # capacity constraint and the server's own gap bound it below by
        # the server's serialization: 6 requests at one per g plus the
        # reply path.
        assert res.value(0) >= 6 * p.g + p.point_to_point()


class TestCrossLayerAgreement:
    def test_stream_cost_matches_simulator(self, grid_params):
        if grid_params.P < 2:
            pytest.skip("needs two processors")
        k = 5

        def prog(rank, P):
            if rank == 0:
                for _ in range(k):
                    yield Send(1, tag="s")
            elif rank == 1:
                for _ in range(k):
                    yield Recv(tag="s")
            return None

        res = run_programs(grid_params, prog)
        # The receiver's gap can add up to (g - max(g,o)) per message on
        # the tail; for g >= o the exact formula holds.
        expected = pipelined_stream_exact(grid_params, k)
        assert res.makespan >= expected - 1e-9
        assert res.makespan <= expected + grid_params.g * k

    def test_point_to_point_matches(self, grid_params):
        if grid_params.P < 2:
            pytest.skip("needs two processors")

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            elif rank == 1:
                yield Recv()
            return None

        res = run_programs(grid_params, prog)
        assert res.makespan == pytest.approx(point_to_point(grid_params))

    def test_h_relation_close_to_formula(self):
        p = LogPParams(L=6, o=2, g=6, P=4)  # g >= 2o+... receive fits
        h = 6

        def prog(rank, P):
            dsts = [d for d in range(P) if d != rank]
            for i in range(h):
                yield Send(dsts[i % len(dsts)], tag="h")
            for _ in range(h):
                yield Recv(tag="h")
            return None

        res = run_programs(p, prog)
        expected = h_relation_exact(p, h)
        assert expected <= res.makespan <= 1.6 * expected

    def test_bsp_emulation_slower_than_native(self, rng):
        """Running BSP-style (barrier-separated supersteps) on a LogP
        machine costs more than the native LogP schedule for the same
        summation — Section 6.3's point about synchronization cost."""
        p = LogPParams(L=5, o=2, g=4, P=8)
        tree = optimal_summation_tree(p, 28)
        values = rng.standard_normal(tree.total_values)
        res = run_programs(p, summation_program(tree, distribute_inputs(tree, values)))
        native = res.makespan
        bsp_cost = bsp_sum_cost(bsp_from_logp(p), tree.total_values)
        assert native < bsp_cost

    def test_distributed_fft_agrees_with_analysis_shape(self, rng):
        """The simulated FFT's communication share shrinks as n grows
        relative to compute — the 1 + g/log n optimality ratio trend."""
        p = LogPParams(L=6, o=2, g=4, P=4)
        spans = {}
        for n in (64, 256):
            x = rng.standard_normal(n) + 0j
            out, res = run_distributed_fft(p, x, cost_per_node=1.0)
            assert np.allclose(out, np.fft.fft(x))
            spans[n] = res.makespan / (n / p.P * np.log2(n))
        assert spans[256] < spans[64]


class TestMachineDatabaseIntegration:
    def test_cm5_calibration_consistent_with_units(self):
        cyc = CM5_FFT_CALIBRATION.logp()
        us = CM5_FFT_CALIBRATION.logp_us()
        assert us.L / cyc.L == pytest.approx(CM5_FFT_CALIBRATION.cycle_us)

    def test_simulated_cm5_broadcast(self):
        machine = cm5(P=32)
        p = machine.params_us()
        t = optimal_broadcast_time(p)
        tree = optimal_broadcast_tree(p)
        res = run_programs(p, broadcast_program(tree, 1))
        assert res.makespan == pytest.approx(t)
        assert validate_schedule(res.schedule, exact_latency=True).ok
