"""Tests for repro.sim.net: the pluggable network fabric layer.

Covers the fabric contract (bound <= L, hop-consistent delivery,
trace-gated observability), the bit-identical LatencyFabric guarantee,
topology routing against repro.topology, contention queueing and
NetStall accounting, the faulty-fabric retry protocol, and the
LatencyModel.reset() contract.
"""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.sim import (
    Compute,
    ContentionFabric,
    FaultyFabric,
    FixedLatency,
    JitteredLatency,
    LatencyFabric,
    LatencyModel,
    LogPMachine,
    NetStallEvent,
    Recv,
    Send,
    SimulationError,
    TopologyFabric,
    UniformLatency,
    all_reduce,
    binomial_broadcast,
    validate_schedule,
)
from repro.sim.net import ring_router, router_for
from repro.topology.topologies import (
    Butterfly,
    FatTree,
    Hypercube,
    Mesh2D,
    Torus2D,
)


def params(L=8.0, o=1.0, g=2.0, P=4):
    return LogPParams(L=L, o=o, g=g, P=P)


def stream_prog(k, src=0, dst=1):
    def prog(rank, P):
        if rank == src:
            for i in range(k):
                yield Send(dst, payload=i)
            return None
        if rank == dst:
            total = 0
            for _ in range(k):
                m = yield Recv()
                total += m.payload
            return total
        return None
        yield

    return prog


def flood_prog(k):
    def prog(rank, P):
        if rank == 0:
            total = 0
            for _ in range(k * (P - 1)):
                m = yield Recv()
                total += m.payload
            return total
        for i in range(k):
            yield Send(0, payload=i)
        return None

    return prog


# ----------------------------------------------------------------------
# Fabric contract
# ----------------------------------------------------------------------


class TestFabricContract:
    def test_fabric_bound_above_L_rejected(self):
        fab = TopologyFabric.ring(4, hop_delay=5.0)  # bound = 2 * 5
        with pytest.raises(ValueError, match="exceeds"):
            LogPMachine(params(L=8.0), fabric=fab)

    def test_latency_and_fabric_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            LogPMachine(
                params(),
                latency=FixedLatency(8.0),
                fabric=LatencyFabric(FixedLatency(8.0)),
            )

    def test_default_fabric_is_latency_fabric(self):
        m = LogPMachine(params())
        assert isinstance(m.fabric, LatencyFabric)
        assert type(m.fabric.model) is FixedLatency
        assert m.fabric.bound == 8.0
        assert m.fabric.deterministic

    def test_machine_wider_than_fabric_rejected(self):
        fab = TopologyFabric.ring(3, L=8.0)
        machine = LogPMachine(params(P=4), fabric=fab)
        with pytest.raises(ValueError, match="routes only"):
            machine.run(stream_prog(1))

    def test_unloaded_never_exceeds_bound(self):
        for topo in (Hypercube(8), FatTree(16), Mesh2D(16), Torus2D(16)):
            fab = TopologyFabric.for_topology(topo, L=12.0)
            assert fab.bound <= 12.0 + 1e-12
            worst = max(
                fab.unloaded(s, d)
                for s in range(topo.P)
                for d in range(topo.P)
                if s != d
            )
            assert worst == pytest.approx(fab.bound)

    def test_result_carries_fabric(self):
        fab = TopologyFabric.ring(4, L=8.0)
        res = LogPMachine(params(), fabric=fab).run(stream_prog(3))
        assert res.fabric is fab


# ----------------------------------------------------------------------
# LatencyFabric: bit-identical to the bare machine
# ----------------------------------------------------------------------


class TestLatencyFabric:
    @pytest.mark.parametrize(
        "model_fn",
        [
            lambda: FixedLatency(8.0),
            lambda: UniformLatency(8.0, lo_frac=0.25, seed=7),
            lambda: JitteredLatency(8.0, scale_frac=0.3, seed=7),
        ],
        ids=["fixed", "uniform", "jittered"],
    )
    def test_bit_identical_to_bare_machine(self, model_fn):
        prog = flood_prog(4)
        bare = LogPMachine(params(), latency=model_fn()).run(prog)
        wrapped = LogPMachine(
            params(), fabric=LatencyFabric(model_fn())
        ).run(prog)
        assert wrapped.makespan == bare.makespan
        assert wrapped.total_stall_time == bare.total_stall_time
        assert wrapped.schedule.messages == bare.schedule.messages
        for rank in bare.schedule.timelines:
            assert (
                wrapped.schedule.timelines[rank].intervals
                == bare.schedule.timelines[rank].intervals
            )

    def test_report_counts_messages_on_fixed_fast_path(self):
        res = LogPMachine(params()).run(flood_prog(3))
        rep = res.fabric_report()
        assert rep.messages == res.total_messages == 9
        assert rep.net_stall_total == 0.0

    def test_report_counts_messages_off_fast_path(self):
        fab = LatencyFabric(UniformLatency(8.0, seed=3))
        res = LogPMachine(params(), fabric=fab).run(flood_prog(3))
        assert res.fabric_report().messages == 9


# ----------------------------------------------------------------------
# TopologyFabric: routed, hop-charged flight
# ----------------------------------------------------------------------


class TestTopologyFabric:
    def test_hops_match_topology_routers(self):
        topo = Hypercube(8)
        fab = TopologyFabric.for_topology(topo, hop_delay=2.0)
        # Hypercube distance is the Hamming distance.
        assert fab.hops(0, 7) == 3
        assert fab.hops(0, 1) == 1
        assert fab.unloaded(0, 7) == 6.0
        assert fab.unloaded(0, 1) == 2.0

    def test_calibration_makes_diameter_exactly_L(self):
        topo = FatTree(16)
        fab = TopologyFabric.for_topology(topo, L=10.0)
        assert fab.bound == pytest.approx(10.0)
        assert fab.unloaded(0, 15) == pytest.approx(10.0)
        assert fab.unloaded(0, 1) < 10.0

    def test_serialization_term(self):
        fab = TopologyFabric.ring(4, hop_delay=1.0, serialization=2.5)
        assert fab.unloaded(0, 1) == pytest.approx(3.5)
        assert fab.bound == pytest.approx(2.5 + 2 * 1.0)

    def test_calibrate_rejects_both_or_bad_L(self):
        with pytest.raises(ValueError, match="not both"):
            TopologyFabric.ring(4, hop_delay=1.0, L=8.0)
        with pytest.raises(ValueError, match="below serialization"):
            TopologyFabric.ring(4, serialization=9.0, L=8.0)

    @pytest.mark.parametrize(
        "topo_fn",
        [
            lambda: Hypercube(4),
            lambda: FatTree(4),
            lambda: Butterfly(4),
            lambda: Mesh2D(4),
            lambda: Torus2D(4),
        ],
        ids=["hypercube", "fattree", "butterfly", "mesh", "torus"],
    )
    def test_hop_consistent_delivery_on_paper_topologies(self, topo_fn):
        topo = topo_fn()
        fab = TopologyFabric.for_topology(topo, L=8.0)
        res = LogPMachine(params(P=topo.P), fabric=fab).run(flood_prog(2))
        validate_schedule(res.schedule, fabric=fab).raise_if_invalid()
        for m in res.schedule.messages:
            assert m.latency == pytest.approx(fab.unloaded(m.src, m.dst))
            assert m.latency <= 8.0 + 1e-9

    def test_router_for_unknown_topology_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError, match="no router known"):
            router_for(Weird())

    def test_ring_router_wraps(self):
        route = ring_router(6)
        assert route(0, 5) == [0, 5]  # one wrap hop, not five forward
        assert route(1, 3) == [1, 2, 3]

    def test_empty_route_rejected(self):
        fab = TopologyFabric(4, lambda s, d: [s], max_hops=1)
        with pytest.raises(ValueError, match="empty route"):
            fab.unloaded(0, 1)


# ----------------------------------------------------------------------
# ContentionFabric: FIFO link queues and NetStall accounting
# ----------------------------------------------------------------------


class TestContentionFabric:
    def test_back_to_back_messages_queue_on_shared_link(self):
        # P=2 ring: both directions one hop.  g=0, capacity unbounded:
        # sender 0 injects k messages at one instant apart less than the
        # service time, so each queues behind the previous.
        p = LogPParams(L=4.0, o=1.0, g=0.0, P=2)
        fab = ContentionFabric.ring(2, hop_delay=4.0)
        res = LogPMachine(p, fabric=fab).run(stream_prog(3))
        validate_schedule(
            res.schedule, fabric=fab, check_capacity=False
        ).raise_if_invalid()
        msgs = sorted(res.schedule.messages, key=lambda m: m.inject)
        assert msgs[0].net_stall == pytest.approx(0.0)
        assert msgs[1].net_stall > 0.0
        assert msgs[2].net_stall > msgs[1].net_stall
        for m in msgs:
            assert m.latency == pytest.approx(4.0 + m.net_stall)
            assert m.unloaded_latency == pytest.approx(4.0)

    def test_net_stall_events_and_report(self):
        p = LogPParams(L=4.0, o=1.0, g=0.0, P=2)
        fab = ContentionFabric.ring(2, hop_delay=4.0)
        res = LogPMachine(p, fabric=fab).run(stream_prog(3))
        net_events = [
            ev for ev in res.stall_events if isinstance(ev, NetStallEvent)
        ]
        assert len(net_events) == 2
        assert all(ev.stall > 0 for ev in net_events)
        report = res.stall_report()
        assert report.net_stalls == 2
        assert report.net_stall_time == pytest.approx(
            sum(ev.stall for ev in net_events)
        )
        fab_rep = res.fabric_report()
        assert fab_rep.net_stall_total == pytest.approx(
            report.net_stall_time
        )
        assert fab_rep.net_stall_max > 0
        assert fab_rep.link_messages[(0, 1)] == 3
        assert fab_rep.link_busy[(0, 1)] == pytest.approx(12.0)
        assert fab_rep.max_queue_depth >= 1
        assert fab_rep.queue_high_water[(0, 1)] >= 1

    def test_uncontended_run_has_zero_net_stall(self):
        # Paced at g = hop service time, the single link never queues.
        p = LogPParams(L=4.0, o=1.0, g=4.0, P=2)
        fab = ContentionFabric.ring(2, hop_delay=4.0)
        res = LogPMachine(p, fabric=fab).run(stream_prog(5))
        validate_schedule(res.schedule, fabric=fab).raise_if_invalid()
        assert all(m.net_stall == 0.0 for m in res.schedule.messages)
        assert res.fabric_report().max_queue_depth == 0

    def test_utilization_histogram(self):
        p = LogPParams(L=4.0, o=1.0, g=0.0, P=2)
        fab = ContentionFabric.ring(2, hop_delay=4.0)
        res = LogPMachine(p, fabric=fab).run(stream_prog(3))
        rep = res.fabric_report()
        util = rep.utilization(res.makespan)
        assert 0.0 < util[(0, 1)] <= 1.0
        counts, edges = rep.utilization_histogram(res.makespan, bins=4)
        assert counts.sum() == rep.links_used
        assert len(edges) == 5

    def test_trace_gating_does_not_change_semantics(self):
        p = LogPParams(L=6.0, o=1.0, g=1.0, P=4)
        fab = ContentionFabric.ring(4, L=6.0)
        prog = flood_prog(4)
        traced = LogPMachine(p, fabric=fab, trace=True).run(prog)
        bare = LogPMachine(p, fabric=fab, trace=False).run(prog)
        assert bare.makespan == traced.makespan
        assert bare.total_stall_time == traced.total_stall_time

    def test_untraced_fabric_report_raises(self):
        fab = ContentionFabric.ring(4, L=8.0)
        res = LogPMachine(params(), fabric=fab, trace=False).run(
            stream_prog(2)
        )
        with pytest.raises(ValueError, match="trace"):
            res.fabric_report()

    def test_rerun_on_same_machine_is_identical(self):
        p = LogPParams(L=6.0, o=1.0, g=1.0, P=4)
        machine = LogPMachine(p, fabric=ContentionFabric.ring(4, L=6.0))
        first = machine.run(flood_prog(3))
        second = machine.run(flood_prog(3))
        assert second.makespan == first.makespan
        assert second.schedule.messages == first.schedule.messages


# ----------------------------------------------------------------------
# FaultyFabric: drop/duplicate/delay and the retry protocol
# ----------------------------------------------------------------------


class TestFaultyFabric:
    def faulty(self, P=4, L=8.0, **faults):
        return FaultyFabric(TopologyFabric.ring(P, L=L), **faults)

    def test_no_faults_delivers_everything_exactly_once(self):
        fab = self.faulty()
        res = LogPMachine(params(), fabric=fab).run(flood_prog(3))
        assert res.total_messages == 9
        assert res.value(0) == 3 * (0 + 1 + 2)
        assert res.extras["net_faults"]["retries"] == 0
        assert res.extras["net_faults"]["drops"] == 0

    def test_drops_are_retried_and_values_survive(self):
        fab = self.faulty(drop=0.4, seed=11)
        res = LogPMachine(params(), fabric=fab).run(flood_prog(4))
        faults = res.extras["net_faults"]
        assert faults["drops"] > 0
        assert faults["retries"] >= faults["drops"]
        assert res.value(0) == 3 * (0 + 1 + 2 + 3)

    def test_duplicates_are_suppressed(self):
        fab = self.faulty(duplicate=0.9, seed=5)
        res = LogPMachine(params(), fabric=fab).run(flood_prog(4))
        faults = res.extras["net_faults"]
        assert faults["duplicates"] > 0
        assert faults["duplicates_suppressed"] > 0
        assert res.value(0) == 3 * (0 + 1 + 2 + 3)

    def test_delays_past_timeout_generate_retries_not_duplicates(self):
        fab = self.faulty(delay=0.6, delay_scale=200.0, seed=3)
        res = LogPMachine(
            params(), fabric=fab, retry_timeout=30.0
        ).run(flood_prog(2))
        # Program-visible delivery stays exactly-once regardless of how
        # many copies raced.
        assert res.value(0) == 3 * (0 + 1)

    def test_collectives_survive_a_hostile_network(self):
        p = LogPParams(L=8.0, o=1.0, g=2.0, P=8)
        fab = FaultyFabric(
            TopologyFabric.ring(8, L=8.0),
            drop=0.25,
            duplicate=0.2,
            delay=0.15,
            seed=42,
        )

        def prog(rank, P):
            value = yield from binomial_broadcast(
                rank, P, 99 if rank == 0 else None
            )
            total = yield from all_reduce(rank, P, rank)
            return (value, total)

        res = LogPMachine(p, fabric=fab).run(prog)
        expect_total = sum(range(8))
        for rank in range(8):
            assert res.value(rank) == (99, expect_total)
        assert res.extras["net_faults"]["drops"] > 0

    def test_total_loss_exhausts_retries(self):
        fab = self.faulty(drop=1.0)
        machine = LogPMachine(
            params(), fabric=fab, retry_timeout=10.0, max_retries=2
        )
        with pytest.raises(SimulationError, match="unacked"):
            machine.run(stream_prog(1))

    def test_submit_requires_lossy_protocol(self):
        with pytest.raises(TypeError, match="submit_lossy"):
            self.faulty().submit(0, 1, 0.0)

    def test_probability_validation_and_stacking(self):
        with pytest.raises(ValueError, match="probability"):
            self.faulty(drop=1.5)
        with pytest.raises(ValueError, match="stack"):
            FaultyFabric(self.faulty())

    def test_reset_replays_the_same_faults(self):
        fab = self.faulty(drop=0.3, duplicate=0.3, seed=9)
        machine = LogPMachine(params(), fabric=fab)
        first = machine.run(flood_prog(4))
        second = machine.run(flood_prog(4))
        assert second.makespan == first.makespan
        assert second.extras["net_faults"] == first.extras["net_faults"]

    def test_report_wraps_inner(self):
        fab = self.faulty()
        res = LogPMachine(params(), fabric=fab).run(stream_prog(2))
        rep = res.fabric_report()
        assert rep.fabric.startswith("FaultyFabric(")
        assert rep.messages >= 2


# ----------------------------------------------------------------------
# Saturation: the §5.3 knee inside the machine (smoke; the full
# cross-check against topology.saturation lives in benchmarks/)
# ----------------------------------------------------------------------


class TestSaturationSmoke:
    def test_flood_queues_where_disjoint_shift_does_not(self):
        fab = ContentionFabric.ring(6, L=6.0)  # hop service = 2 cycles
        # Hot: an unpaced many-to-one flood funnels every sender over
        # the two links into rank 0 — queueing is unavoidable.
        hot = LogPMachine(
            LogPParams(L=6.0, o=0.5, g=0.0, P=6),
            fabric=fab,
            enforce_capacity=False,
        ).run(flood_prog(4))
        assert hot.stall_report().net_stall_time > 0.0

        # Cool: neighbour-shift traffic uses disjoint links, and pacing
        # at g = hop service rate keeps each link exactly saturated but
        # never queued.
        def shift(rank, P):
            for i in range(4):
                yield Send((rank + 1) % P, payload=i)
            for _ in range(4):
                yield Recv()

        cool = LogPMachine(
            LogPParams(L=6.0, o=0.5, g=2.0, P=6),
            fabric=fab,
            enforce_capacity=False,
        ).run(shift)
        assert cool.stall_report().net_stall_time == 0.0


# ----------------------------------------------------------------------
# LatencyModel.reset() contract (satellite)
# ----------------------------------------------------------------------


class TestLatencyReset:
    @pytest.mark.parametrize(
        "model_fn",
        [
            lambda: UniformLatency(8.0, lo_frac=0.25, seed=13),
            lambda: JitteredLatency(8.0, scale_frac=0.3, seed=13),
        ],
        ids=["uniform", "jittered"],
    )
    def test_rerun_on_same_machine_is_bit_identical(self, model_fn):
        machine = LogPMachine(params(), latency=model_fn())
        prog = flood_prog(4)
        first = machine.run(prog)
        second = machine.run(prog)
        assert second.makespan == first.makespan
        assert second.schedule.messages == first.schedule.messages
        for rank in first.schedule.timelines:
            assert (
                second.schedule.timelines[rank].intervals
                == first.schedule.timelines[rank].intervals
            )

    def test_stateless_model_reset_is_silent(self):
        FixedLatency(8.0).reset()  # no RNG state: the no-op is fine

    def test_base_reset_raises_on_undeclared_rng_state(self):
        class Sloppy(LatencyModel):
            def __init__(self, L):
                super().__init__(L)
                self._rng = np.random.default_rng(0)

            def draw(self, src, dst):
                return float(self._rng.uniform(0.0, self.L))

        with pytest.raises(NotImplementedError, match="_rng"):
            Sloppy(8.0).reset()

    def test_machine_refuses_to_run_a_sloppy_model(self):
        class Sloppy(LatencyModel):
            def __init__(self, L):
                super().__init__(L)
                self._rng = np.random.default_rng(0)

            def draw(self, src, dst):
                return float(self._rng.uniform(0.0, self.L))

        machine = LogPMachine(params(), latency=Sloppy(8.0))
        with pytest.raises(NotImplementedError):
            machine.run(stream_prog(1))

    def test_overriding_reset_satisfies_the_contract(self):
        class Careful(LatencyModel):
            def __init__(self, L, seed=0):
                super().__init__(L)
                self._seed = seed
                self._rng = np.random.default_rng(seed)

            def draw(self, src, dst):
                return float(self._rng.uniform(0.0, self.L))

            def reset(self):
                self._rng = np.random.default_rng(self._seed)

        machine = LogPMachine(params(), latency=Careful(8.0, seed=4))
        first = machine.run(flood_prog(3))
        second = machine.run(flood_prog(3))
        assert second.makespan == first.makespan


# ----------------------------------------------------------------------
# Long messages over fabrics (LogGP streaming interacts with routing)
# ----------------------------------------------------------------------


class TestLongMessagesOverFabric:
    def test_loggp_stream_term_rides_on_routed_flight(self):
        from repro.core import LogGPParams

        p = LogGPParams(L=8.0, o=1.0, g=2.0, P=4, G=0.5)
        fab = TopologyFabric.ring(4, L=8.0)
        res = LogPMachine(p, fabric=fab).run(
            lambda rank, P: stream_prog(1)(rank, P)
        )
        validate_schedule(res.schedule, fabric=fab).raise_if_invalid()

    def test_multiword_hop_consistency(self):
        from repro.core import LogGPParams
        from repro.sim import run_programs

        p = LogGPParams(L=8.0, o=1.0, g=2.0, P=2, G=0.5)
        fab = TopologyFabric.ring(2, L=8.0)

        def prog(rank, P):
            if rank == 0:
                yield Send(1, payload=0, words=9)
            else:
                yield Recv()
            yield Compute(0.0)

        res = LogPMachine(p, fabric=fab).run(prog)
        (m,) = res.schedule.messages
        stream = (9 - 1) * 0.5
        assert m.latency == pytest.approx(fab.unloaded(0, 1) + stream)
        validate_schedule(res.schedule, fabric=fab).raise_if_invalid()
