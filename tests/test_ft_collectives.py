"""Self-healing collectives: re-grafting, coverage accounting, healing.

The acceptance property (ISSUE 5): the fault-tolerant broadcast
completes on every surviving rank under any single crash at any time,
within the documented degradation bound
``fault_free + f * (detect_delay + reroute_cost)``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.broadcast import (
    ft_broadcast_bound,
    ft_broadcast_program,
    ft_heartbeat_config,
    ft_reroute_cost,
)
from repro.algorithms.summation import (
    distribute_inputs,
    heal_summation_tree,
    optimal_summation_tree,
    summation_program,
)
from repro.core.params import LogPParams
from repro.sim.collectives import (
    binomial_ancestors,
    binomial_children,
    binomial_parent,
    binomial_subtree,
    ft_reduce,
    ft_watch_edges,
)
from repro.sim.faults import CrashStop, FaultPlan, HeartbeatConfig
from repro.sim.machine import LogPMachine

CM5 = LogPParams(L=6.0, o=2.0, g=4.0, P=8)
HORIZON = 20000.0
DEADLINE = 15000.0


def _hb(p: LogPParams) -> HeartbeatConfig:
    return ft_heartbeat_config(p, horizon=HORIZON)


def _poll(hb: HeartbeatConfig) -> float:
    return hb.period / 2


# ----------------------------------------------------------------------
# Tree helpers
# ----------------------------------------------------------------------


def test_binomial_ancestors_end_at_root():
    for P in (2, 5, 8, 13):
        for r in range(P):
            chain = binomial_ancestors(r, P)
            if r == 0:
                assert chain == []
            else:
                assert chain[0] == binomial_parent(r, P)
                assert chain[-1] == 0
                # Strictly climbing: each link is the parent of the last.
                at = r
                for a in chain:
                    assert binomial_parent(at, P) == a
                    at = a


def test_binomial_subtree_partitions_ranks():
    P = 8
    root_kids = binomial_children(0, P)
    subtrees = [binomial_subtree(k, P) for k in root_kids]
    seen = {0}
    for sub in subtrees:
        assert seen.isdisjoint(sub)
        seen.update(sub)
    assert seen == set(range(P))


def test_ft_watch_edges_cover_chains_and_root():
    P = 8
    edges = set(ft_watch_edges(P))
    for r in range(1, P):
        assert (0, r) in edges  # root monitors everyone
        for a in binomial_ancestors(r, P):
            assert (min(r, a), max(r, a)) in edges
    # O(P log P), far fewer than all-pairs.
    assert len(edges) < P * (P - 1) // 2


# ----------------------------------------------------------------------
# Fault-tolerant broadcast: the degradation bound
# ----------------------------------------------------------------------


def _run_bcast(p, hb, plan):
    machine = LogPMachine(p, heartbeat=hb, fault_plan=plan)
    factory = ft_broadcast_program(42, poll=_poll(hb), deadline=DEADLINE)
    return machine.run(factory)


def test_ft_broadcast_fault_free_delivers_everywhere():
    hb = _hb(CM5)
    res = _run_bcast(CM5, hb, None)
    assert res.values() == [42] * CM5.P
    assert res.fault_report().ok


@pytest.mark.parametrize("victim", range(1, 8))
def test_ft_broadcast_single_crash_sweep_within_bound(victim):
    """Any non-root rank, crashed at any phase of the protocol: every
    survivor still gets the value, within the documented bound."""
    hb = _hb(CM5)
    fault_free = _run_bcast(CM5, hb, None).makespan
    bound = ft_broadcast_bound(CM5, hb, _poll(hb), fault_free, crashes=1)
    # Crash times spanning: before the root's first send, mid-tree,
    # mid-detection, and after the fault-free protocol has finished.
    for at in (0.0, 3.0, 10.0, 25.0, 60.0, 150.0, 400.0, 1000.0):
        res = _run_bcast(CM5, hb, FaultPlan([CrashStop(victim, at)]))
        values = res.values()
        for r in range(CM5.P):
            if r != victim:
                assert values[r] == 42, (victim, at, values)
        assert res.makespan <= bound, (victim, at, res.makespan, bound)
        assert not res.fault_report().wedged_ranks


def test_ft_broadcast_two_crashes_within_bound():
    hb = _hb(CM5)
    fault_free = _run_bcast(CM5, hb, None).makespan
    bound = ft_broadcast_bound(CM5, hb, _poll(hb), fault_free, crashes=2)
    # Parent-and-child (1 then 3) and two independent subtrees (2 and 1).
    for pair, times in (((1, 3), (5.0, 9.0)), ((2, 1), (0.0, 40.0))):
        plan = FaultPlan(
            [CrashStop(v, t) for v, t in zip(pair, times)]
        )
        res = _run_bcast(CM5, hb, plan)
        values = res.values()
        for r in range(CM5.P):
            if r not in pair:
                assert values[r] == 42, (pair, values)
        assert res.makespan <= bound


def test_ft_broadcast_bound_is_not_vacuous():
    """The bound actually separates outcomes: it is far below the
    deadline/horizon fallbacks a wedged protocol would hit."""
    hb = _hb(CM5)
    fault_free = _run_bcast(CM5, hb, None).makespan
    bound = ft_broadcast_bound(CM5, hb, _poll(hb), fault_free, crashes=1)
    assert bound < DEADLINE / 4
    assert ft_reroute_cost(CM5, _poll(hb)) > 0


def test_ft_broadcast_non_power_of_two():
    p = LogPParams(L=6.0, o=2.0, g=4.0, P=6)
    hb = _hb(p)
    factory = ft_broadcast_program(7, poll=_poll(hb), deadline=DEADLINE)
    for victim, at in ((1, 0.0), (2, 12.0), (5, 30.0)):
        machine = LogPMachine(
            p, heartbeat=hb, fault_plan=FaultPlan([CrashStop(victim, at)])
        )
        res = machine.run(factory)
        for r in range(p.P):
            if r != victim:
                assert res.value(r) == 7


# ----------------------------------------------------------------------
# Fault-tolerant reduce: coverage accounting
# ----------------------------------------------------------------------


def _red_factory(poll):
    def factory(rank: int, P: int):
        return ft_reduce(
            rank, P, 10 + rank, poll=poll, deadline=DEADLINE
        )

    return factory


def test_ft_reduce_fault_free_full_coverage():
    hb = _hb(CM5)
    machine = LogPMachine(CM5, heartbeat=hb)
    res = machine.run(_red_factory(_poll(hb)))
    acc, covered, lost = res.value(0)
    assert covered == frozenset(range(CM5.P))
    assert lost == frozenset()
    assert acc == sum(10 + r for r in range(CM5.P))


@pytest.mark.parametrize("victim", range(1, 8))
def test_ft_reduce_single_crash_accounts_every_rank(victim):
    """covered/lost always partition the ranks, the result combines
    exactly the covered values, and the victim's leaf is the only leaf
    that may be lost besides partials it had taken custody of."""
    hb = _hb(CM5)
    for at in (0.0, 5.0, 17.0, 33.0, 80.0, 200.0, 500.0):
        plan = FaultPlan([CrashStop(victim, at)])
        machine = LogPMachine(CM5, heartbeat=hb, fault_plan=plan)
        res = machine.run(_red_factory(_poll(hb)))
        out = res.value(0)
        assert out is not None, (victim, at)
        acc, covered, lost = out
        assert covered | lost == frozenset(range(CM5.P))
        assert not covered & lost
        assert acc == sum(10 + r for r in covered), (victim, at)
        # Whatever is lost sat in the victim's custody: its own leaf
        # and possibly its subtree's absorbed partials.
        assert lost <= {victim} | set(binomial_subtree(victim, CM5.P)), (
            victim,
            at,
            lost,
        )
        # A crash after the protocol finished loses nothing.
        if at >= 500.0:
            assert lost in (frozenset(), frozenset({victim}))


def test_ft_reduce_crash_before_start_loses_only_victim_leaf():
    hb = _hb(CM5)
    plan = FaultPlan([CrashStop(3, 0.0)])
    machine = LogPMachine(CM5, heartbeat=hb, fault_plan=plan)
    res = machine.run(_red_factory(_poll(hb)))
    acc, covered, lost = res.value(0)
    assert lost == frozenset({3})
    assert acc == sum(10 + r for r in range(CM5.P) if r != 3)


# ----------------------------------------------------------------------
# Static healing: summation replanned around dead ranks
# ----------------------------------------------------------------------


FIG4 = LogPParams(L=5.0, o=2.0, g=4.0, P=8)


def test_heal_summation_tree_reassigns_leaves():
    tree = optimal_summation_tree(FIG4, 28.0)
    n = tree.total_values
    healed = heal_summation_tree(tree, {3})
    assert healed.total_values == n  # every input re-assigned
    assert all(node.rank != 3 for node in healed.nodes)
    assert healed.T >= tree.T
    # The schedule degrades gracefully: losing 1 of 8 processors costs
    # a bounded deadline increase, not a collapse to serial summing.
    assert healed.T <= tree.T + _heal_slack(FIG4)


def _heal_slack(p: LogPParams) -> float:
    # One extra reception slot plus one tree level is ample for f=1.
    return (p.L + 2 * p.o + 1) + max(p.g, p.o + 1)


def test_heal_summation_tree_executes_with_dead_ranks_crashed():
    tree = optimal_summation_tree(FIG4, 28.0)
    n = tree.total_values
    values = [float(i + 1) for i in range(n)]
    for dead in ({1}, {5}, {1, 6}, {0}):
        healed = heal_summation_tree(tree, dead)
        inputs = distribute_inputs(healed, values)
        plan = FaultPlan([CrashStop(r, 0.0) for r in dead])
        machine = LogPMachine(FIG4, fault_plan=plan)
        res = machine.run(summation_program(healed, inputs))
        assert res.value(healed.root) == sum(values)
        assert res.makespan == healed.T
        assert not res.fault_report().wedged_ranks


def test_heal_summation_tree_rejects_bad_dead_sets():
    tree = optimal_summation_tree(FIG4, 28.0)
    with pytest.raises(ValueError, match="outside"):
        heal_summation_tree(tree, {11})
    with pytest.raises(ValueError, match="survivors"):
        heal_summation_tree(tree, set(range(8)))


def test_heal_summation_tree_identity_without_deaths():
    tree = optimal_summation_tree(FIG4, 28.0)
    healed = heal_summation_tree(tree, set())
    assert healed.total_values == tree.total_values
    assert healed.T == tree.T
