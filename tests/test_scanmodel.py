"""Tests for repro.models.scanmodel (Section 6.2's scan-model)."""

import pytest

from repro.core import LogPParams
from repro.models import (
    logp_scan_time,
    scan_model_broadcast_steps,
    scan_model_scan_steps,
    scan_model_sum_steps,
)
from repro.sim import prefix_scan, run_programs


class TestScanModelCosts:
    def test_unit_time_by_assumption(self):
        for n in (1, 100, 10**6):
            assert scan_model_scan_steps(n) == 1
            assert scan_model_sum_steps(n) == 1
            assert scan_model_broadcast_steps(n) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            scan_model_scan_steps(0)


class TestLogPScanTime:
    def test_single_processor_free(self):
        assert logp_scan_time(LogPParams(L=6, o=2, g=4, P=1)) == 0

    def test_log_rounds(self):
        p2 = logp_scan_time(LogPParams(L=6, o=2, g=4, P=2))
        p4 = logp_scan_time(LogPParams(L=6, o=2, g=4, P=4))
        p16 = logp_scan_time(LogPParams(L=6, o=2, g=4, P=16))
        assert p4 == pytest.approx(2 * p2, rel=0.2)
        assert p16 == pytest.approx(4 * p2, rel=0.2)

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_tracks_simulation(self, P):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def prog(rank, PP):
            v = yield from prefix_scan(rank, PP, 1)
            return v

        sim = run_programs(p, prog).makespan
        pred = logp_scan_time(p)
        assert 0.75 * pred <= sim <= 1.25 * pred

    def test_gap_dominated_regime(self):
        # With a huge g the rounds are paced by the gap, not by L.
        p = LogPParams(L=2, o=1, g=40, P=8)
        t = logp_scan_time(p)
        assert t >= 2 * 40  # at least two gap intervals across 3 rounds
