"""The compiled DAG evaluator: bit-identity, grids, refusal semantics.

The contract under test is the one the fuzz harness enforces at scale
(``repro.sim.fuzz`` check 5): for any deterministic fixed-latency
schedule, the compiled evaluator — scalar or vectorized grid replay —
produces *exactly* what the event machine produces.  Every comparison
here is ``==``; there are no tolerances to hide behind.

Also covered: the machine-kwarg variants the evaluator mirrors
(capacity override, ``enforce_capacity=False``, ``hw_barrier_cost``,
``merge_overhead_into_gap`` parameter sets, LogGP long messages),
capacity-stall accounting cross-checked through ``stall_report()``,
numpy-vs-pure-python replay parity, and the backend selection rules:
``compiled``/``auto`` refuse nondeterministic timing loudly instead of
silently falling back to the machine.
"""

from __future__ import annotations

import pytest

from repro.core import LogPParams
from repro.core.loggp import LogGPParams
from repro.sim import (
    Barrier,
    Compute,
    FixedLatency,
    LogPMachine,
    Now,
    Recv,
    Send,
    UniformLatency,
)
from repro.sim.compiled import (
    BACKENDS,
    CompileError,
    backend_ineligibility,
    compile_programs,
    evaluate,
    evaluate_grid,
    resolve_backend,
)
from repro.sim.fuzz import make_case
from repro.sim.net import LatencyFabric, TopologyFabric
from repro.sim.sweep import grid_map

BASE = LogPParams(L=6, o=2, g=4, P=8)


# ----------------------------------------------------------------------
# Program factories
# ----------------------------------------------------------------------


def _bcast(rank: int, P: int):
    """Pipelined chain broadcast of 4 items: P-generic, stall-prone."""

    def run():
        for idx in range(4):
            if rank > 0:
                msg = yield Recv(tag=("it", idx))
                val = msg.payload
            else:
                val = idx
            if rank < P - 1:
                yield Send(rank + 1, payload=val, tag=("it", idx))
        return rank

    return run()


def _flood(rank: int, P: int):
    """Many-to-one flood: deep in the capacity-stall regime."""

    def run():
        if rank == 0:
            for _ in range(6 * (P - 1)):
                yield Recv()
            return None
        for _ in range(6):
            yield Send(0)
        return None

    return run()


def _barrier_prog(rank: int, P: int):
    def run():
        yield Compute(rank + 1)
        yield Barrier()
        if rank == 0:
            yield Send(1, payload="after")
        elif rank == 1:
            yield Recv()
        return rank

    return run()


def _loggp_prog(rank: int, P: int):
    """Long (multi-word) messages: exercises the LogGP G term."""

    def run():
        if rank == 0:
            yield Send(1, words=64, payload="bulk")
            yield Send(1, words=1, payload="short")
            return None
        if rank == 1:
            yield Recv()
            yield Recv()
        return None

    return run()


def _now_prog(rank: int, P: int):
    def run():
        t = yield Now()
        yield Compute(t + 1)
        return None

    return run()


# ----------------------------------------------------------------------
# Scalar differential
# ----------------------------------------------------------------------


def _assert_matches(factory, params, **kw) -> None:
    """Machine and compiled evaluator agree exactly on every shared field."""
    machine = LogPMachine(
        params, latency=FixedLatency(params.L), trace=False, **kw
    ).run(factory)
    comp = evaluate(
        compile_programs(factory, params.P),
        params,
        collect_stalls=True,
        **kw,
    )
    assert comp.makespan == machine.makespan
    assert comp.total_messages == machine.total_messages
    assert comp.total_stall_time == machine.total_stall_time
    assert comp.events_run == machine.events_run
    assert tuple(comp.values) == tuple(machine.values())
    assert comp.finished_at == [r.finished_at for r in machine.results]
    assert comp.sends == [r.sends for r in machine.results]
    assert comp.receives == [r.receives for r in machine.results]
    assert comp.stall_time == [r.stall_time for r in machine.results]


@pytest.mark.parametrize("factory", [_bcast, _flood, _barrier_prog])
@pytest.mark.parametrize(
    "params",
    [
        BASE,
        LogPParams(L=12, o=1, g=1, P=6),  # high capacity, no stalls
        LogPParams(L=9, o=0.5, g=3, P=4),  # fractional overhead
    ],
)
def test_scalar_differential(factory, params):
    _assert_matches(factory, params)


@pytest.mark.parametrize("seed", range(12))
def test_scalar_differential_fuzz_families(seed):
    """A thin slice of the fuzz differential, pinned into tier 1."""
    case = make_case(seed)
    _assert_matches(case.factory, case.params)


def test_capacity_override_and_disabled():
    _assert_matches(_flood, BASE, capacity=2)
    _assert_matches(_flood, BASE, capacity=1)
    _assert_matches(_flood, BASE, enforce_capacity=False)


def test_hw_barrier_cost():
    _assert_matches(_barrier_prog, BASE, hw_barrier_cost=3.5)


def test_merge_overhead_into_gap_variant():
    """The Section 3.1 ``o := max(o, g)`` analysis sets (g ignored, so
    capacity degenerates) still evaluate bit-identically."""
    merged = BASE.merge_overhead_into_gap()
    _assert_matches(_bcast, merged, enforce_capacity=False)


def test_loggp_long_messages():
    p = LogGPParams(L=6, o=2, g=4, G=0.5, P=2)
    machine = LogPMachine(p, trace=False).run(_loggp_prog)
    comp = evaluate(compile_programs(_loggp_prog, 2), p)
    assert comp.makespan == machine.makespan
    assert comp.total_messages == machine.total_messages


def test_stall_report_cross_check():
    """Capacity-stall timing agrees with MachineResult.stall_report()."""
    machine = LogPMachine(
        BASE, latency=FixedLatency(BASE.L), trace=True
    ).run(_flood)
    comp = evaluate(
        compile_programs(_flood, BASE.P), BASE, collect_stalls=True
    )
    assert comp.total_stall_time > 0  # the regime is actually exercised
    assert comp.stall_events == machine.stall_events
    assert comp.stall_report() == machine.stall_report()


def test_compile_error_on_timing_dependence():
    with pytest.raises(CompileError, match="Now"):
        compile_programs(_now_prog, 2)


# ----------------------------------------------------------------------
# Grid replay
# ----------------------------------------------------------------------

GRID = [
    LogPParams(L=float(L), o=o, g=float(g), P=8)
    for L in (1, 3, 6, 9, 14)
    for g in (1, 2, 4, 7)
    for o in (0.5, 2.0)
]


@pytest.mark.parametrize("factory", [_bcast, _flood])
def test_grid_matches_machine_per_point(factory):
    gr = evaluate_grid(compile_programs(factory, 8), GRID, max_tapes=64)
    assert gr.fallbacks == 0  # every point tape-covered, none punted
    for i, p in enumerate(GRID):
        res = LogPMachine(p, latency=FixedLatency(p.L), trace=False).run(
            factory
        )
        assert (gr.makespans[i], gr.total_stall_times[i]) == (
            res.makespan,
            res.total_stall_time,
        ), f"grid point {i} ({p.L}, {p.o}, {p.g}) diverged"


def test_grid_numpy_python_replay_parity():
    pytest.importorskip("numpy")
    prog = compile_programs(_bcast, 8)
    a = evaluate_grid(prog, GRID, use_numpy=True)
    b = evaluate_grid(prog, GRID, use_numpy=False)
    assert a.makespans == b.makespans
    assert a.total_stall_times == b.total_stall_times


def test_grid_scalar_fallback_is_exact():
    """With max_tapes=0 every point takes the scalar-replay fallback."""
    prog = compile_programs(_flood, 8)
    gr = evaluate_grid(prog, GRID[:6], max_tapes=0)
    assert gr.tapes == 0 and gr.fallbacks == 6
    full = evaluate_grid(prog, GRID[:6], max_tapes=64)
    assert gr.makespans == full.makespans
    assert gr.total_stall_times == full.total_stall_times


def test_grid_rejects_mismatched_p():
    prog = compile_programs(_bcast, 4)
    with pytest.raises(ValueError, match="group grid points by P"):
        evaluate_grid(prog, [BASE])


# ----------------------------------------------------------------------
# Backend selection and refusal
# ----------------------------------------------------------------------


def test_backend_names():
    assert BACKENDS == ("machine", "compiled", "auto")
    with pytest.raises(ValueError, match="must be one of"):
        resolve_backend("vectorized", latency=None, fabric=None)


def test_backend_machine_always_allowed():
    lat = UniformLatency(6.0)
    assert resolve_backend("machine", latency=lat, fabric=None) == "machine"


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_refuses_nondeterministic_latency(backend):
    lat = UniformLatency(6.0)
    assert backend_ineligibility(lat, None) is not None
    with pytest.raises(ValueError, match="nondeterministic|UniformLatency"):
        resolve_backend(backend, latency=lat, fabric=None)


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_refuses_topology_fabric(backend):
    fabric = TopologyFabric.ring(8, L=6)
    assert backend_ineligibility(None, fabric) is not None
    with pytest.raises(ValueError):
        resolve_backend(backend, latency=None, fabric=fabric)


def test_backend_accepts_latency_fabric():
    fabric = LatencyFabric(FixedLatency(6.0))
    assert backend_ineligibility(None, fabric) is None
    assert (
        resolve_backend("auto", latency=None, fabric=fabric) == "compiled"
    )


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_refuses_fault_plan(backend):
    """Compiled schedules assume fault-free execution: a FaultPlan (or a
    heartbeat detector) must be a loud ValueError, like lossy fabrics —
    never a silent fall back to the machine."""
    from repro.sim.faults import CrashStop, FaultPlan, HeartbeatConfig

    plan = FaultPlan([CrashStop(1, 10.0)])
    assert backend_ineligibility(fault_plan=plan) is not None
    with pytest.raises(ValueError, match="FaultPlan.*fault-free"):
        resolve_backend(backend, fault_plan=plan)
    hb = HeartbeatConfig(period=8.0, timeout=24.0)
    assert backend_ineligibility(heartbeat=hb) is not None
    with pytest.raises(ValueError, match="heartbeat"):
        resolve_backend(backend, heartbeat=hb)
    # A machine backend accepts both; no-fault configs stay eligible.
    assert resolve_backend("machine", fault_plan=plan, heartbeat=hb) == "machine"
    assert backend_ineligibility(fault_plan=None, heartbeat=None) is None


def test_grid_map_refuses_fault_plan_on_auto():
    from repro.sim.faults import CrashStop, FaultPlan

    plan = FaultPlan([CrashStop(1, 10.0)])
    with pytest.raises(ValueError, match="backend='machine'"):
        grid_map(_bcast, [BASE], backend="auto", fault_plan=plan)


def test_grid_map_machine_runs_fault_plan():
    """backend='machine' executes the plan: the crash changes the
    makespan relative to the fault-free run of the same grid point."""
    from repro.sim.faults import CrashStop, FaultPlan

    plan = FaultPlan([CrashStop(3, 0.0)])
    # The broadcast factory wedges without its rank-3 subtree, so use a
    # root-only stream that rank 3's crash merely truncates.
    def prog(rank: int, P: int):
        if rank == 3:
            for _ in range(4):
                yield Send(0)
            return None
        if rank == 0:
            got = 0
            while got < 4:
                m = yield Recv(timeout=200.0)
                if m is None:
                    break
                got += 1
            return got
        return None
        yield

    [(clean, _)] = grid_map(prog, [BASE], backend="machine")
    [(faulty, _)] = grid_map(
        prog, [BASE], backend="machine", fault_plan=plan
    )
    assert faulty != clean


def test_grid_map_refuses_loudly_not_silently():
    """The refusal surfaces from grid_map itself, before any work."""
    with pytest.raises(ValueError):
        grid_map(_bcast, [BASE], backend="auto", latency=UniformLatency(6.0))
    with pytest.raises(ValueError):
        grid_map(
            _bcast, [BASE], backend="compiled",
            fabric=TopologyFabric.ring(8, L=6),
        )


def test_grid_map_parity_mixed_p():
    """grid_map groups by P, compiles per group, merges in order."""
    grid = [
        LogPParams(L=float(L), o=2, g=float(g), P=P)
        for P in (4, 8, 5)
        for L in (2, 6, 11)
        for g in (1, 4)
    ]
    compiled = grid_map(_bcast, grid, backend="compiled")
    machine = grid_map(_bcast, grid, backend="machine")
    assert compiled == machine


def test_grid_map_auto_falls_back_only_on_compile_error():
    compiled = grid_map(_now_prog, [LogPParams(L=4, o=1, g=2, P=2)],
                        backend="auto")
    machine = grid_map(_now_prog, [LogPParams(L=4, o=1, g=2, P=2)],
                       backend="machine")
    assert compiled == machine
    with pytest.raises(CompileError):
        grid_map(_now_prog, [LogPParams(L=4, o=1, g=2, P=2)],
                 backend="compiled")
