"""The compiled DAG evaluator: bit-identity, grids, refusal semantics.

The contract under test is the one the fuzz harness enforces at scale
(``repro.sim.fuzz`` check 5): for any deterministic fixed-latency
schedule, the compiled evaluator — scalar or vectorized grid replay —
produces *exactly* what the event machine produces.  Every comparison
here is ``==``; there are no tolerances to hide behind.

Also covered: the machine-kwarg variants the evaluator mirrors
(capacity override, ``enforce_capacity=False``, ``hw_barrier_cost``,
``merge_overhead_into_gap`` parameter sets, LogGP long messages),
capacity-stall accounting cross-checked through ``stall_report()``,
numpy-vs-pure-python replay parity, the seed-axis differential (seeded
latency draws replayed as per-column tape inputs, pinned bit-identical
over 100 seeds x 3 fuzz families), TopologyFabric per-hop lowering on
the Section 5 topologies, branch-splitting for bounded ``Now``
programs, and the backend selection rules: ``compiled``/``auto``
refuse load-dependent timing (contention, loss, faults) loudly instead
of silently falling back, while seeded models and deterministic routed
fabrics compile.
"""

from __future__ import annotations

import pytest

from repro.core import LogPParams
from repro.core.loggp import LogGPParams
from repro.sim import (
    Barrier,
    Compute,
    FixedLatency,
    LogPMachine,
    Now,
    Recv,
    Send,
    UniformLatency,
)
from repro.sim.compiled import (
    BACKENDS,
    CompileError,
    TimingDependentError,
    backend_ineligibility,
    compile_programs,
    evaluate,
    evaluate_grid,
    evaluate_seed_grid,
    resolve_backend,
)
from repro.sim.fuzz import LATENCIES, make_case
from repro.sim.net import LatencyFabric, TopologyFabric
from repro.sim.sweep import GridMapReport, grid_map

BASE = LogPParams(L=6, o=2, g=4, P=8)


# ----------------------------------------------------------------------
# Program factories
# ----------------------------------------------------------------------


def _bcast(rank: int, P: int):
    """Pipelined chain broadcast of 4 items: P-generic, stall-prone."""

    def run():
        for idx in range(4):
            if rank > 0:
                msg = yield Recv(tag=("it", idx))
                val = msg.payload
            else:
                val = idx
            if rank < P - 1:
                yield Send(rank + 1, payload=val, tag=("it", idx))
        return rank

    return run()


def _flood(rank: int, P: int):
    """Many-to-one flood: deep in the capacity-stall regime."""

    def run():
        if rank == 0:
            for _ in range(6 * (P - 1)):
                yield Recv()
            return None
        for _ in range(6):
            yield Send(0)
        return None

    return run()


def _barrier_prog(rank: int, P: int):
    def run():
        yield Compute(rank + 1)
        yield Barrier()
        if rank == 0:
            yield Send(1, payload="after")
        elif rank == 1:
            yield Recv()
        return rank

    return run()


def _loggp_prog(rank: int, P: int):
    """Long (multi-word) messages: exercises the LogGP G term."""

    def run():
        if rank == 0:
            yield Send(1, words=64, payload="bulk")
            yield Send(1, words=1, payload="short")
            return None
        if rank == 1:
            yield Recv()
            yield Recv()
        return None

    return run()


def _now_prog(rank: int, P: int):
    def run():
        t = yield Now()
        yield Compute(t + 1)
        return None

    return run()


# ----------------------------------------------------------------------
# Scalar differential
# ----------------------------------------------------------------------


def _assert_matches(factory, params, **kw) -> None:
    """Machine and compiled evaluator agree exactly on every shared field."""
    machine = LogPMachine(
        params, latency=FixedLatency(params.L), trace=False, **kw
    ).run(factory)
    comp = evaluate(
        compile_programs(factory, params.P),
        params,
        collect_stalls=True,
        **kw,
    )
    assert comp.makespan == machine.makespan
    assert comp.total_messages == machine.total_messages
    assert comp.total_stall_time == machine.total_stall_time
    assert comp.events_run == machine.events_run
    assert tuple(comp.values) == tuple(machine.values())
    assert comp.finished_at == [r.finished_at for r in machine.results]
    assert comp.sends == [r.sends for r in machine.results]
    assert comp.receives == [r.receives for r in machine.results]
    assert comp.stall_time == [r.stall_time for r in machine.results]


@pytest.mark.parametrize("factory", [_bcast, _flood, _barrier_prog])
@pytest.mark.parametrize(
    "params",
    [
        BASE,
        LogPParams(L=12, o=1, g=1, P=6),  # high capacity, no stalls
        LogPParams(L=9, o=0.5, g=3, P=4),  # fractional overhead
    ],
)
def test_scalar_differential(factory, params):
    _assert_matches(factory, params)


@pytest.mark.parametrize("seed", range(12))
def test_scalar_differential_fuzz_families(seed):
    """A thin slice of the fuzz differential, pinned into tier 1."""
    case = make_case(seed)
    _assert_matches(case.factory, case.params)


def test_capacity_override_and_disabled():
    _assert_matches(_flood, BASE, capacity=2)
    _assert_matches(_flood, BASE, capacity=1)
    _assert_matches(_flood, BASE, enforce_capacity=False)


def test_hw_barrier_cost():
    _assert_matches(_barrier_prog, BASE, hw_barrier_cost=3.5)


def test_merge_overhead_into_gap_variant():
    """The Section 3.1 ``o := max(o, g)`` analysis sets (g ignored, so
    capacity degenerates) still evaluate bit-identically."""
    merged = BASE.merge_overhead_into_gap()
    _assert_matches(_bcast, merged, enforce_capacity=False)


def test_loggp_long_messages():
    p = LogGPParams(L=6, o=2, g=4, G=0.5, P=2)
    machine = LogPMachine(p, trace=False).run(_loggp_prog)
    comp = evaluate(compile_programs(_loggp_prog, 2), p)
    assert comp.makespan == machine.makespan
    assert comp.total_messages == machine.total_messages


def test_stall_report_cross_check():
    """Capacity-stall timing agrees with MachineResult.stall_report()."""
    machine = LogPMachine(
        BASE, latency=FixedLatency(BASE.L), trace=True
    ).run(_flood)
    comp = evaluate(
        compile_programs(_flood, BASE.P), BASE, collect_stalls=True
    )
    assert comp.total_stall_time > 0  # the regime is actually exercised
    assert comp.stall_events == machine.stall_events
    assert comp.stall_report() == machine.stall_report()


def test_compile_error_on_timing_dependence():
    """Bare lowering (no clock oracle) still refuses ``Now`` — with the
    dedicated subclass grid_map routes to the branch-splitting path."""
    assert issubclass(TimingDependentError, CompileError)
    with pytest.raises(TimingDependentError, match="Now"):
        compile_programs(_now_prog, 2)


# ----------------------------------------------------------------------
# Grid replay
# ----------------------------------------------------------------------

GRID = [
    LogPParams(L=float(L), o=o, g=float(g), P=8)
    for L in (1, 3, 6, 9, 14)
    for g in (1, 2, 4, 7)
    for o in (0.5, 2.0)
]


@pytest.mark.parametrize("factory", [_bcast, _flood])
def test_grid_matches_machine_per_point(factory):
    gr = evaluate_grid(compile_programs(factory, 8), GRID, max_tapes=64)
    assert gr.fallbacks == 0  # every point tape-covered, none punted
    for i, p in enumerate(GRID):
        res = LogPMachine(p, latency=FixedLatency(p.L), trace=False).run(
            factory
        )
        assert (gr.makespans[i], gr.total_stall_times[i]) == (
            res.makespan,
            res.total_stall_time,
        ), f"grid point {i} ({p.L}, {p.o}, {p.g}) diverged"


def test_grid_numpy_python_replay_parity():
    pytest.importorskip("numpy")
    prog = compile_programs(_bcast, 8)
    a = evaluate_grid(prog, GRID, use_numpy=True)
    b = evaluate_grid(prog, GRID, use_numpy=False)
    assert a.makespans == b.makespans
    assert a.total_stall_times == b.total_stall_times


def test_grid_scalar_fallback_is_exact():
    """With max_tapes=0 every point takes the scalar-replay fallback."""
    prog = compile_programs(_flood, 8)
    gr = evaluate_grid(prog, GRID[:6], max_tapes=0)
    assert gr.tapes == 0 and gr.fallbacks == 6
    full = evaluate_grid(prog, GRID[:6], max_tapes=64)
    assert gr.makespans == full.makespans
    assert gr.total_stall_times == full.total_stall_times


def test_grid_rejects_mismatched_p():
    prog = compile_programs(_bcast, 4)
    with pytest.raises(ValueError, match="group grid points by P"):
        evaluate_grid(prog, [BASE])


# ----------------------------------------------------------------------
# Backend selection and refusal
# ----------------------------------------------------------------------


def test_backend_names():
    assert BACKENDS == ("machine", "compiled", "auto")
    with pytest.raises(ValueError, match="must be one of"):
        resolve_backend("vectorized", latency=None, fabric=None)


def test_backend_machine_always_allowed():
    lat = UniformLatency(6.0)
    assert resolve_backend("machine", latency=lat, fabric=None) == "machine"


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_accepts_seeded_latency(backend):
    """Seeded draws replay exactly under the reset() contract, so any
    LatencyModel is compiled-eligible since the seed-axis lowering."""
    lat = UniformLatency(6.0, lo_frac=0.25, seed=3)
    assert backend_ineligibility(lat, None) is None
    assert resolve_backend(backend, latency=lat, fabric=None) == "compiled"


def test_backend_accepts_deterministic_topology_fabric():
    fabric = TopologyFabric.ring(8, L=6)
    assert backend_ineligibility(None, fabric) is None
    assert (
        resolve_backend("auto", latency=None, fabric=fabric) == "compiled"
    )


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_refuses_load_dependent_fabric(backend):
    """Contention queues resolve delivery from runtime load — still
    machine-only, and the refusal reason names the clause."""
    from repro.sim.net import ContentionFabric

    fabric = ContentionFabric.ring(8, L=8)
    reason = backend_ineligibility(None, fabric)
    assert reason is not None and "runtime load" in reason
    with pytest.raises(ValueError, match="runtime load"):
        resolve_backend(backend, latency=None, fabric=fabric)


def test_backend_accepts_latency_fabric():
    fabric = LatencyFabric(FixedLatency(6.0))
    assert backend_ineligibility(None, fabric) is None
    assert (
        resolve_backend("auto", latency=None, fabric=fabric) == "compiled"
    )


@pytest.mark.parametrize("backend", ["compiled", "auto"])
def test_backend_refuses_fault_plan(backend):
    """Compiled schedules assume fault-free execution: a FaultPlan (or a
    heartbeat detector) must be a loud ValueError, like lossy fabrics —
    never a silent fall back to the machine."""
    from repro.sim.faults import CrashStop, FaultPlan, HeartbeatConfig

    plan = FaultPlan([CrashStop(1, 10.0)])
    assert backend_ineligibility(fault_plan=plan) is not None
    with pytest.raises(ValueError, match="FaultPlan.*fault-free"):
        resolve_backend(backend, fault_plan=plan)
    hb = HeartbeatConfig(period=8.0, timeout=24.0)
    assert backend_ineligibility(heartbeat=hb) is not None
    with pytest.raises(ValueError, match="heartbeat"):
        resolve_backend(backend, heartbeat=hb)
    # A machine backend accepts both; no-fault configs stay eligible.
    assert resolve_backend("machine", fault_plan=plan, heartbeat=hb) == "machine"
    assert backend_ineligibility(fault_plan=None, heartbeat=None) is None


def test_grid_map_refuses_fault_plan_on_auto():
    from repro.sim.faults import CrashStop, FaultPlan

    plan = FaultPlan([CrashStop(1, 10.0)])
    with pytest.raises(ValueError, match="backend='machine'"):
        grid_map(_bcast, [BASE], backend="auto", fault_plan=plan)


def test_grid_map_machine_runs_fault_plan():
    """backend='machine' executes the plan: the crash changes the
    makespan relative to the fault-free run of the same grid point."""
    from repro.sim.faults import CrashStop, FaultPlan

    plan = FaultPlan([CrashStop(3, 0.0)])
    # The broadcast factory wedges without its rank-3 subtree, so use a
    # root-only stream that rank 3's crash merely truncates.
    def prog(rank: int, P: int):
        if rank == 3:
            for _ in range(4):
                yield Send(0)
            return None
        if rank == 0:
            got = 0
            while got < 4:
                m = yield Recv(timeout=200.0)
                if m is None:
                    break
                got += 1
            return got
        return None
        yield

    [(clean, _)] = grid_map(prog, [BASE], backend="machine")
    [(faulty, _)] = grid_map(
        prog, [BASE], backend="machine", fault_plan=plan
    )
    assert faulty != clean


def test_grid_map_refuses_loudly_not_silently():
    """The refusal surfaces from grid_map itself, before any work."""
    from repro.sim.net import ContentionFabric

    for backend in ("auto", "compiled"):
        with pytest.raises(ValueError, match="runtime load"):
            grid_map(
                _bcast, [BASE], backend=backend,
                fabric=ContentionFabric.ring(8, L=8),
            )


def test_grid_map_parity_mixed_p():
    """grid_map groups by P, compiles per group, merges in order."""
    grid = [
        LogPParams(L=float(L), o=2, g=float(g), P=P)
        for P in (4, 8, 5)
        for L in (2, 6, 11)
        for g in (1, 4)
    ]
    compiled = grid_map(_bcast, grid, backend="compiled")
    machine = grid_map(_bcast, grid, backend="machine")
    assert compiled == machine


def test_grid_map_now_program_branch_splits_on_both_backends():
    """Bounded timing dependence no longer forces the machine: both
    ``auto`` and ``compiled`` lower the Now-observing program per
    branch region and stay bit-identical to the machine."""
    grid = [
        LogPParams(L=4, o=1, g=2, P=2),
        LogPParams(L=9, o=1, g=2, P=2),
    ]
    machine = grid_map(_now_prog, grid, backend="machine")
    assert grid_map(_now_prog, grid, backend="auto") == machine
    assert grid_map(_now_prog, grid, backend="compiled") == machine


# ----------------------------------------------------------------------
# Seed-axis replay
# ----------------------------------------------------------------------

N_SEEDS = 100


def _distinct_family_cases(n: int = 3) -> list:
    """The first fuzz case of each of ``n`` distinct program families."""
    cases, seen = [], set()
    for seed in range(200):
        case = make_case(seed)
        if case.family not in seen:
            seen.add(case.family)
            cases.append(case)
            if len(cases) == n:
                return cases
    raise AssertionError(f"fewer than {n} families in 200 fuzz seeds")


@pytest.mark.parametrize("lat_name", ["uniform", "jittered"])
def test_seed_grid_differential_fuzz_families(lat_name):
    """The seed-axis pin: every (point, seed) column of
    evaluate_seed_grid equals one machine run with a fresh same-seed
    latency model — 100 seeds x 3 fuzz families, exact equality."""
    make = LATENCIES[lat_name]
    seeds = range(N_SEEDS)
    for case in _distinct_family_cases():
        prog = compile_programs(case.factory, case.params.P)
        res = evaluate_seed_grid(
            prog, [case.params], seeds, lambda p, s: make(p.L, s)
        )
        assert (res.n_points, res.n_seeds) == (1, N_SEEDS)
        assert not res.divergent
        for s in seeds:
            mres = LogPMachine(
                case.params, latency=make(case.params.L, s), trace=False
            ).run(case.factory)
            assert (res.makespans[s], res.total_stall_times[s]) == (
                mres.makespan,
                mres.total_stall_time,
            ), f"family {case.family} seed {s} diverged under {lat_name}"


def test_seed_grid_numpy_python_replay_parity():
    pytest.importorskip("numpy")
    make = LATENCIES["jittered"]
    for case in _distinct_family_cases():
        prog = compile_programs(case.factory, case.params.P)
        a, b = (
            evaluate_seed_grid(
                prog,
                [case.params],
                range(N_SEEDS),
                lambda p, s: make(p.L, s),
                use_numpy=use,
            )
            for use in (True, False)
        )
        assert a.makespans == b.makespans, case.family
        assert a.total_stall_times == b.total_stall_times, case.family


def test_seed_grid_point_major_layout():
    """Column p * n_seeds + s: two points x three seeds line up with
    per-point machine runs in point-major order."""
    make = LATENCIES["uniform"]
    grid = [
        LogPParams(L=6.0, o=2.0, g=4.0, P=4),
        LogPParams(L=9.0, o=1.0, g=3.0, P=4),
    ]
    seeds = [3, 11, 42]
    res = evaluate_seed_grid(
        compile_programs(_bcast, 4), grid, seeds, lambda p, s: make(p.L, s)
    )
    want = []
    for p in grid:
        for s in seeds:
            mres = LogPMachine(
                p, latency=make(p.L, s), trace=False
            ).run(_bcast)
            want.append((mres.makespan, mres.total_stall_time))
    assert list(zip(res.makespans, res.total_stall_times)) == want


def test_grid_map_seeded_latency_shared_model_parity():
    """grid_map's shared seeded model equals a fresh same-seed model per
    point: both backends reset the model before every point."""
    grid = [LogPParams(L=4.0, o=o, g=2.0, P=4) for o in (0.5, 1.0, 2.0)]
    compiled = grid_map(
        _bcast,
        grid,
        backend="compiled",
        latency=UniformLatency(4.0, lo_frac=0.25, seed=5),
    )
    want = []
    for p in grid:
        mres = LogPMachine(
            p,
            latency=UniformLatency(4.0, lo_frac=0.25, seed=5),
            trace=False,
        ).run(_bcast)
        want.append((mres.makespan, mres.total_stall_time))
    assert compiled == want


# ----------------------------------------------------------------------
# TopologyFabric lowering
# ----------------------------------------------------------------------


def _section5_fabrics() -> list:
    from repro.topology import FatTree, Mesh2D

    return [
        pytest.param(TopologyFabric.ring(8, L=6), id="ring8"),
        pytest.param(
            TopologyFabric.for_topology(Mesh2D(16), L=6), id="mesh2d16"
        ),
        pytest.param(
            TopologyFabric.for_topology(FatTree(16), L=6), id="fattree16"
        ),
    ]


@pytest.mark.parametrize("fabric", _section5_fabrics())
@pytest.mark.parametrize("factory", [_bcast, _flood])
def test_topology_fabric_grid_parity(fabric, factory):
    """Deterministic per-hop flights lower exactly: compiled grids over
    ring / mesh / fat-tree match the machine point for point."""
    grid = [
        LogPParams(L=6.0, o=o, g=float(g), P=fabric.P)
        for o in (0.5, 2.0)
        for g in (1, 4)
    ]
    compiled = grid_map(factory, grid, backend="compiled", fabric=fabric)
    machine = grid_map(factory, grid, backend="machine", fabric=fabric)
    assert compiled == machine


def test_topology_fabric_scalar_evaluate_parity():
    """The scalar evaluator path with a fabric: same flights, same
    makespan, message counts intact."""
    fabric = TopologyFabric.ring(8, L=6)
    machine = LogPMachine(BASE, fabric=fabric, trace=False).run(_bcast)
    comp = evaluate(
        compile_programs(_bcast, 8), BASE, fabric=fabric,
        collect_stalls=True,
    )
    assert comp.makespan == machine.makespan
    assert comp.total_stall_time == machine.total_stall_time
    assert comp.total_messages == machine.total_messages


# ----------------------------------------------------------------------
# Branch-splitting fallback and dispatch reporting
# ----------------------------------------------------------------------


def _fragile_now(rank: int, P: int):
    """Lowers only at the true clock: the provisional pass (assumed
    t=0) drives ``Compute`` negative, so branch-splitting refuses."""

    def run():
        yield Compute(2.0)
        t = yield Now()
        yield Compute(t - 1.0)
        return t

    return run()


def test_forked_fallback_refusal_semantics():
    """When branch-splitting cannot lower the program, ``auto`` degrades
    to the machine carrying the CompileError reason; ``compiled`` raises
    the same error instead of silently running the slow path."""
    pts = [LogPParams(L=4, o=1, g=2, P=2)]
    report = GridMapReport()
    auto = grid_map(_fragile_now, pts, backend="auto", report=report)
    assert auto == grid_map(_fragile_now, pts, backend="machine")
    [group] = report.groups
    assert group.path == "machine"
    assert "assumed clock" in group.reason
    assert report.degraded == [group]
    with pytest.raises(CompileError, match="assumed clock"):
        grid_map(_fragile_now, pts, backend="compiled")


def test_grid_map_report_names_dispatch_paths():
    """The report distinguishes straight-line tapes from branch-split
    regions, and records tape counts for both."""
    report = GridMapReport()
    grid_map(_bcast, [BASE], backend="auto", report=report)
    assert report.backend == "compiled"
    [group] = report.groups
    assert (group.path, group.P, group.n_points) == ("compiled", 8, 1)
    assert group.tapes >= 1 and group.reason == ""

    report = GridMapReport()
    grid = [LogPParams(L=4, o=1, g=2, P=2), LogPParams(L=9, o=1, g=2, P=2)]
    res = grid_map(_now_prog, grid, backend="auto", report=report)
    [group] = report.groups
    assert group.path == "compiled-forked" and group.tapes >= 1
    assert not report.degraded
    assert res == grid_map(_now_prog, grid, backend="machine")


def test_compile_at_requires_factory():
    """Per-pass recompilation needs fresh generators: a pre-built
    sequence is refused up front, not half-consumed."""
    from repro.sim.compiled import compile_at

    gens = [_now_prog(r, 2) for r in range(2)]
    with pytest.raises(CompileError, match="factory"):
        compile_at(gens, 2, LogPParams(L=4, o=1, g=2, P=2))
