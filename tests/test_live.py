"""The live backend: real processes, exact invariants, banded timing.

Three layers of assurance, mirroring the package structure:

1. **Transport/unit** — frame codec roundtrips, tolerance-band math,
   and the exact/timing clause split (the ``REPRO_LIVE_SLACK`` knob can
   loosen wall-clock checks but can never touch an ordering clause).
2. **Doctored logs** — the validator's exact clauses are checked
   *negatively*: hand-built event logs with a duplicated delivery, a
   reordered sequence, a phantom message, a causality inversion, and a
   broken barrier each fire exactly the clause that names the defect.
3. **Real runs** — registry families on real ranks over localhost TCP:
   exact clauses hold, values match a simulator replay bit for bit,
   ``Recv`` timeouts and ``Poll`` keep their contracts, calibration
   returns positive parameters, and a SIGKILLed rank is detected by
   the heartbeat detector (and only it).

Wall-clock policy: nothing here asserts a tight timing bound — live
timing checks flow through :func:`repro.live.validate_live.live_slack`
and are warnings by design.  A test failure in this file means a real
ordering/delivery/detection defect, not a slow CI host.
"""

import os
import pickle
import signal
import socket
import threading

import pytest

from repro.core import LogPParams
from repro.core.schedule import MessageRecord, Schedule
from repro.live import (
    EXACT_CLAUSES,
    TIMING_CLAUSES,
    LiveConfig,
    family_program,
    fit_live,
    live_slack,
    run_chaos,
    run_live,
    validate_live,
)
from repro.live.logs import LiveEvent, LiveResult
from repro.live.transport import recv_frame, send_frame
from repro.machines.fit import MeasuredLogP
from repro.sim.program import Now, Poll, ProgramResult, Recv
from repro.sim.validate import ToleranceBand, validate_schedule

_CFG = LiveConfig(deadline_s=30.0)

#: Synthetic host fit: validate_live needs *a* parameter scale for its
#: bands and replay; exact clauses are independent of the values.
_FITTED = MeasuredLogP(
    o=5.0, L=5.0, effective_g=1.0, pipeline_depth=2, round_trip=30.0
)


# ----------------------------------------------------------------------
# Picklable live programs used by the real-run tests.
# ----------------------------------------------------------------------


class _TimeoutPollProgram:
    """Rank 0 probes an empty mailbox: bounded Recv, then Poll, then Now."""

    def __call__(self, rank: int, P: int):
        def run():
            if rank == 0:
                got = yield Recv(tag="never", timeout=5.0)
                pending = yield Poll()
                t0 = yield Now()
                t1 = yield Now()
                return (got, pending, t1 >= t0)
            return None

        return run()


class _BarrierProgram:
    """Everyone crosses two barriers with a send phase in between."""

    def __call__(self, rank: int, P: int):
        from repro.sim.program import Barrier, Send

        def run():
            yield Barrier()
            if rank == 0:
                for peer in range(1, P):
                    yield Send(peer, payload=rank)
            else:
                m = yield Recv()
                assert m.payload == 0
            yield Barrier()
            return rank

        return run()


# ----------------------------------------------------------------------
# 1. Transport and tolerance units (no processes spawned).
# ----------------------------------------------------------------------


class TestFrames:
    def test_roundtrip_preserves_objects(self):
        a, b = socket.socketpair()
        try:
            payload = ("data", 3, {"k": [1, 2]}, None)
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_concurrent_sends_stay_framed(self):
        a, b = socket.socketpair()
        lock = threading.Lock()
        n = 50
        try:
            threads = [
                threading.Thread(
                    target=lambda i=i: send_frame(a, ("msg", i), lock)
                )
                for i in range(n)
            ]
            for t in threads:
                t.start()
            got = sorted(recv_frame(b)[1] for _ in range(n))
            for t in threads:
                t.join()
            assert got == list(range(n))
        finally:
            a.close()
            b.close()

    def test_eof_raises_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()


class TestToleranceBand:
    def test_slack_is_abs_plus_rel_times_scale(self):
        band = ToleranceBand(rel=0.5, abs=2.0)
        assert band.slack(10.0) == 2.0 + 5.0
        assert band.slack(0.0) == 2.0

    def test_negative_tolerances_refuse(self):
        with pytest.raises(ValueError):
            ToleranceBand(rel=-0.1)
        with pytest.raises(ValueError):
            ToleranceBand(abs=-1.0)

    def test_band_loosens_latency_but_none_stays_exact(self):
        p = LogPParams(L=6.0, o=2.0, g=4.0, P=2)
        sched = Schedule(params=p)
        sched.add_message(
            MessageRecord(
                src=0, dst=1, send_start=0.0, inject=2.0,
                arrive=9.5, recv_start=9.5, recv_end=11.5,
            )
        )
        exact = validate_schedule(sched, check_capacity=False)
        assert any(v.rule == "latency-bound" for v in exact.violations)
        banded = validate_schedule(
            sched, check_capacity=False, band=ToleranceBand(rel=0.5)
        )
        assert not any(v.rule == "latency-bound" for v in banded.violations)


class TestSlackKnob:
    """The single-knob contract: slack scales timing, never ordering."""

    def test_exact_and_timing_clauses_are_disjoint(self):
        assert not (EXACT_CLAUSES & TIMING_CLAUSES)

    def test_ordering_and_delivery_clauses_are_pinned_exact(self):
        # The clauses that make a live trace trustworthy: no tolerance
        # knob may ever apply to them.
        for rule in (
            "fifo",
            "exactly-once",
            "phantom-delivery",
            "message-loss",
            "recv-after-send",
            "barrier-coherence",
            "busy-overlap",
            "value-parity",
            "message-count",
        ):
            assert rule in EXACT_CLAUSES
            assert rule not in TIMING_CLAUSES

    def test_wall_clock_clauses_are_banded(self):
        for rule in (
            "send-gap",
            "overhead",
            "latency-bound",
            "makespan-band",
            "recv-after-send-wall",
        ):
            assert rule in TIMING_CLAUSES

    def test_env_knob_parses_and_refuses_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_SLACK", "2.5")
        assert live_slack() == 2.5
        monkeypatch.setenv("REPRO_LIVE_SLACK", "0")
        with pytest.raises(ValueError):
            live_slack()
        monkeypatch.delenv("REPRO_LIVE_SLACK")
        assert live_slack() > 0


# ----------------------------------------------------------------------
# 2. Doctored logs: each exact clause fires on the defect it names.
# ----------------------------------------------------------------------


def _mk_result(rank0_events, rank1_events, killed=()):
    return LiveResult(
        P=2,
        config=_CFG,
        makespan=100.0,
        results=[ProgramResult(rank=0), ProgramResult(rank=1)],
        rank_events=[list(rank0_events), list(rank1_events)],
        exitcodes=[0, 0],
        killed=list(killed),
    )


def _send_pair(seq, t, clock):
    """A send_commit/wire_out pair at rank 0 for message seq -> rank 1."""
    return [
        LiveEvent(t, 0, "send_commit", clock, peer=1, seq=seq),
        LiveEvent(t + 1.0, 0, "wire_out", clock + 1, peer=1, seq=seq),
    ]


def _delivery(seq, t, clock):
    return LiveEvent(t, 1, "delivery", clock, peer=0, seq=seq)


def _rules(result):
    return {v.rule for v in validate_live(result, _FITTED).exact_violations}


class TestDoctoredLogs:
    def test_clean_log_has_no_exact_violations(self):
        r = _mk_result(
            _send_pair(0, 1.0, 1) + _send_pair(1, 10.0, 3),
            [_delivery(0, 5.0, 10), _delivery(1, 14.0, 12)],
        )
        assert _rules(r) == set()

    def test_duplicate_delivery_fires_exactly_once(self):
        r = _mk_result(
            _send_pair(0, 1.0, 1),
            [_delivery(0, 5.0, 10), _delivery(0, 6.0, 11)],
        )
        assert "exactly-once" in _rules(r)

    def test_reordered_delivery_fires_fifo(self):
        r = _mk_result(
            _send_pair(0, 1.0, 1) + _send_pair(1, 2.5, 3),
            [_delivery(1, 6.0, 10), _delivery(0, 7.0, 11)],
        )
        assert "fifo" in _rules(r)

    def test_unsent_delivery_fires_phantom(self):
        r = _mk_result([], [_delivery(0, 5.0, 10)])
        assert "phantom-delivery" in _rules(r)

    def test_killed_sender_is_exempt_from_phantom(self):
        r = _mk_result([], [_delivery(0, 5.0, 10)], killed=[0])
        assert "phantom-delivery" not in _rules(r)

    def test_undelivered_wire_message_fires_message_loss(self):
        r = _mk_result(_send_pair(0, 1.0, 1), [])
        assert "message-loss" in _rules(r)

    def test_causality_inversion_fires_recv_after_send(self):
        # Delivery's Lamport clock at or below the send commit's.
        r = _mk_result(
            _send_pair(0, 1.0, 5),
            [_delivery(0, 5.0, 4)],
        )
        assert "recv-after-send" in _rules(r)

    def test_early_barrier_exit_fires_barrier_coherence(self):
        def cross(rank, enter_t, exit_t, clock):
            return [
                LiveEvent(enter_t, rank, "barrier_enter", clock, seq=0),
                LiveEvent(exit_t, rank, "barrier_exit", clock + 1, seq=0),
            ]

        # Rank 0 exits at t=2 while rank 1 only enters at t=8.
        r = _mk_result(cross(0, 1.0, 2.0, 1), cross(1, 8.0, 9.0, 1))
        assert "barrier-coherence" in _rules(r)

    def test_mismatched_barrier_sequences_fire(self):
        r = _mk_result(
            [
                LiveEvent(1.0, 0, "barrier_enter", 1, seq=0),
                LiveEvent(2.0, 0, "barrier_exit", 2, seq=0),
            ],
            [],
        )
        assert "barrier-coherence" in _rules(r)


# ----------------------------------------------------------------------
# 3. Real runs: processes, sockets, signals.
# ----------------------------------------------------------------------


class TestLiveRuns:
    def test_stream_on_two_ranks_delivers_everything(self):
        r = run_live(family_program("stream", {"k": 4}), 2, config=_CFG)
        assert r.exitcodes == [0, 0]
        assert r.total_messages == 4
        msgs = r.messages()
        assert [m.seq for m in msgs] == [0, 1, 2, 3]
        assert all(
            m.delivery is not None and m.recv_return is not None for m in msgs
        )
        v = validate_live(
            r, _FITTED, programs=family_program("stream", {"k": 4})
        )
        assert v.exact_ok, v.summary()

    def test_bcast_tree_matches_simulator_values_exactly(self):
        marker = family_program("bcast_tree", {"k": 4})
        r = run_live(marker, 4, config=_CFG)
        v = validate_live(r, _FITTED, programs=marker)
        assert v.exact_ok, v.summary()
        # The differential clause ran (values + message counts compared
        # against a simulator replay) and the payloads came through.
        assert r.value(1) == list(range(4))
        assert v.predicted_makespan is not None

    def test_flood_exact_clauses_hold(self):
        marker = family_program("flood", {"k": 3})
        r = run_live(marker, 3, config=_CFG)
        v = validate_live(r, _FITTED, programs=marker)
        assert v.exact_ok, v.summary()
        assert r.total_messages == 6

    def test_barriers_are_coherent_and_values_return(self):
        r = run_live(_BarrierProgram(), 3, config=_CFG)
        assert r.values() == [0, 1, 2]
        v = validate_live(r, _FITTED)
        assert v.exact_ok, v.summary()
        for rank in range(3):
            barriers = [
                e.seq
                for e in r.rank_events[rank]
                if e.kind == "barrier_enter"
            ]
            assert barriers == [0, 1]

    def test_recv_timeout_and_poll_contracts(self):
        r = run_live(_TimeoutPollProgram(), 2, config=_CFG)
        got, pending, monotone = r.value(0)
        assert got is None  # bounded Recv on silence returns None
        assert pending == 0
        assert monotone
        kinds = {e.kind for e in r.rank_events[0]}
        assert "recv_timeout" in kinds and "poll" in kinds

    def test_unpicklable_program_refuses_loudly(self):
        captured = []

        def closure_factory(rank, P):  # a closure: not picklable
            captured.append(rank)
            return iter(())

        with pytest.raises(TypeError, match="picklable"):
            run_live(closure_factory, 2, config=_CFG)

    def test_unknown_family_refuses_in_parent(self):
        with pytest.raises(KeyError, match="unknown program family"):
            family_program("nope")


class TestCalibration:
    def test_probe_programs_pickle(self):
        from repro.machines.fit import (
            _CapacityProbe,
            _GapProbe,
            _OverheadProbe,
            _RoundTripProbe,
        )

        for probe in (
            _OverheadProbe(),
            _RoundTripProbe(2),
            _GapProbe(4),
            _CapacityProbe(2, 3, 1.0, 10.0),
        ):
            assert pickle.loads(pickle.dumps(probe)) is not None

    def test_fit_live_returns_positive_parameters(self):
        fitted = fit_live(3, _CFG, trials=1, measure_depth=False)
        assert fitted.o > 0
        assert fitted.round_trip > 0
        assert fitted.effective_g > 0
        params = fitted.as_params(4)
        assert params.L >= 0  # clamped even if the RTT decomposition dips
        assert params.P == 4

    def test_fit_needs_three_ranks(self):
        with pytest.raises(ValueError, match="P >= 3"):
            fit_live(2, _CFG)


class TestChaos:
    def test_sigkilled_rank_is_detected_by_heartbeat(self):
        outcome = run_chaos(3, config=_CFG)
        assert outcome.sigkilled, (
            f"victim exitcode {outcome.result.exitcodes[outcome.victim]}"
        )
        assert outcome.detected_by_all, (
            f"survivor suspect sets {outcome.suspects_by_rank}"
        )
        # Detection is by *timeout*, so it cannot precede the kill.
        for rank, t in outcome.detection_times.items():
            assert t > outcome.kill_at, (
                f"rank {rank} suspected the victim at {t}, before the "
                f"kill at {outcome.kill_at}"
            )
        # Survivors finish normally despite the corpse.
        for rank in range(3):
            if rank != outcome.victim:
                assert outcome.result.exitcodes[rank] == 0


class TestHostFingerprint:
    def test_fingerprint_identifies_the_host(self):
        from repro.hostinfo import host_fingerprint

        fp = host_fingerprint()
        assert fp["cpu_count"] == os.cpu_count()
        assert fp["python"].count(".") == 2
        assert fp["platform"]

    def test_bench_report_embeds_host(self):
        from repro.bench import run_all

        report = run_all(smoke=True, reps=1, only="engine")
        assert report["host"]["cpu_count"] == os.cpu_count()
        assert report["host"]["python"] == report["python"]


def test_sigkill_constant_matches_exitcode_convention():
    # multiprocessing reports a SIGKILLed child as -SIGKILL; the chaos
    # assertions rely on that convention.
    assert -signal.SIGKILL == -9
