"""Chaos harness, fault-aware validation, and fault-report edge cases.

The tier-1 pin for ISSUE 5's randomized acceptance sweep: a fixed seed
block of the chaos harness (``python -m repro.sim.chaos`` runs the full
500), plus directed tests for the fault-report corners a random sweep
only hits occasionally — crash at t=0, crash during a capacity stall,
recovery after the program already finished, and two simultaneous
crashes.
"""

from __future__ import annotations

import pytest

from repro.algorithms.broadcast import ft_heartbeat_config
from repro.core.params import LogPParams
from repro.sim import LogPMachine, Recv, Send
from repro.sim.chaos import (
    chaos_fault_plan,
    chaos_heartbeat,
    chaos_sweep,
    check_case_under_faults,
    is_lossy_seed,
    run_chaos_case,
)
from repro.sim.faults import (
    CrashRecover,
    CrashStop,
    FaultPlan,
    HeartbeatConfig,
)
from repro.sim.fuzz import make_case
from repro.sim.trace import FaultReport, SuspectEvent
from repro.sim.validate import validate_schedule


# ----------------------------------------------------------------------
# The chaos harness itself
# ----------------------------------------------------------------------


def test_chaos_fixed_seed_block():
    """Tier-1 pin: 48 seeds of the acceptance sweep, serial, zero
    violations, with every fault species actually exercised."""
    summary = chaos_sweep(range(48), workers=1)
    assert summary.ok, summary.failures[:5]
    assert summary.cases == 48
    assert summary.crashes > 0
    assert summary.recoveries > 0
    assert summary.suspects > 0
    assert summary.lossy_cases > 0


def test_chaos_latency_dominated_heartbeat_sizing():
    """Regression (sweep seed 452): with L several times the heartbeat
    period, the first beat is still in flight when a bare
    multiple-of-period timeout expires — the detector must not
    false-suspect a live rank at startup."""
    assert check_case_under_faults(make_case(452)) == []
    p = LogPParams(L=15.5, o=1.0, g=0.5, P=2)
    hb = chaos_heartbeat(p, horizon=1000.0)
    assert hb.timeout > 2.5 * hb.period + p.L


def test_chaos_plan_is_deterministic_per_seed():
    case = make_case(7)
    plan_a, hz_a = chaos_fault_plan(case)
    plan_b, hz_b = chaos_fault_plan(case)
    assert plan_a.events == plan_b.events
    assert hz_a == hz_b


def test_chaos_lossy_seed_composes_link_faults():
    seed = next(s for s in range(60) if is_lossy_seed(s) and s > 0)
    out = run_chaos_case(make_case(seed))
    assert out.lossy
    assert out.ok, out.failures


def test_ft_heartbeat_timeout_carries_flight_slack():
    p = LogPParams(L=6.0, o=2.0, g=4.0, P=8)
    hb = ft_heartbeat_config(p)
    assert hb.timeout == 2.5 * hb.period + p.L + 2.0 * p.o


# ----------------------------------------------------------------------
# Fault-aware validation
# ----------------------------------------------------------------------


def _send_twice_factory(rank: int, P: int):
    def gen():
        if rank == 0:
            yield Send(1)
            yield Send(1)
            return None
        for _ in range(2):
            yield Recv(timeout=100.0)
        return None

    return gen()


def test_fault_aware_validation_exempts_downtime_windows():
    """A recovered incarnation's first send may trail the dead
    incarnation's last send closer than max(g, o): a raw validation
    violation, exempted exactly when the plan is supplied."""
    p = LogPParams(L=4.0, o=1.0, g=4.0, P=2)
    plan = FaultPlan([CrashRecover(0, 1.2, 1.0)])
    res = LogPMachine(p, fault_plan=plan, trace=True).run(
        _send_twice_factory
    )
    raw = validate_schedule(res.schedule)
    assert any(v.rule == "send-gap" for v in raw.violations)
    aware = validate_schedule(res.schedule, fault_plan=plan)
    assert aware.ok, [str(v) for v in aware.violations]


def test_fault_aware_validation_still_enforces_outside_downtime():
    """The exemption is surgical: a fault-free run validated *with* a
    plan whose downtime never overlaps the schedule changes nothing."""
    p = LogPParams(L=4.0, o=1.0, g=4.0, P=2)
    res = LogPMachine(p, trace=True).run(_send_twice_factory)
    clean = validate_schedule(res.schedule)
    assert clean.ok
    distant = FaultPlan([CrashStop(0, 1e6)])
    assert validate_schedule(res.schedule, fault_plan=distant).ok


def test_suspicion_validation_requires_evidence():
    p = LogPParams(L=4.0, o=1.0, g=4.0, P=2)
    res = LogPMachine(p, trace=True).run(_send_twice_factory)
    hb = HeartbeatConfig(period=8.0, timeout=24.0)
    # Premature: only 5 cycles of silence, zero whole periods missed.
    bad = FaultReport(
        suspects=[SuspectEvent(10.0, 0, 1, last_heard=5.0, missed=0)]
    )
    rep = validate_schedule(
        res.schedule, fault_report=bad, heartbeat=hb
    )
    rules = {v.rule for v in rep.violations}
    assert rules == {"suspect-no-missed-beat", "suspect-premature"}
    # Backed by real silence: no violation.
    good = FaultReport(
        suspects=[SuspectEvent(30.0, 0, 1, last_heard=2.0, missed=3)]
    )
    assert validate_schedule(
        res.schedule, fault_report=good, heartbeat=hb
    ).ok


# ----------------------------------------------------------------------
# Fault-report edge cases
# ----------------------------------------------------------------------


CM5 = LogPParams(L=6.0, o=2.0, g=4.0, P=4)


def _flood_factory(senders: int, k: int):
    def factory(rank: int, P: int):
        def gen():
            if rank == 0:
                got = 0
                for _ in range(senders * k):
                    m = yield Recv(timeout=200.0)
                    if m is None:
                        break
                    got += 1
                return got
            for _ in range(k):
                yield Send(0)
            return None

        return gen()

    return factory


def test_crash_at_time_zero():
    """A rank crashed at t=0 never runs: its value is absent, its
    messages never exist, and the survivors drain cleanly."""
    plan = FaultPlan([CrashStop(2, 0.0)])
    res = LogPMachine(CM5, fault_plan=plan).run(_flood_factory(3, 4))
    rep = res.fault_report()
    assert [(e.rank, e.time, e.kind) for e in rep.crashes] == [(2, 0.0, "stop")]
    assert res.value(2) is None
    assert res.value(0) == 2 * 4  # only the two surviving senders
    assert rep.dropped_in_flight == 0
    assert not rep.wedged_ranks


def test_crash_during_capacity_stall_reaps_parked_sender():
    """A sender parked in the capacity wait-graph when it crashes must
    be reaped without a wakeup: the stall queue entry disappears, the
    run terminates, and the reap is counted on the crash event."""
    p = LogPParams(L=8.0, o=1.0, g=4.0, P=4)  # capacity ceil(L/g) = 2
    plan = FaultPlan([CrashStop(2, 12.0)])
    res = LogPMachine(p, fault_plan=plan, trace=True).run(
        _flood_factory(3, 6)
    )
    rep = res.fault_report()
    assert rep.reaped_parked == 1
    assert rep.crashes[0].reaped_parked == 1
    assert not rep.wedged_ranks
    # The two surviving senders' 12 messages plus whatever the victim
    # injected before parking all arrive.
    assert 12 <= res.value(0) < 18
    assert res.stall_report().ok  # no unresolved stall episodes


def test_recover_after_program_end_keeps_result():
    """A transient crash landing after the rank already finished redoes
    nothing: the result survives, the rank rejoins heartbeating, and
    exactly one recovery is recorded."""
    plan = FaultPlan([CrashRecover(1, 500.0, 25.0)])
    res = LogPMachine(CM5, fault_plan=plan).run(_flood_factory(3, 2))
    rep = res.fault_report()
    assert res.value(0) == 6
    assert [(e.rank, e.time) for e in rep.recoveries] == [(1, 525.0)]
    assert rep.recoveries[0].incarnation == 1
    assert not rep.wedged_ranks
    assert rep.restores == 0


def test_two_simultaneous_crashes():
    """Two ranks dying at the same instant are two independent crash
    events; the survivors still account for every message."""
    plan = FaultPlan([CrashStop(2, 9.0), CrashStop(3, 9.0)])
    res = LogPMachine(CM5, fault_plan=plan).run(_flood_factory(3, 4))
    rep = res.fault_report()
    assert sorted((e.rank, e.time) for e in rep.crashes) == [
        (2, 9.0),
        (3, 9.0),
    ]
    assert rep.crashed_ranks == [2, 3]
    assert rep.down_forever == [2, 3]
    assert 1 not in rep.crashed_ranks  # rank 1 ran to completion
    assert res.value(0) >= 4  # the surviving sender's full stream
    assert not rep.wedged_ranks


def test_fault_plan_rejects_double_crash():
    with pytest.raises(ValueError, match="more than one crash"):
        FaultPlan([CrashStop(1, 5.0), CrashRecover(1, 9.0, 2.0)])
