"""Tests for repro.algorithms.components: distributed connected
components and the contention study."""

import networkx as nx
import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.components import (
    hotspot_factor,
    labels_to_sets,
    run_connected_components,
)
from repro.sim import validate_schedule


@pytest.fixture
def p4():
    return LogPParams(L=6, o=2, g=4, P=4)


def nx_truth(G):
    return sorted((frozenset(c) for c in nx.connected_components(G)), key=min)


class TestCorrectness:
    @pytest.mark.parametrize("combining", [True, False])
    def test_random_graph(self, p4, combining):
        G = nx.gnm_random_graph(48, 70, seed=11)
        out = run_connected_components(
            p4, 48, list(G.edges()), combining=combining
        )
        assert labels_to_sets(out.labels) == nx_truth(G)

    def test_disconnected_graph(self, p4):
        G = nx.Graph()
        G.add_nodes_from(range(32))
        G.add_edges_from([(0, 1), (2, 3), (10, 20), (20, 30)])
        out = run_connected_components(p4, 32, list(G.edges()))
        assert labels_to_sets(out.labels) == nx_truth(G)
        # {0,1}, {2,3}, {10,20,30} plus 25 singletons.
        assert out.components == 28

    def test_no_edges(self, p4):
        out = run_connected_components(p4, 16, [])
        assert out.components == 16

    def test_single_component_path(self, p4):
        edges = [(i, i + 1) for i in range(31)]
        out = run_connected_components(p4, 32, edges)
        assert out.components == 1
        assert set(out.labels) == {0}

    def test_star_graph(self, p4):
        edges = [(0, i) for i in range(1, 32)]
        out = run_connected_components(p4, 32, edges)
        assert out.components == 1

    def test_two_cliques(self, p4):
        edges = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        edges += [(i, j) for i in range(8, 16) for j in range(i + 1, 16)]
        out = run_connected_components(p4, 16, edges)
        assert out.components == 2

    def test_labels_are_component_minima(self, p4):
        G = nx.gnm_random_graph(40, 50, seed=3)
        out = run_connected_components(p4, 40, list(G.edges()))
        for comp in nx.connected_components(G):
            mn = min(comp)
            assert all(out.labels[v] == mn for v in comp)

    def test_edge_out_of_range_rejected(self, p4):
        with pytest.raises(ValueError):
            run_connected_components(p4, 8, [(0, 9)])

    def test_duplicate_and_self_loop_edges_tolerated(self, p4):
        edges = [(0, 1), (1, 0), (0, 1), (2, 2), (2, 3)]
        out = run_connected_components(p4, 8, edges)
        sets = labels_to_sets(out.labels)
        assert frozenset({0, 1}) in sets
        assert frozenset({2, 3}) in sets

    def test_schedule_validates(self, p4):
        G = nx.gnm_random_graph(24, 30, seed=5)
        out = run_connected_components(p4, 24, list(G.edges()))
        assert validate_schedule(out.machine.schedule, exact_latency=True).ok


class TestContentionStudy:
    """Section 4.2.3: combining mitigates root-owner hot spots."""

    def test_combining_reduces_traffic(self, p4):
        G = nx.gnm_random_graph(64, 200, seed=19)
        naive = run_connected_components(p4, 64, list(G.edges()), combining=False)
        comb = run_connected_components(p4, 64, list(G.edges()), combining=True)
        assert comb.receive_load.sum() < naive.receive_load.sum()

    def test_combining_not_slower(self, p4):
        G = nx.gnm_random_graph(64, 200, seed=19)
        naive = run_connected_components(p4, 64, list(G.edges()), combining=False)
        comb = run_connected_components(p4, 64, list(G.edges()), combining=True)
        assert comb.makespan <= naive.makespan

    def test_hotspot_factor_definition(self):
        assert hotspot_factor(np.array([10, 10, 10, 10])) == 1.0
        assert hotspot_factor(np.array([40, 0, 0, 0])) == 4.0
        assert hotspot_factor(np.array([0, 0])) == 1.0

    def test_dense_single_component_creates_hotspot(self):
        # Everything merges to root 0; its owner serves the jump queries.
        p8 = LogPParams(L=6, o=2, g=4, P=8)
        G = nx.gnm_random_graph(64, 400, seed=23)
        assert nx.number_connected_components(G) == 1
        out = run_connected_components(p8, 64, list(G.edges()), combining=False)
        assert hotspot_factor(out.receive_load) > 1.05

    def test_rounds_logarithmic_ish(self, p4):
        # Hook-and-jump converges in far fewer than n rounds.
        edges = [(i, i + 1) for i in range(63)]
        out = run_connected_components(p4, 64, edges)
        assert out.rounds <= 16

    def test_jump_queries_concentrate_over_rounds(self):
        """'Processors owning such nodes are the target of increasing
        numbers of pointer-jumping queries as the algorithm progresses'
        — the per-round concentration at the busiest owner rises toward
        1 as components merge."""
        import networkx as nx

        p8 = LogPParams(L=6, o=2, g=4, P=8)
        G = nx.gnm_random_graph(96, 400, seed=42)
        out = run_connected_components(
            p8, 96, list(G.edges()), combining=False
        )
        conc = out.query_concentration()
        assert len(conc) >= 3
        assert conc[-1] > conc[0]
        assert conc[-1] == pytest.approx(1.0)  # one surviving root

    def test_combining_shrinks_jump_volume_over_rounds(self):
        import networkx as nx

        p8 = LogPParams(L=6, o=2, g=4, P=8)
        G = nx.gnm_random_graph(96, 400, seed=42)
        naive = run_connected_components(
            p8, 96, list(G.edges()), combining=False
        )
        comb = run_connected_components(
            p8, 96, list(G.edges()), combining=True
        )
        naive_last = naive.queries_by_round[-1].sum()
        comb_last = comb.queries_by_round[-1].sum()
        # Combining dedups the funneled queries; naive repeats them.
        assert comb_last < naive_last / 4

    def test_queries_by_round_matches_round_count(self, p4):
        edges = [(i, i + 1) for i in range(31)]
        out = run_connected_components(p4, 32, edges)
        assert len(out.queries_by_round) == out.rounds
