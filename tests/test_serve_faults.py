"""The service fault model (DESIGN.md §12), pinned as tests.

Four failure axes, each with its contract:

* **Cache persistence** — journal + snapshot round-trip bit-exactly
  (JSON shortest-repr floats are lossless), a stale fingerprint is
  dropped loudly, a torn journal tail is truncated to the last whole
  record, and a server killed with ``kill -9`` mid-job replays its
  journal on restart and serves the same bits warm.
* **Deadlines** — an expired job fails with
  :class:`~repro.serve.JobDeadlineError` promptly; the shared
  computation (and the server) outlives the failed waiter.
* **Admission** — past ``max_pending_points`` a submission is refused
  atomically with :class:`~repro.serve.ServerOverloaded`; nothing about
  the refused request is partially registered.
* **Cancellation** — ``cancel_job`` fails only the cancelled job's
  waiters, with :class:`~repro.serve.JobCancelledError`.

Timing assertions carry generous slack: CI runs this on one busy core.
"""

from __future__ import annotations

import asyncio
import time
import warnings

import pytest

from repro.core import LogPParams
from repro.serve import (
    CachePersistence,
    JobCancelledError,
    JobDeadlineError,
    ServeConfig,
    ServerOverloaded,
    SimulationServer,
    SweepRequest,
)

POINTS = [
    LogPParams(L=4.0 + i, o=0.5 + 0.25 * i, g=2.0, P=8) for i in range(4)
]

#: Distinct machine-backend points: slow enough that a 0.3s deadline
#: (or a cancel) lands while the batch is genuinely mid-computation.
HEAVY = [LogPParams(L=4.0 + 0.01 * i, o=1.0, g=4.0, P=16) for i in range(300)]


def _request(seed=None, points=POINTS, backend="compiled"):
    return SweepRequest.make(
        "bcast_tree", points, args={"k": 6}, seed=seed, backend=backend
    )


def _heavy_request(deadline=None):
    return SweepRequest.make(
        "flood", HEAVY, args={"k": 40}, backend="machine", deadline=deadline
    )


async def _serve_once(config: ServeConfig, requests: list) -> list:
    async with SimulationServer(config) as server:
        out = []
        for request in requests:
            job = await server.submit(request)
            out.append(await job.wait())
        return out


class TestPersistenceRoundTrip:
    def test_results_survive_graceful_restart_bit_exactly(self, tmp_path):
        async def run():
            config = ServeConfig(
                batch_window=0.0, use_pool=False, cache_dir=str(tmp_path)
            )
            first = await _serve_once(config, [_request()])
            async with SimulationServer(config) as server:
                job = await server.submit(_request())
                warm = await job.wait()
                return first[0], warm, job.sources, server.stats_snapshot()

        first, warm, sources, stats = asyncio.run(run())
        assert warm == first  # bit-identical across the restart
        assert sources["cache"] == len(POINTS)
        assert stats["persistence"]["loaded"] == len(POINTS)
        assert stats["persistence"]["dropped_stale"] == 0

    def test_graceful_close_compacts_into_a_snapshot(self, tmp_path):
        async def run():
            config = ServeConfig(
                batch_window=0.0, use_pool=False, cache_dir=str(tmp_path)
            )
            await _serve_once(config, [_request()])

        asyncio.run(run())
        snapshot = tmp_path / CachePersistence.SNAPSHOT
        journal = tmp_path / CachePersistence.JOURNAL
        assert snapshot.exists()
        assert len(snapshot.read_text().splitlines()) == len(POINTS)
        assert journal.read_text() == ""  # reset after compaction

    def test_snapshot_every_compacts_mid_flight(self, tmp_path):
        async def run():
            config = ServeConfig(
                batch_window=0.0,
                use_pool=False,
                cache_dir=str(tmp_path),
                snapshot_every=2,
            )
            reqs = [_request(seed=i) for i in range(3)]
            await _serve_once(config, reqs)

        asyncio.run(run())
        persist = CachePersistence(str(tmp_path))
        entries = persist.load()
        # 3 requests x 4 points, every one present post-compaction.
        assert len(entries) == 12
        assert persist.stats["torn_tails"] == 0
        assert persist.stats["snapshots"] == 0  # load() never compacts


class TestPersistenceUnit:
    def _seed_journal(self, tmp_path, n=3):
        from repro.serve.cache import CacheKey
        from repro.serve.registry import fingerprint

        fp = fingerprint("bcast_tree", {"k": 6})
        writer = CachePersistence(str(tmp_path))
        entries = []
        for i in range(n):
            key = CacheKey(
                fingerprint=fp,
                point=(4.0 + i, 0.5, 2.0, 8, None),
                seed=None,
                backend="compiled",
                latency=None,
            )
            pair = (10.123456789 + i, 2.0 * i)
            writer.record("bcast_tree", (("k", 6),), key, pair)
            entries.append(("bcast_tree", (("k", 6),), key, pair))
        writer.close()
        return entries

    def test_journal_round_trip_is_bit_exact(self, tmp_path):
        entries = self._seed_journal(tmp_path)
        loaded = CachePersistence(str(tmp_path)).load()
        assert loaded == entries  # floats included: shortest-repr JSON

    def test_torn_tail_is_truncated_to_last_whole_record(self, tmp_path):
        self._seed_journal(tmp_path, n=3)
        journal = tmp_path / CachePersistence.JOURNAL
        data = journal.read_bytes()
        journal.write_bytes(data[:-9])  # tear the final record mid-JSON
        reader = CachePersistence(str(tmp_path))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = reader.load()
        assert len(loaded) == 2
        assert reader.stats["torn_tails"] == 1
        assert any("torn" in str(w.message) for w in caught)
        # The tear was truncated *in place*: a second reader sees a
        # clean journal ending at the last whole record.
        again = CachePersistence(str(tmp_path))
        assert len(again.load()) == 2
        assert again.stats["torn_tails"] == 0

    def test_unterminated_last_line_is_torn_even_if_decodable(
        self, tmp_path
    ):
        self._seed_journal(tmp_path, n=2)
        journal = tmp_path / CachePersistence.JOURNAL
        # Strip only the trailing newline: the bytes parse, but an
        # unterminated record means the write may not have finished.
        journal.write_bytes(journal.read_bytes()[:-1])
        reader = CachePersistence(str(tmp_path))
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            assert len(reader.load()) == 1
        assert reader.stats["torn_tails"] == 1

    def test_stale_fingerprint_is_dropped_loudly(self, tmp_path):
        import json

        self._seed_journal(tmp_path, n=2)
        journal = tmp_path / CachePersistence.JOURNAL
        lines = journal.read_text().splitlines()
        record = json.loads(lines[0])
        record["fp"] = "0" * len(record["fp"])  # another code version
        lines[0] = json.dumps(record, separators=(",", ":"))
        journal.write_text("\n".join(lines) + "\n")
        reader = CachePersistence(str(tmp_path))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = reader.load()
        assert len(loaded) == 1
        assert reader.stats["dropped_stale"] == 1
        assert any("stale" in str(w.message) for w in caught)

    def test_snapshot_is_atomic_and_resets_journal(self, tmp_path):
        entries = self._seed_journal(tmp_path, n=3)
        persist = CachePersistence(str(tmp_path))
        persist.load()
        persist.snapshot(entries[:2])  # e.g. one entry was LRU-evicted
        persist.close()
        reader = CachePersistence(str(tmp_path))
        assert reader.load() == entries[:2]
        assert (tmp_path / CachePersistence.JOURNAL).read_text() == ""


class TestKillNineReplay:
    def test_journal_replay_after_kill_nine(self, tmp_path):
        """A real server subprocess SIGKILLed after serving: its second
        life must replay the journal and serve the same bits warm."""
        from repro.serve.chaos import _spawn_server, _stats_once, _submit_once

        req = {
            "program": "bcast_tree",
            "points": [
                {"L": 4.0 + i, "o": 0.5, "g": 2.0, "P": 8} for i in range(3)
            ],
            "args": {"k": 6},
            "backend": "compiled",
        }
        proc, host, port = _spawn_server(str(tmp_path))
        try:
            first = _submit_once(host, port, **req)["results"]
        finally:
            proc.kill()  # SIGKILL: no aclose, no snapshot — journal only
            proc.wait(timeout=30)
        proc, host, port = _spawn_server(str(tmp_path))
        try:
            stats = _stats_once(host, port)
            frame = _submit_once(host, port, **req)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert stats["persistence"]["loaded"] == 3
        assert stats["persistence"]["dropped_stale"] == 0
        assert frame["results"] == first
        assert frame["sources"]["cache"] == 3


class TestDeadlines:
    def test_deadline_fails_the_job_promptly(self):
        async def run():
            config = ServeConfig(batch_window=0.0, use_pool=False)
            async with SimulationServer(config) as server:
                job = await server.submit(_heavy_request(deadline=0.3))
                t0 = time.monotonic()
                with pytest.raises(JobDeadlineError) as excinfo:
                    await job.wait()
                elapsed = time.monotonic() - t0
                return elapsed, excinfo.value, server.stats_snapshot()

        elapsed, err, stats = asyncio.run(run())
        assert elapsed < 10.0  # a 300-point machine flood takes longer
        assert err.deadline == 0.3
        assert stats["deadline_expired"] == 1

    def test_default_deadline_applies_when_request_has_none(self):
        async def run():
            config = ServeConfig(
                batch_window=0.0, use_pool=False, default_deadline=0.3
            )
            async with SimulationServer(config) as server:
                job = await server.submit(_heavy_request())
                with pytest.raises(JobDeadlineError):
                    await job.wait()
                return server.stats_snapshot()

        assert asyncio.run(run())["deadline_expired"] == 1

    def test_fast_job_beats_its_deadline(self):
        async def run():
            config = ServeConfig(batch_window=0.0, use_pool=False)
            request = SweepRequest.make(
                "bcast_tree", POINTS, args={"k": 6}, deadline=60.0
            )
            async with SimulationServer(config) as server:
                job = await server.submit(request)
                return await job.wait()

        assert len(asyncio.run(run())) == len(POINTS)


class TestAdmission:
    def test_overload_is_refused_atomically(self):
        async def run():
            config = ServeConfig(
                batch_window=0.5, use_pool=False, max_pending_points=4
            )
            async with SimulationServer(config) as server:
                first = await server.submit(_request(points=POINTS[:3]))
                with pytest.raises(ServerOverloaded) as excinfo:
                    await server.submit(
                        SweepRequest.make(
                            "bcast_tree",
                            [
                                LogPParams(L=30.0 + i, o=1.0, g=2.0, P=8)
                                for i in range(3)
                            ],
                            args={"k": 6},
                        )
                    )
                shed = excinfo.value
                done = await first.wait()
                # After the backlog drains, the same shape is admitted.
                ok = await server.submit(_request(points=POINTS[:1]))
                await ok.wait()
                return shed, done, server.stats_snapshot()

        shed, done, stats = asyncio.run(run())
        assert shed.requested == 3 and shed.limit == 4
        assert shed.retry_after > 0
        assert len(done) == 3
        assert stats["shed"] == 1
        # Atomic refusal: the shed request contributed zero points.
        assert stats["points"] == 3 + 1

    def test_cache_hits_are_always_admitted(self):
        async def run():
            config = ServeConfig(
                batch_window=0.0, use_pool=False, max_pending_points=4
            )
            async with SimulationServer(config) as server:
                job = await server.submit(_request())
                await job.wait()
                # Warm repeat: needs no in-flight capacity at all.
                warm = await server.submit(_request())
                return await warm.wait(), warm.sources

        results, sources = asyncio.run(run())
        assert sources["cache"] == len(POINTS)


class TestCancellation:
    def test_cancel_fails_only_the_cancelled_job(self):
        async def run():
            config = ServeConfig(batch_window=0.0, use_pool=False)
            async with SimulationServer(config) as server:
                job = await server.submit(_heavy_request())
                assert server.cancel_job(job.id)
                with pytest.raises(JobCancelledError):
                    await job.wait()
                assert not server.cancel_job(job.id)  # already finished
                assert not server.cancel_job(10**9)  # unknown id
                return server.stats_snapshot()

        assert asyncio.run(run())["cancelled"] == 1


class TestHealth:
    def test_health_reports_ready_then_closed(self):
        async def run():
            config = ServeConfig(batch_window=0.0, use_pool=False)
            server = SimulationServer(config)
            await server.start()
            open_health = server.stats_snapshot()["health"]
            await server.aclose()
            closed_health = server.stats_snapshot()["health"]
            return open_health, closed_health

        open_health, closed_health = asyncio.run(run())
        assert open_health["status"] == "ok" and open_health["ready"]
        assert closed_health["status"] == "closed"
        assert not closed_health["ready"]

    def test_health_reports_overloaded_at_the_limit(self):
        async def run():
            config = ServeConfig(
                batch_window=0.5, use_pool=False, max_pending_points=2
            )
            async with SimulationServer(config) as server:
                job = await server.submit(_request(points=POINTS[:2]))
                status = server.stats_snapshot()["health"]["status"]
                await job.wait()
                return status

        assert asyncio.run(run()) == "overloaded"
