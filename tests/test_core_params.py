"""Tests for repro.core.params: the LogP parameter object."""

import math

import pytest

from repro.core import LogPParams


class TestConstruction:
    def test_basic_fields(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        assert (p.L, p.o, p.g, p.P) == (6, 2, 4, 8)

    def test_name_defaults_empty(self):
        assert LogPParams(L=1, o=1, g=1, P=1).name == ""

    def test_fractional_parameters_allowed(self):
        # The CM-5 calibration uses o=0.44 cycles.
        p = LogPParams(L=1.33, o=0.44, g=0.89, P=128)
        assert p.o == pytest.approx(0.44)

    def test_zero_parameters_allowed(self):
        p = LogPParams(L=0, o=0, g=0, P=2)
        assert p.point_to_point() == 0

    @pytest.mark.parametrize("field,value", [("L", -1), ("o", -0.5), ("g", -2)])
    def test_negative_parameters_rejected(self, field, value):
        kwargs = dict(L=1, o=1, g=1, P=2)
        kwargs[field] = value
        with pytest.raises(ValueError):
            LogPParams(**kwargs)

    @pytest.mark.parametrize("P", [0, -1])
    def test_bad_processor_count_rejected(self, P):
        with pytest.raises(ValueError):
            LogPParams(L=1, o=1, g=1, P=P)

    def test_non_integer_P_rejected(self):
        with pytest.raises(TypeError):
            LogPParams(L=1, o=1, g=1, P=2.0)

    def test_bool_P_rejected(self):
        with pytest.raises(TypeError):
            LogPParams(L=1, o=1, g=1, P=True)

    @pytest.mark.parametrize("bad", [math.inf, math.nan])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValueError):
            LogPParams(L=bad, o=1, g=1, P=2)

    def test_immutability(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        with pytest.raises(AttributeError):
            p.L = 10

    def test_equality_and_hash(self):
        a = LogPParams(L=6, o=2, g=4, P=8)
        b = LogPParams(L=6, o=2, g=4, P=8)
        assert a == b and hash(a) == hash(b)


class TestDerived:
    def test_capacity_is_ceil_L_over_g(self):
        assert LogPParams(L=6, o=2, g=4, P=8).capacity == 2
        assert LogPParams(L=8, o=2, g=4, P=8).capacity == 2
        assert LogPParams(L=9, o=2, g=4, P=8).capacity == 3

    def test_capacity_at_least_one(self):
        assert LogPParams(L=0, o=0, g=4, P=2).capacity == 1

    def test_capacity_infinite_bandwidth(self):
        assert LogPParams(L=5, o=1, g=0, P=2).capacity >= 2**61

    def test_send_interval_max_of_g_and_o(self):
        assert LogPParams(L=1, o=5, g=2, P=2).send_interval == 5
        assert LogPParams(L=1, o=2, g=5, P=2).send_interval == 5

    def test_point_to_point(self, fig3_params):
        assert fig3_params.point_to_point() == 6 + 2 * 2

    def test_remote_read_is_two_round_trips_worth(self, fig3_params):
        assert fig3_params.remote_read() == 2 * 6 + 4 * 2

    def test_bandwidth_reciprocal_of_g(self):
        assert LogPParams(L=1, o=1, g=4, P=2).bandwidth == 0.25
        assert LogPParams(L=1, o=1, g=0, P=2).bandwidth == math.inf

    def test_multithreading_limit_equals_capacity(self, fig3_params):
        assert fig3_params.max_virtual_processors() == fig3_params.capacity


class TestSimplifications:
    def test_merge_overhead_into_gap(self):
        # o := max(o, g) and g is *ignored* (zeroed), per Section 3.1;
        # the injection pacing max(g, o) is unchanged by the merge.
        orig = LogPParams(L=6, o=2, g=4, P=8)
        p = orig.merge_overhead_into_gap()
        assert p.o == 4 and p.g == 0
        assert p.send_interval == orig.send_interval == 4

    def test_merge_keeps_larger_overhead(self):
        orig = LogPParams(L=6, o=5, g=4, P=8)
        p = orig.merge_overhead_into_gap()
        assert p.o == 5 and p.g == 0
        assert p.send_interval == orig.send_interval == 5

    def test_ignore_latency(self):
        assert LogPParams(L=6, o=2, g=4, P=8).ignore_latency().L == 0

    def test_ignore_bandwidth(self):
        assert LogPParams(L=6, o=2, g=4, P=8).ignore_bandwidth().g == 0

    def test_ignore_overhead(self):
        assert LogPParams(L=6, o=2, g=4, P=8).ignore_overhead().o == 0

    def test_as_postal(self):
        p = LogPParams(L=6, o=2, g=4, P=8).as_postal()
        assert p.o == 0 and p.g == 1 and p.L == 6

    def test_with_processors(self):
        assert LogPParams(L=6, o=2, g=4, P=8).with_processors(64).P == 64

    def test_scaled(self):
        p = LogPParams(L=6, o=2, g=4, P=8).scaled(0.5)
        assert (p.L, p.o, p.g) == (3, 1, 2) and p.P == 8

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogPParams(L=6, o=2, g=4, P=8).scaled(0)

    def test_simplifications_tag_name(self):
        p = LogPParams(L=6, o=2, g=4, P=8, name="m").ignore_latency()
        assert "m" in p.name and "L=0" in p.name

    def test_str_contains_parameters(self):
        s = str(LogPParams(L=6, o=2, g=4, P=8, name="cm5"))
        for frag in ("L=6", "o=2", "g=4", "P=8", "cm5"):
            assert frag in s
