"""Tests for repro.machines.scaling (Section 7's machine-family curves)."""

import pytest

from repro.machines.scaling import (
    FAT_TREE_FAMILY,
    HYPERCUBE_FAMILY,
    MESH_FAMILY,
    MachineFamily,
)


class TestFamilyCurves:
    def test_overhead_fixed_across_configurations(self):
        for fam in (FAT_TREE_FAMILY, MESH_FAMILY):
            os = {fam.params(P).o for P in (16, 64, 256)}
            assert len(os) == 1

    def test_fat_tree_gap_flat(self):
        gs = [FAT_TREE_FAMILY.params(P).g for P in (16, 64, 256, 1024)]
        assert max(gs) == min(gs)

    def test_hypercube_gap_flat(self):
        gs = [HYPERCUBE_FAMILY.params(P).g for P in (16, 64, 256)]
        assert max(gs) == pytest.approx(min(gs))

    def test_mesh_gap_grows_sqrt_P(self):
        g16 = MESH_FAMILY.params(16).g
        g1024 = MESH_FAMILY.params(1024).g
        assert g1024 / g16 == pytest.approx((1024 / 16) ** 0.5)

    def test_latency_grows_with_diameter(self):
        for fam in (FAT_TREE_FAMILY, MESH_FAMILY, HYPERCUBE_FAMILY):
            assert fam.params(256).L > fam.params(16).L

    def test_curve_helper(self):
        curve = MESH_FAMILY.curve([16, 64])
        assert [p.P for p in curve] == [16, 64]
        assert all("2d-mesh" in p.name for p in curve)

    def test_custom_family(self):
        from repro.topology.topologies import Torus2D

        fam = MachineFamily(
            name="torus", topology=Torus2D, w=8, overhead_cycles=50, r=2
        )
        p = fam.params(64)
        assert p.o == 25
        # Torus bisection is 2*sqrt(P): halved g relative to the mesh.
        mesh_like = MachineFamily(
            name="m", topology=lambda P: __import__(
                "repro.topology.topologies", fromlist=["Mesh2D"]
            ).Mesh2D(P), w=8, overhead_cycles=50, r=2,
        )
        assert p.g == pytest.approx(mesh_like.params(64).g / 2)

    def test_capacity_follows_curve(self):
        # On the mesh, L grows ~sqrt(P) and g grows ~sqrt(P): the
        # capacity ceil(L/g) stays roughly constant along the curve.
        caps = [MESH_FAMILY.params(P).capacity for P in (16, 64, 256, 1024)]
        assert max(caps) <= 2 * min(caps)
