"""Tests for repro.algorithms.matmul (SUMMA) and the scan / group
broadcast collectives."""

import operator

import numpy as np
import pytest

from repro.core import LogGPParams, LogPParams
from repro.algorithms.matmul import (
    best_panel_width,
    run_summa,
    summa_time,
)
from repro.sim import (
    group_broadcast,
    prefix_scan,
    run_programs,
    validate_schedule,
)


@pytest.fixture
def gp4():
    return LogGPParams(L=6, o=2, g=4, G=0.25, P=4)


class TestSUMMA:
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_correct_product(self, gp4, b, rng):
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        C, res = run_summa(gp4, A, B, b=b)
        assert np.allclose(C, A @ B)
        assert validate_schedule(res.schedule, exact_latency=True).ok

    def test_nine_processors(self, rng):
        gp9 = LogGPParams(L=6, o=2, g=4, G=0.25, P=9)
        A = rng.standard_normal((12, 12))
        B = rng.standard_normal((12, 12))
        C, _ = run_summa(gp9, A, B, b=2)
        assert np.allclose(C, A @ B)

    def test_single_processor(self, rng):
        gp1 = LogGPParams(L=6, o=2, g=4, G=0.25, P=1)
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C, _ = run_summa(gp1, A, B, b=4)
        assert np.allclose(C, A @ B)

    def test_identity(self, gp4):
        A = np.eye(8)
        B = np.arange(64, dtype=float).reshape(8, 8)
        C, _ = run_summa(gp4, A, B, b=2)
        assert np.allclose(C, B)

    def test_prediction_brackets_simulation(self, gp4, rng):
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        for b in (2, 8):
            C, res = run_summa(gp4, A, B, b=b)
            predicted = summa_time(gp4, 16, b)
            assert 0.7 * predicted <= res.makespan <= 1.1 * predicted

    def test_larger_panels_fewer_messages(self, gp4, rng):
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        _, res1 = run_summa(gp4, A, B, b=1)
        _, res8 = run_summa(gp4, A, B, b=8)
        assert res8.total_messages < res1.total_messages

    def test_best_panel_width_is_a_divisor(self, gp4):
        b = best_panel_width(gp4, 16)
        assert (16 // 2) % b == 0
        times = {bb: summa_time(gp4, 16, bb) for bb in (1, 2, 4, 8)}
        assert times[b] == min(times.values())

    def test_non_square_P_rejected(self, rng):
        gp8 = LogGPParams(L=6, o=2, g=4, G=0.25, P=8)
        with pytest.raises(ValueError):
            run_summa(gp8, np.eye(8), np.eye(8), b=1)

    def test_bad_panel_width_rejected(self, gp4):
        with pytest.raises(ValueError):
            summa_time(gp4, 16, 3)


class TestPrefixScan:
    @pytest.mark.parametrize("P", [1, 2, 3, 7, 8, 16])
    def test_inclusive_sum(self, P):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def prog(rank, PP):
            v = yield from prefix_scan(rank, PP, rank + 1)
            return v

        res = run_programs(p, prog)
        assert res.values() == list(np.cumsum(range(1, P + 1)))

    def test_exclusive(self):
        p = LogPParams(L=6, o=2, g=4, P=8)

        def prog(rank, P):
            v = yield from prefix_scan(
                rank, P, rank + 1, inclusive=False, identity=0
            )
            return v

        res = run_programs(p, prog)
        inc = list(np.cumsum(range(1, 9)))
        assert res.values() == [0] + inc[:-1]

    def test_non_commutative_order(self):
        p = LogPParams(L=6, o=2, g=4, P=8)

        def prog(rank, P):
            v = yield from prefix_scan(rank, P, str(rank), operator.add)
            return v

        res = run_programs(p, prog)
        assert res.values() == [
            "".join(str(i) for i in range(r + 1)) for r in range(8)
        ]

    def test_max_scan(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        data = [3, 1, 4, 1, 5, 9, 2, 6]

        def prog(rank, P):
            v = yield from prefix_scan(rank, P, data[rank], max)
            return v

        res = run_programs(p, prog)
        assert res.values() == list(np.maximum.accumulate(data))

    def test_cost_logarithmic(self):
        # ceil(log2 P) rounds of (L + 2o)-ish — far from the scan-model's
        # unit time, which is Section 6.2's point.
        times = {}
        for P in (4, 16, 64):
            p = LogPParams(L=6, o=2, g=4, P=P)

            def prog(rank, PP):
                v = yield from prefix_scan(rank, PP, 1)
                return v

            times[P] = run_programs(p, prog).makespan
        assert times[16] < 2.1 * times[4]
        assert times[64] < 1.8 * times[16]


class TestGroupBroadcast:
    def test_subgroup_only(self):
        p = LogPParams(L=6, o=2, g=4, P=8)
        members = [2, 3, 5, 7]

        def prog(rank, P):
            if rank in members:
                v = yield from group_broadcast(rank, members, rank, root=5)
                return v
            return "outside"

        res = run_programs(p, prog)
        for r in range(8):
            assert res.value(r) == (5 if r in members else "outside")

    def test_nonmember_rank_rejected(self):
        p = LogPParams(L=6, o=2, g=4, P=4)

        def prog(rank, P):
            v = yield from group_broadcast(rank, [0, 1], None, root=0)
            return v

        with pytest.raises(Exception):
            run_programs(p, prog)

    def test_singleton_group(self):
        p = LogPParams(L=6, o=2, g=4, P=2)

        def prog(rank, P):
            if rank == 0:
                v = yield from group_broadcast(rank, [0], 42, root=0)
                return v
            return None

        assert run_programs(p, prog).value(0) == 42

    def test_long_message_panels(self):
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=4)

        def prog(rank, P):
            payload = list(range(32)) if rank == 1 else None
            v = yield from group_broadcast(
                rank, [0, 1, 2, 3], payload, root=1, words=32
            )
            return sum(v)

        res = run_programs(gp, prog)
        assert set(res.values()) == {sum(range(32))}
