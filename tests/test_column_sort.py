"""Tests for Leighton's columnsort (Section 4.2.2's named example)."""

import numpy as np
import pytest

from repro.core import LogPParams
from repro.algorithms.sort import (
    column_sort_time,
    run_column_sort,
    splitter_sort_time,
)
from repro.sim import validate_schedule


@pytest.fixture
def p4():
    return LogPParams(L=6, o=2, g=4, P=4)


class TestCorrectness:
    @pytest.mark.parametrize("P,n", [(2, 8), (3, 24), (4, 72), (4, 144), (8, 784)])
    def test_sorts_random_data(self, P, n, rng):
        p = LogPParams(L=6, o=2, g=4, P=P)
        data = rng.standard_normal(n)
        out = run_column_sort(p, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_duplicates(self, p4, rng):
        data = rng.integers(0, 5, 72).astype(float)
        out = run_column_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_already_sorted(self, p4):
        data = np.arange(72, dtype=float)
        out = run_column_sort(p4, data)
        assert np.array_equal(out.sorted_values, data)

    def test_reverse_sorted(self, p4):
        data = np.arange(72, dtype=float)[::-1]
        out = run_column_sort(p4, data)
        assert np.array_equal(out.sorted_values, np.sort(data))

    def test_schedule_validates(self, p4, rng):
        out = run_column_sort(p4, rng.standard_normal(72))
        assert validate_schedule(out.machine.schedule, exact_latency=True).ok

    def test_single_processor(self, rng):
        p1 = LogPParams(L=6, o=2, g=4, P=1)
        data = rng.standard_normal(10)
        out = run_column_sort(p1, data)
        assert np.array_equal(out.sorted_values, np.sort(data))


class TestPreconditions:
    def test_r_too_small_rejected(self, p4, rng):
        # P=4 needs r >= 2*9 = 18; r=4 is too shallow.
        with pytest.raises(ValueError, match="2\\(s-1\\)"):
            run_column_sort(p4, rng.standard_normal(16))

    def test_odd_column_height_rejected(self, rng):
        p2 = LogPParams(L=6, o=2, g=4, P=2)
        with pytest.raises(ValueError, match="even"):
            run_column_sort(p2, rng.standard_normal(14))

    def test_indivisible_length_rejected(self, p4, rng):
        with pytest.raises(ValueError, match="divide"):
            run_column_sort(p4, rng.standard_normal(73))


class TestCost:
    def test_prediction_brackets_simulation(self, p4, rng):
        data = rng.standard_normal(144)
        out = run_column_sort(p4, data)
        pred = column_sort_time(p4, 144)
        assert pred <= out.makespan <= 1.6 * pred

    def test_compute_remap_structure(self, p4):
        """Columnsort is 'a series of local sorts and remap steps,
        similar to our FFT algorithm' — its cost is four local sorts
        plus two remaps plus two shifts."""
        n = 400
        t = column_sort_time(p4, n)
        r = n / 4
        local = r * np.log2(r)
        assert t > 4 * local  # the four sorts are all in there

    def test_deterministic_vs_sampling_tradeoff(self):
        """Columnsort is oblivious (no sampling step) but pays four
        local sorts and two remaps; splitter sort pays two sorts and one
        remap plus the sampling phase — cheaper at scale."""
        p = LogPParams(L=6, o=2, g=4, P=16)
        n = 2**16
        assert splitter_sort_time(p, n) < column_sort_time(p, n)
