"""Tests for repro.topology.topologies: the Section 5.1 distance table."""

import pytest

from repro.topology import (
    PAPER_TOPOLOGIES,
    Butterfly,
    FatTree,
    Hypercube,
    Mesh2D,
    Mesh3D,
    Torus2D,
    Torus3D,
    average_distance_exact,
)


class TestSection51Table:
    """The paper's table at P = 1024 (3D networks at 1000)."""

    PAPER_VALUES = {
        "Hypercube": 5.0,
        "Butterfly": 10.0,
        "4deg Fat Tree": 9.33,
        "3D Torus": 7.5,
        "3D Mesh": 10.0,
        "2D Torus": 16.0,
        "2D Mesh": 21.0,
    }

    def test_all_seven_topologies_present(self):
        names = [t.name for t in PAPER_TOPOLOGIES(1024)]
        assert set(names) == set(self.PAPER_VALUES)

    @pytest.mark.parametrize("idx", range(7))
    def test_values_match_paper(self, idx):
        t = PAPER_TOPOLOGIES(1024)[idx]
        expected = self.PAPER_VALUES[t.name]
        assert t.average_distance() == pytest.approx(expected, rel=0.02)

    def test_factor_of_two_claim(self):
        # "The difference between topologies is a factor of two, except
        # for very primitive networks" (2D mesh/torus).
        values = {
            t.name: t.average_distance() for t in PAPER_TOPOLOGIES(1024)
        }
        rich = [v for k, v in values.items() if not k.startswith("2D")]
        assert max(rich) / min(rich) <= 2.0 + 1e-9
        assert max(values.values()) / min(values.values()) <= 4.27


class TestClosedFormsVsBFS:
    """The formulas must agree with exact BFS on explicit graphs."""

    def test_hypercube_exact(self):
        t = Hypercube(64)
        assert t.average_distance_bfs() == pytest.approx(
            average_distance_exact(t.graph())
        )

    @pytest.mark.parametrize(
        "topo,rel",
        [
            (Hypercube(64), 0.05),
            (Torus2D(64), 0.05),
            (Mesh2D(64), 0.05),
            (Torus3D(64), 0.12),
            (Mesh3D(64), 0.12),
        ],
    )
    def test_formula_close_to_bfs(self, topo, rel):
        # Formulas are asymptotic; small P tolerates small deviation.
        assert topo.average_distance() == pytest.approx(
            topo.average_distance_bfs(), rel=rel
        )

    def test_fat_tree_formula_is_exact(self):
        t = FatTree(64)
        assert t.average_distance() == pytest.approx(
            t.average_distance_bfs()
        )

    def test_butterfly_distance_is_stage_count(self):
        assert Butterfly(64).average_distance() == 6


class TestStructure:
    def test_hypercube_degree(self):
        G = Hypercube(32).graph()
        assert all(d == 5 for _, d in G.degree())

    def test_hypercube_diameter(self):
        assert Hypercube(32).diameter() == 5

    def test_torus_regular_degree(self):
        G = Torus2D(25).graph()
        assert all(d == 4 for _, d in G.degree())

    def test_mesh_corner_degree(self):
        G = Mesh2D(25).graph()
        degrees = sorted(d for _, d in G.degree())
        assert degrees[0] == 2 and degrees[-1] == 4

    def test_bisection_widths(self):
        assert Hypercube(64).bisection_width() == 32
        assert Torus2D(64).bisection_width() == 16
        assert Mesh2D(64).bisection_width() == 8
        assert FatTree(64).bisection_width() == 32

    def test_fat_tree_leaf_count(self):
        t = FatTree(64)
        G = t.graph()
        leaves = [n for n in G.nodes if n[0] == 0]
        assert len(leaves) == 64

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(48)
        with pytest.raises(ValueError):
            FatTree(32)
        with pytest.raises(ValueError):
            Mesh2D(30)
        with pytest.raises(ValueError):
            Torus3D(100)

    def test_node_counts(self):
        assert Hypercube(128).graph().number_of_nodes() == 128
        assert Mesh3D(27).graph().number_of_nodes() == 27
