"""Property-based tests over the extension surface: LogGP bulk sends,
the DSM layer, SUMMA, pipelined broadcast, and the exchange collective."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogGPParams, LogPParams, long_message_time
from repro.algorithms.broadcast import (
    binomial_tree,
    linear_tree,
    pipelined_broadcast_program,
    pipelined_tree_time,
)
from repro.algorithms.matmul import run_summa
from repro.sim import (
    Read,
    Recv,
    Send,
    Write,
    exchange,
    run_dsm,
    run_programs,
    validate_schedule,
)

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

loggp_params = st.builds(
    LogGPParams,
    L=st.integers(0, 15).map(float),
    o=st.integers(0, 5).map(float),
    g=st.integers(1, 6).map(float),
    G=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    P=st.just(2),
)


class TestLogGPProperties:
    @SLOW
    @given(loggp_params, st.integers(1, 64))
    def test_bulk_send_time_exact(self, gp, k):
        def prog(rank, P):
            if rank == 0:
                yield Send(1, words=k)
            else:
                from repro.sim import Now

                yield Recv()
                t = yield Now()
                return t
            return None

        res = run_programs(gp, prog)
        assert res.value(1) == pytest.approx(long_message_time(gp, k))
        validate_schedule(res.schedule, exact_latency=True).raise_if_invalid()

    @SLOW
    @given(loggp_params, st.lists(st.integers(1, 20), min_size=1, max_size=6))
    def test_mixed_stream_valid(self, gp, sizes):
        def prog(rank, P):
            if rank == 0:
                for k in sizes:
                    yield Send(1, words=k, payload=k)
            else:
                got = []
                for _ in sizes:
                    m = yield Recv()
                    got.append(m.payload)
                return got
            return None

        res = run_programs(gp, prog)
        assert sorted(res.value(1)) == sorted(sizes)
        validate_schedule(res.schedule, exact_latency=True).raise_if_invalid()


class TestDSMProperties:
    @SLOW
    @given(
        st.integers(2, 5),
        st.lists(st.integers(0, 15), min_size=1, max_size=6),
        st.integers(0, 2**31 - 1),
    )
    def test_every_written_value_lands(self, P, addrs, seed):
        p = LogPParams(L=6, o=2, g=4, P=P)
        rng = np.random.default_rng(seed)
        # Each rank writes disjoint addresses (its index stripe).
        plans = {
            rank: [(a, int(rng.integers(1000))) for a in addrs
                   if a % P == rank]
            for rank in range(P)
        }

        def app(rank, PP):
            for a, v in plans[rank]:
                yield Write(a, value=v)
            return None
            yield

        res = run_dsm(p, app, initial=[0] * 16)
        expect = [0] * 16
        for writes in plans.values():
            for a, v in writes:
                expect[a] = v
        assert list(res.memory) == expect

    @SLOW
    @given(st.integers(2, 5), st.integers(0, 15))
    def test_read_returns_initial_value(self, P, addr):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def app(rank, PP):
            if rank == 0:
                v = yield Read(addr)
                return v
            return None
            yield

        res = run_dsm(p, app, initial=list(range(100, 116)))
        assert res.values[0] == 100 + addr


class TestSUMMAProperties:
    @SLOW
    @given(
        st.sampled_from([(8, 4, 2), (16, 4, 4), (12, 9, 2)]),
        st.integers(0, 2**31 - 1),
    )
    def test_product_correct(self, shape, seed):
        n, P, b = shape
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=P)
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C, _ = run_summa(gp, A, B, b=b)
        assert np.allclose(C, A @ B)


class TestPipelinedBroadcastProperties:
    @SLOW
    @given(
        st.integers(2, 8),
        st.integers(1, 12),
        st.sampled_from(["chain", "binomial"]),
    )
    def test_all_items_everywhere_in_order(self, P, k, family):
        p = LogPParams(L=6, o=2, g=4, P=P)
        children = linear_tree(P) if family == "chain" else binomial_tree(P)
        items = [f"item{i}" for i in range(k)]
        res = run_programs(p, pipelined_broadcast_program(children, items))
        assert all(v == items for v in res.values())
        assert res.makespan == pytest.approx(
            pipelined_tree_time(p, children, k)
        )


class TestExchangeProperties:
    @SLOW
    @given(
        st.integers(2, 5),
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            max_size=15,
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_exchange_delivers_exactly(self, P, pairs, seed):
        p = LogPParams(L=6, o=2, g=4, P=P)
        sendlist = {
            r: [(dst % P, f"{r}->{dst % P}/{i}")
                for i, (src, dst) in enumerate(pairs)
                if src % P == r and dst % P != r]
            for r in range(P)
        }

        def prog(rank, PP):
            out = {}
            for dst, payload in sendlist[rank]:
                out.setdefault(dst, []).append(payload)
            got = yield from exchange(rank, PP, out, tag="pt")
            return sorted(payload for _, payload in got)

        res = run_programs(p, prog)
        for rank in range(P):
            expect = sorted(
                payload
                for r in range(P)
                for dst, payload in sendlist[r]
                if dst == rank
            )
            assert res.value(rank) == expect
