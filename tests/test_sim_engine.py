"""Tests for repro.sim.engine: the deterministic event kernel."""

import pytest

from repro.sim import Engine, SimulationError


class TestEngine:
    def test_runs_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(5, lambda: log.append(5))
        e.schedule(1, lambda: log.append(1))
        e.schedule(3, lambda: log.append(3))
        e.run()
        assert log == [1, 3, 5]

    def test_ties_break_by_insertion_order(self):
        e = Engine()
        log = []
        for i in range(10):
            e.schedule(7.0, lambda i=i: log.append(i))
        e.run()
        assert log == list(range(10))

    def test_now_advances(self):
        e = Engine()
        seen = []
        e.schedule(2.5, lambda: seen.append(e.now))
        e.schedule(4.0, lambda: seen.append(e.now))
        final = e.run()
        assert seen == [2.5, 4.0]
        assert final == 4.0

    def test_schedule_after(self):
        e = Engine()
        log = []
        e.schedule(3, lambda: e.schedule_after(2, lambda: log.append(e.now)))
        e.run()
        assert log == [5]

    def test_events_can_schedule_same_time(self):
        e = Engine()
        log = []

        def first():
            log.append("a")
            e.schedule(e.now, lambda: log.append("b"))

        e.schedule(1, first)
        e.run()
        assert log == ["a", "b"]

    def test_scheduling_in_past_raises(self):
        e = Engine()
        e.schedule(5, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.schedule(3, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1, lambda: None)

    def test_past_tolerance_clamps_float_noise(self):
        """The schedule() edge contract: a time within 1e-12 behind the
        clock is accumulated float noise — it is clamped to ``now`` and
        runs after everything already queued there, not rejected."""
        e = Engine()
        log = []

        def at_five():
            log.append("first")
            # 5.0 - 1e-15: behind now, but well inside the tolerance.
            e.schedule(5.0 - 1e-15, lambda: log.append("clamped"))

        e.schedule(5.0, at_five)
        e.schedule(5.0, lambda: log.append("queued-at-5"))
        final = e.run()
        # The clamped event runs at now, *after* everything already
        # queued at that time — not before it.
        assert log == ["first", "queued-at-5", "clamped"]
        assert final == 5.0  # the clamped event ran at now, not before

    def test_past_tolerance_boundary(self):
        """Exactly PAST_TOLERANCE behind still clamps; anything beyond
        raises.  Pins the constant so a change to it is a visible API
        break, not a silent drift."""
        from repro.sim.engine import PAST_TOLERANCE

        assert PAST_TOLERANCE == 1e-12
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        assert e.now == 1.0
        ran = []
        e.schedule(1.0 - PAST_TOLERANCE, lambda: ran.append(e.now))
        with pytest.raises(SimulationError, match="before current time"):
            e.schedule(1.0 - 2e-12, lambda: None)
        e.run()
        assert ran == [1.0]

    def test_run_until_leaves_later_events(self):
        e = Engine()
        log = []
        e.schedule(1, lambda: log.append(1))
        e.schedule(10, lambda: log.append(10))
        e.run(until=5)
        assert log == [1]
        assert not e.empty()
        e.run()
        assert log == [1, 10]

    def test_event_budget_guards_infinite_loops(self):
        e = Engine(max_events=100)

        def loop():
            e.schedule(e.now, loop)

        e.schedule(0, loop)
        with pytest.raises(SimulationError, match="budget"):
            e.run()

    def test_peek(self):
        e = Engine()
        assert e.peek() is None
        e.schedule(4, lambda: None)
        assert e.peek() == 4

    def test_events_run_counter(self):
        e = Engine()
        for t in range(5):
            e.schedule(t, lambda: None)
        e.run()
        assert e.events_run == 5
