"""Property-based tests for the DSM fence protocol, stencil numerics,
and the columnsort across random shapes."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogGPParams, LogPParams
from repro.algorithms.sort import run_column_sort
from repro.algorithms.stencil import (
    reference_stencil1d,
    reference_stencil2d,
    run_stencil1d,
    run_stencil2d,
)
from repro.sim import Compute, Fence, Read, Write, run_dsm

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFenceProperties:
    @SLOW
    @given(st.integers(2, 5), st.integers(1, 4), st.integers(0, 30))
    def test_fences_order_cross_processor_writes(self, P, n_phases, skew):
        """Writer-then-reader across a fence always observes the write,
        regardless of compute skew."""
        p = LogPParams(L=6, o=2, g=4, P=P)

        def app(rank, PP):
            seen = []
            for phase in range(n_phases):
                writer = phase % PP
                if rank == writer:
                    yield Compute(float(skew * rank))
                    yield Write(phase % 8, value=("w", phase))
                yield Fence(("ph", phase))
                v = yield Read(phase % 8)
                seen.append(v)
                yield Fence(("ph2", phase))
            return seen

        res = run_dsm(p, app, initial=[None] * 8)
        for rank in range(P):
            assert res.values[rank] == [("w", ph) for ph in range(n_phases)]

    @SLOW
    @given(st.integers(2, 6))
    def test_bare_fences_terminate(self, P):
        p = LogPParams(L=6, o=2, g=4, P=P)

        def app(rank, PP):
            for i in range(3):
                yield Fence(i)
            return rank

        res = run_dsm(p, app, initial=[0] * 4)
        assert res.values == list(range(P))


class TestStencilProperties:
    @SLOW
    @given(
        st.sampled_from([(2, 16), (4, 32), (8, 64)]),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    def test_1d_matches_serial(self, shape, iterations, seed):
        P, n = shape
        rng = np.random.default_rng(seed)
        p = LogPParams(L=6, o=2, g=4, P=P)
        values = rng.standard_normal(n)
        out, _ = run_stencil1d(p, values, iterations)
        assert np.allclose(out, reference_stencil1d(values, iterations))

    @SLOW
    @given(
        st.sampled_from([(4, 8), (4, 12), (9, 12)]),
        st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    def test_2d_matches_serial(self, shape, iterations, seed):
        P, n = shape
        rng = np.random.default_rng(seed)
        gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=P)
        grid = rng.standard_normal((n, n))
        out, _ = run_stencil2d(gp, grid, iterations)
        assert np.allclose(out, reference_stencil2d(grid, iterations))


class TestColumnSortProperties:
    @SLOW
    @given(
        st.sampled_from([(2, 8), (2, 16), (3, 24), (4, 72)]),
        st.integers(0, 2**31 - 1),
    )
    def test_sorts_any_input(self, shape, seed):
        P, n = shape
        rng = np.random.default_rng(seed)
        p = LogPParams(L=6, o=2, g=4, P=P)
        data = rng.integers(-50, 50, n).astype(float)
        out = run_column_sort(p, data)
        assert np.array_equal(out.sorted_values, np.sort(data))
