"""Tests for repro.topology.unloaded (Table 1 arithmetic, the LogP
extraction recipe) and repro.topology.saturation (Section 5.3)."""

import math

import pytest

from repro.machines import TABLE1, TABLE1_PRINTED_T160, table1_machine
from repro.topology import (
    NetworkHardware,
    find_knee,
    grid_route,
    latency_vs_load,
    logp_from_hardware,
    simulate_load,
    unloaded_time,
)


class TestUnloadedTime:
    def test_formula(self):
        hw = NetworkHardware(
            name="x", network="n", cycle_ns=25, w=4,
            send_recv_overhead=100, r=8, avg_hops=10,
        )
        # 100 + ceil(160/4) + 10*8
        assert unloaded_time(hw, 160) == 100 + 40 + 80

    def test_ceil_on_channel_width(self):
        hw = NetworkHardware(
            name="x", network="n", cycle_ns=25, w=3,
            send_recv_overhead=0, r=1, avg_hops=0,
        )
        assert unloaded_time(hw, 160) == math.ceil(160 / 3)

    def test_custom_hop_count(self):
        hw = table1_machine("Dash")
        t_avg = unloaded_time(hw, 160)
        t_far = unloaded_time(hw, 160, hops=20)
        assert t_far > t_avg

    def test_rejects_zero_bits(self):
        hw = table1_machine("CM-5")
        with pytest.raises(ValueError):
            unloaded_time(hw, 0)

    @pytest.mark.parametrize("name", list(TABLE1_PRINTED_T160))
    def test_table1_T160_recomputed(self, name):
        """The printed T(M=160) column is reproduced to within 1 cycle."""
        hw = table1_machine(name)
        assert unloaded_time(hw, 160) == pytest.approx(
            TABLE1_PRINTED_T160[name], abs=1.0
        )

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            table1_machine("Cray-9000")

    def test_overhead_dominates_on_commercial_machines(self):
        # Table 1's point: "message communication time through a lightly
        # loaded network is dominated by the send and receive overheads."
        for name in ("nCUBE/2", "CM-5"):
            hw = table1_machine(name)
            total = unloaded_time(hw, 160)
            assert hw.send_recv_overhead / total > 0.9

    def test_research_machines_balanced(self):
        for name in ("Dash", "J-Machine", "Monsoon"):
            hw = table1_machine(name)
            total = unloaded_time(hw, 160)
            assert hw.send_recv_overhead / total < 0.6


class TestLogPExtraction:
    def test_recipe(self):
        hw = NetworkHardware(
            name="x", network="n", cycle_ns=25, w=4,
            send_recv_overhead=100, r=8, avg_hops=5, max_hops=12,
            bisection_bw_bits_per_cycle_per_proc=2.0,
        )
        p = logp_from_hardware(hw, M=160)
        assert p.o == 50
        assert p.L == 12 * 8 + 40
        assert p.g == 80
        assert p.P == 1024

    def test_default_max_hops(self):
        hw = table1_machine("Monsoon")
        p = logp_from_hardware(hw)
        assert p.L == 2 * hw.avg_hops * hw.r + math.ceil(160 / hw.w)

    def test_active_messages_shrink_o(self):
        o_vendor = logp_from_hardware(table1_machine("CM-5")).o
        o_am = logp_from_hardware(table1_machine("CM-5 (AM)")).o
        assert o_am < o_vendor / 20


class TestSaturation:
    @staticmethod
    def torus_route(k):
        def route(s, d):
            return [
                c[0] * k + c[1]
                for c in grid_route((s // k, s % k), (d // k, d % k), (k, k), wrap=True)
            ]

        return route

    def test_latency_flat_at_low_load(self):
        pts = latency_vs_load(
            16, self.torus_route(4), [0.02, 0.08],
            horizon=600, warmup=150, seed=2,
        )
        # "Below the saturation point the latency is fairly insensitive
        # to the load."
        assert pts[1].mean_latency < 1.5 * pts[0].mean_latency

    def test_latency_blows_up_past_saturation(self):
        pts = latency_vs_load(
            16, self.torus_route(4), [0.05, 2.0],
            horizon=600, warmup=150, seed=2,
        )
        assert pts[1].mean_latency > 3 * pts[0].mean_latency

    def test_throughput_tracks_offered_load_below_knee(self):
        pt = simulate_load(
            16, self.torus_route(4), 0.1, horizon=2000, warmup=500, seed=4
        )
        assert pt.throughput == pytest.approx(0.1, rel=0.2)

    def test_find_knee(self):
        pts = latency_vs_load(
            16, self.torus_route(4), [0.05, 0.1, 0.3, 0.8, 1.5, 3.0],
            horizon=600, warmup=150, seed=6,
        )
        knee = find_knee(pts)
        assert 0.1 < knee <= 3.0

    def test_find_knee_unsaturated(self):
        pts = latency_vs_load(
            16, self.torus_route(4), [0.01, 0.02],
            horizon=600, warmup=150, seed=7,
        )
        assert find_knee(pts) == math.inf

    def test_find_knee_empty_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])

    def test_custom_pattern(self):
        # Hot-spot traffic saturates at far lower load than uniform.
        def hotspot(src, rng):
            return 0 if src != 0 else 1

        uniform = simulate_load(
            16, self.torus_route(4), 0.3, horizon=600, warmup=150, seed=8
        )
        hot = simulate_load(
            16, self.torus_route(4), 0.3, horizon=600, warmup=150,
            pattern=hotspot, seed=8,
        )
        assert hot.mean_latency > 2 * uniform.mean_latency

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            simulate_load(16, self.torus_route(4), 0.0)
