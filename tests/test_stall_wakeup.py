"""Regression tests for the capacity stall/wakeup wait-graph.

The scenarios here pin down the hazards the wait-graph rewrite closed:
a freed destination slot must flow past a head-of-queue waiter that is
also blocked on its own outbound capacity; duplicate same-time
activations must stay suppressed when wake conditions interleave; the
end-of-run invariants must be real error paths; and untraced runs must
report the same makespan traced runs do.
"""

import pytest

from repro.core import LogPParams
from repro.sim import (
    Compute,
    Engine,
    LogPMachine,
    Recv,
    Send,
    SimulationError,
    Sleep,
    StallEvent,
    WakeupEvent,
    run_programs,
    stall_report,
)
from repro.sim.machine import _Msg, _Proc


def _mixed_blocking_programs(rank, P):
    """Deterministic many-to-one with a src-blocked head waiter.

    L=4, o=1, g=4 -> capacity 1.  Ranks: 0 = D (hot destination),
    1 = H (head waiter), 2 = B (queued behind H), 3 = E (side sink),
    4 = F (fills D's slot early).

    Timeline: F's message holds D's single inbound slot from t=1 until
    D's first drain at t=11.  H's second send to E is parked at E until
    E drains at t=8, so H injects it at t=8 and its own outbound slot is
    held over [8, 12).  H then commits its send to D at t=8 and parks at
    t=9 needing BOTH its outbound slot and D's inbound slot; B parks
    behind it at t=10 needing only D's slot.  When D drains at t=11 the
    freed slot must go to B — H cannot use it until t=12.
    """
    if rank == 0:  # D
        yield Compute(11)
        got = []
        for _ in range(3):
            m = yield Recv()
            got.append(m.payload)
        return got
    if rank == 1:  # H
        yield Send(3)
        yield Send(3)
        yield Send(0, payload="H")
        return None
    if rank == 2:  # B
        yield Sleep(9)
        yield Send(0, payload="B")
        return None
    if rank == 3:  # E
        yield Compute(8)
        yield Recv()
        yield Recv()
        return None
    if rank == 4:  # F
        yield Send(0, payload="F")
        return None
    return None
    yield


MIXED_PARAMS = LogPParams(L=4, o=1, g=4, P=5)


class TestLostWakeup:
    """The tentpole regression: mixed src/dst blocking many-to-one."""

    def test_freed_slot_bypasses_src_blocked_head(self):
        res = run_programs(MIXED_PARAMS, _mixed_blocking_programs)
        # B's message must be received before H's: D drains F at 11,
        # B at 15, H at 19; with the lost wakeup the slot idles until
        # H unblocks and the order is F, H, B with makespan 21.
        assert res.value(0) == ["F", "B", "H"]
        assert res.makespan == pytest.approx(20.0)

    def test_wait_graph_causality_feed(self):
        res = run_programs(MIXED_PARAMS, _mixed_blocking_programs)
        d_events = [
            e for e in res.stall_events if getattr(e, "dst", None) == 0
        ]
        # H parks needing both slots; B parks needing only D's slot.
        h_stall = next(
            e for e in d_events if isinstance(e, StallEvent) and e.src == 1
        )
        assert h_stall.needs_src and h_stall.needs_dst
        assert h_stall.cause == "both"
        b_stall = next(
            e for e in d_events if isinstance(e, StallEvent) and e.src == 2
        )
        assert not b_stall.needs_src and b_stall.needs_dst

        # At D's first drain (t=11) the scan must skip H and admit B.
        at_drain = [
            e
            for e in d_events
            if isinstance(e, WakeupEvent) and e.time == 11.0 and e.slot == "dst"
        ]
        assert [(e.src, e.admitted) for e in at_drain] == [(1, False), (2, True)]

        # H is re-examined when its own slot frees (t=12, D refilled by
        # B -> not admitted) and finally admitted at D's next drain.
        h_wakes = [
            e
            for e in d_events
            if isinstance(e, WakeupEvent) and e.src == 1
        ]
        assert [(e.time, e.slot, e.admitted) for e in h_wakes] == [
            (11.0, "dst", False),
            (12.0, "src", False),
            (15.0, "dst", True),
        ]

    def test_stall_report_summary(self):
        res = run_programs(MIXED_PARAMS, _mixed_blocking_programs)
        report = res.stall_report()
        assert report.stalls == 3  # H at E, H at D, B at D
        assert report.stalls_by_cause == {"dst": 2, "both": 1}
        assert report.stalls_by_dst == {3: 1, 0: 2}
        assert report.max_queue_by_dst[0] == 2
        assert report.admitted == 3
        assert report.ok

    def test_untraced_run_matches_and_has_empty_feed(self):
        traced = run_programs(MIXED_PARAMS, _mixed_blocking_programs)
        bare = run_programs(
            MIXED_PARAMS, _mixed_blocking_programs, trace=False
        )
        assert bare.makespan == traced.makespan
        assert bare.total_stall_time == traced.total_stall_time
        assert bare.stall_events == []
        assert stall_report(bare.stall_events).stalls == 0

    def test_untraced_stall_report_raises(self):
        """An untraced run has no stall feed; asking it for a report must
        be a loud error, not a silently empty summary (the fast path
        skips the feed entirely, so an empty report would be a lie)."""
        bare = run_programs(
            MIXED_PARAMS, _mixed_blocking_programs, trace=False
        )
        with pytest.raises(ValueError, match="traced run"):
            bare.stall_report()
        # The traced counterpart still reports normally.
        traced = run_programs(MIXED_PARAMS, _mixed_blocking_programs)
        assert traced.stall_report().stalls == 3

    def test_many_to_one_flood_all_delivered(self):
        """Pure many-to-one flood: every sender stalls, every message
        lands, and the receiver is drain-paced (no livelock)."""
        p = LogPParams(L=8, o=1, g=4, P=8)
        k = 5
        n = k * (p.P - 1)

        def prog(rank, P):
            if rank == 0:
                total = 0
                for _ in range(n):
                    m = yield Recv()
                    total += m.payload
                return total
            for i in range(k):
                yield Send(0, payload=rank * 100 + i)
            return None

        res = run_programs(p, prog)
        assert res.value(0) == sum(
            r * 100 + i for r in range(1, p.P) for i in range(k)
        )
        assert res.total_messages == n
        assert res.total_stall_time > 0
        # Receiver-bandwidth lower bound: first drain at o + L, then one
        # reception per g.
        assert res.makespan >= p.o + p.L + (n - 1) * p.g + p.o
        report = res.stall_report()
        assert report.stalls > 0 and report.ok


class TestActivationDedup:
    def test_interleaved_times_stay_suppressed(self):
        """Scheduling t1, t2, t1 must enqueue only two engine events —
        the single "last scheduled time" slot forgot t1's suppression."""
        m = LogPMachine(LogPParams(L=4, o=1, g=4, P=1))
        m._engine = Engine()
        m._procs = [_Proc(0, iter(()))]
        m._schedule = None
        proc = m._procs[0]
        m._schedule_activation(proc, 5.0)
        m._schedule_activation(proc, 7.0)
        m._schedule_activation(proc, 5.0)  # duplicate: must be suppressed
        m._schedule_activation(proc, 7.0)  # duplicate: must be suppressed
        assert len(m._engine._queue) == 2
        assert set(m._procs[0].pending_activations) == {5.0, 7.0}

    def test_fired_activation_can_be_rescheduled(self):
        """The pending set must be cleared when an activation fires, so a
        later same-time wakeup is not lost."""

        def prog(rank, P):
            if rank == 0:
                yield Send(1, payload=1)
            else:
                m = yield Recv()
                return m.payload
            return None

        res = run_programs(LogPParams(L=4, o=1, g=4, P=2), prog)
        assert res.value(1) == 1

    def test_event_count_stays_linear_under_stalls(self):
        """The stall-heavy flood must not devolve into quadratic
        activation churn: events per message stays small."""
        p = LogPParams(L=8, o=1, g=4, P=8)
        k = 20
        n = k * (p.P - 1)

        def prog(rank, P):
            if rank == 0:
                for _ in range(n):
                    yield Recv()
                return None
            for _ in range(k):
                yield Send(0)
            return None

        res = run_programs(p, prog, trace=False)
        assert res.events_run < 40 * n


class TestCompletionInvariants:
    def test_unreceived_arrival_is_an_error(self):
        """A message still awaiting reception at the end of the run must
        raise — the guard is a real error path, not dead code."""

        def prog(rank, P):
            return None
            yield

        m = LogPMachine(LogPParams(L=4, o=1, g=4, P=2))
        m.run(prog)  # run to completion, then corrupt the final state
        m._procs[1].arrived.append(
            _Msg(
                seq=0,
                src=0,
                dst=1,
                payload=None,
                tag=None,
                send_start=0.0,
                inject=1.0,
                arrive=5.0,
            )
        )
        with pytest.raises(SimulationError, match="unreceived"):
            m._check_completion()

    def test_parked_sender_is_an_error(self):
        def prog(rank, P):
            return None
            yield

        m = LogPMachine(LogPParams(L=4, o=1, g=4, P=2))
        m.run(prog)
        m._procs[0].queued_on = 1
        with pytest.raises(SimulationError, match="parked"):
            m._check_completion()

    def test_clean_run_passes(self):
        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            else:
                yield Recv()
            return None

        res = run_programs(LogPParams(L=4, o=1, g=4, P=2), prog)
        assert res.total_messages == 1


class TestUntracedMakespan:
    def test_trailing_drain_counts_without_trace(self):
        """A receiver that is DONE before the message lands still pays
        the receive overhead; untraced runs must include it."""
        p = LogPParams(L=6, o=2, g=4, P=2)

        def prog(rank, P):
            if rank == 0:
                yield Send(1)
            return None
            yield

        traced = run_programs(p, prog, trace=True)
        bare = run_programs(p, prog, trace=False)
        assert traced.makespan == pytest.approx(p.L + 2 * p.o)
        assert bare.makespan == traced.makespan

    def test_makespan_parity_on_grid(self, grid_params):
        """Traced and untraced makespans agree on a contended workload
        across the whole parameter grid."""
        if grid_params.P < 3:
            pytest.skip("needs 3 processors")

        def prog(rank, P):
            if rank == 0:
                for _ in range(2 * (P - 1)):
                    yield Recv()
                return None
            yield Compute(float(rank))
            yield Send(0, payload=rank)
            yield Send(0, payload=-rank)
            return None

        traced = run_programs(grid_params, prog, trace=True)
        bare = run_programs(grid_params, prog, trace=False)
        assert bare.makespan == pytest.approx(traced.makespan)
        assert bare.total_stall_time == pytest.approx(traced.total_stall_time)
