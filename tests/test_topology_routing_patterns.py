"""Tests for repro.topology.routing and repro.topology.patterns."""

import numpy as np
import pytest

from repro.topology import (
    bit_reverse_pattern,
    fat_tree_route,
    grid_route,
    hop_count,
    hotspot_pattern,
    hypercube_route,
    link_load,
    max_link_contention,
    remap_pattern,
    shift_pattern,
    transpose_pattern,
    uniform_pattern,
)


class TestHypercubeRouting:
    def test_route_length_is_hamming_distance(self):
        r = hypercube_route(0b000, 0b111, 3)
        assert hop_count(r) == 3

    def test_route_endpoints(self):
        r = hypercube_route(5, 9, 4)
        assert r[0] == 5 and r[-1] == 9

    def test_consecutive_hops_flip_one_bit(self):
        r = hypercube_route(3, 12, 4)
        for a, b in zip(r, r[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_self_route(self):
        assert hypercube_route(6, 6, 3) == [6]

    def test_ecube_deterministic_lowest_bit_first(self):
        r = hypercube_route(0, 0b101, 3)
        assert r == [0, 0b001, 0b101]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hypercube_route(0, 8, 3)


class TestGridRouting:
    def test_mesh_route_manhattan(self):
        r = grid_route((0, 0), (2, 3), (4, 4))
        assert hop_count(r) == 5

    def test_torus_wraps_short_way(self):
        r = grid_route((0,), (7,), (8,), wrap=True)
        assert hop_count(r) == 1

    def test_torus_no_wrap_when_longer(self):
        r = grid_route((0,), (3,), (8,), wrap=True)
        assert hop_count(r) == 3

    def test_dimension_order(self):
        r = grid_route((0, 0), (2, 2), (4, 4))
        # First corrects dim 0, then dim 1.
        assert r[1] == (1, 0) and r[2] == (2, 0)

    def test_3d(self):
        r = grid_route((0, 0, 0), (1, 1, 1), (3, 3, 3))
        assert hop_count(r) == 3

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grid_route((0, 0), (1,), (4, 4))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            grid_route((0, 0), (4, 0), (4, 4))


class TestFatTreeRouting:
    def test_same_leaf(self):
        assert fat_tree_route(3, 3, 2) == [(0, 3)]

    def test_siblings_two_hops(self):
        r = fat_tree_route(0, 1, 2)
        assert hop_count(r) == 2
        assert r[1] == (1, 0)

    def test_cross_tree_four_hops(self):
        r = fat_tree_route(0, 5, 2)
        assert hop_count(r) == 4
        assert r[2] == (2, 0)  # through the root

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_route(0, 16, 2)


class TestPatterns:
    def test_uniform_is_derangement(self):
        perm = uniform_pattern(32, seed=5)
        assert sorted(perm.tolist()) == list(range(32))
        assert not np.any(perm == np.arange(32))

    def test_transpose_involution(self):
        perm = transpose_pattern(16)
        assert np.array_equal(perm[perm], np.arange(16))

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            transpose_pattern(8)

    def test_bit_reverse_involution(self):
        perm = bit_reverse_pattern(32)
        assert np.array_equal(perm[perm], np.arange(32))

    def test_shift(self):
        assert shift_pattern(8, 3).tolist() == [3, 4, 5, 6, 7, 0, 1, 2]

    def test_hotspot(self):
        perm = hotspot_pattern(8, target=2)
        assert (perm == 2).sum() == 7
        assert perm[2] != 2

    def test_remap_pattern_balanced(self):
        triples = remap_pattern(256, 4)
        assert len(triples) == 12
        assert all(c == 16 for _, _, c in triples)

    def test_remap_rejects_small_n(self):
        with pytest.raises(ValueError):
            remap_pattern(8, 4)


class TestContentionAnalysis:
    """Section 5.6: good vs bad permutations for a fixed routing."""

    @staticmethod
    def hroute(dim):
        return lambda s, d: hypercube_route(s, d, dim)

    def test_shift_contention_free_on_hypercube(self):
        assert max_link_contention(shift_pattern(16), self.hroute(4)) == 1

    def test_bit_reverse_contended(self):
        # The classic bad case for e-cube routing.
        c = max_link_contention(bit_reverse_pattern(64), self.hroute(6))
        assert c >= 2

    def test_hotspot_worst_case(self):
        c = max_link_contention(hotspot_pattern(16), self.hroute(4))
        # The last link into the target carries nearly everything.
        assert c >= 8

    def test_link_load_totals(self):
        perm = shift_pattern(8)
        loads = link_load(perm, self.hroute(3))
        total_hops = sum(
            hop_count(hypercube_route(s, int(d), 3)) for s, d in enumerate(perm)
        )
        assert sum(loads.values()) == total_hops

    def test_empty_pattern(self):
        assert max_link_contention(np.arange(4), self.hroute(2)) == 0
