"""Shared fixtures: canonical parameter sets used throughout the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LogPParams


@pytest.fixture
def fig3_params() -> LogPParams:
    """The Figure 3 broadcast example: P=8, L=6, g=4, o=2."""
    return LogPParams(L=6, o=2, g=4, P=8)


@pytest.fixture
def fig4_params() -> LogPParams:
    """The Figure 4 summation example: P=8, L=5, g=4, o=2."""
    return LogPParams(L=5, o=2, g=4, P=8)


@pytest.fixture
def small_params() -> LogPParams:
    """A small machine for fast simulator tests."""
    return LogPParams(L=6, o=2, g=4, P=4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


#: Parameter grid used by sweep-style tests: spans o-dominated,
#: g-dominated, latency-dominated and near-free regimes.
PARAM_GRID = [
    LogPParams(L=6, o=2, g=4, P=8),
    LogPParams(L=5, o=2, g=4, P=8),
    LogPParams(L=20, o=1, g=2, P=8),
    LogPParams(L=2, o=4, g=1, P=8),
    LogPParams(L=10, o=0, g=1, P=16),
    LogPParams(L=1, o=1, g=8, P=4),
    LogPParams(L=12, o=3, g=3, P=16),
]


@pytest.fixture(params=PARAM_GRID, ids=lambda p: f"L{p.L}o{p.o}g{p.g}P{p.P}")
def grid_params(request) -> LogPParams:
    return request.param
