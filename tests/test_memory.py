"""Tests for repro.memory: the cache simulator and the Figure 7 study."""

import numpy as np
import pytest

from repro.memory import (
    Cache,
    MflopsModel,
    fft_stage_addresses,
    phase1_misses_per_node,
    phase3_misses_per_node,
    phase_mflops,
)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, 32)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(31) is True  # same line
        assert c.access(32) is False  # next line

    def test_direct_mapped_conflict(self):
        c = Cache(1024, 32, associativity=1)
        c.access(0)
        assert c.access(1024) is False  # same set, evicts
        assert c.access(0) is False  # evicted

    def test_two_way_avoids_that_conflict(self):
        c = Cache(1024, 32, associativity=2)
        c.access(0)
        c.access(512)  # maps to same set under 2-way (16 sets)
        assert c.access(0) is True

    def test_lru_replacement(self):
        c = Cache(64, 32, associativity=2)  # 1 set, 2 ways
        c.access(0)
        c.access(32)
        c.access(0)  # touch line 0 -> line 32 is LRU
        c.access(64)  # evicts 32
        assert c.access(0) is True
        assert c.access(32) is False

    def test_stats(self):
        c = Cache(1024, 32)
        c.access(0)
        c.access(0)
        c.access(2048)
        st = c.stats
        assert st.accesses == 3 and st.misses == 2 and st.hits == 1
        assert st.miss_rate == pytest.approx(2 / 3)

    def test_reset(self):
        c = Cache(1024, 32)
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False

    def test_write_no_allocate(self):
        c = Cache(1024, 32, write_allocate=False)
        assert c.access(0, write=True) is False
        assert c.access(0) is False  # still not cached
        c2 = Cache(1024, 32, write_allocate=True)
        c2.access(0, write=True)
        assert c2.access(0) is True

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(1000, 32)
        with pytest.raises(ValueError):
            Cache(1024, 33)
        with pytest.raises(ValueError):
            Cache(1024, 32, associativity=0)
        with pytest.raises(ValueError):
            Cache(1024, 32, associativity=33)


class TestVectorizedBlockPath:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_direct_mapped(self, seed):
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 16384, 3000)
        c1 = Cache(2048, 32)
        c1.access_block(addrs)
        c2 = Cache(2048, 32)
        for a in addrs:
            c2.access(int(a))
        assert c1.stats.misses == c2.stats.misses
        assert c1.stats.accesses == c2.stats.accesses

    def test_state_carries_across_blocks(self):
        c = Cache(1024, 32)
        c.access_block(np.array([0, 32, 64]))
        assert c.access(0) is True

    def test_associative_fallback(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 8192, 1000)
        c1 = Cache(1024, 32, associativity=2)
        c1.access_block(addrs)
        c2 = Cache(1024, 32, associativity=2)
        for a in addrs:
            c2.access(int(a))
        assert c1.stats.misses == c2.stats.misses

    def test_write_no_allocate_block(self):
        c = Cache(1024, 32, write_allocate=False)
        misses = c.access_block(np.array([0, 0, 32]), write=True)
        assert misses == 3  # nothing allocates


class TestFFTTraces:
    def test_stage_touches_every_element_once(self):
        addrs = fft_stage_addresses(16, 0, element_bytes=16)
        elements = sorted(set(addrs // 16))
        assert elements == list(range(16))
        assert len(addrs) == 16

    def test_stage_pairing(self):
        addrs = fft_stage_addresses(8, 0, element_bytes=1)
        # Stage 0 pairs i with i+4.
        assert addrs[:2].tolist() == [0, 4]

    def test_base_offset(self):
        a0 = fft_stage_addresses(8, 1, element_bytes=16, base=0)
        a1 = fft_stage_addresses(8, 1, element_bytes=16, base=4096)
        assert np.array_equal(a1 - a0, np.full(8, 4096))

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError):
            fft_stage_addresses(8, 3)


class TestFigure7:
    """Phase I drops past cache capacity; phase III stays flat."""

    P = 128

    def test_in_cache_rates_match_paper(self):
        # n/P = 2048 points = 32 KB < 64 KB cache: both phases ~2.8.
        n = 2048 * self.P
        assert phase_mflops(n, self.P, "I") == pytest.approx(2.8, abs=0.1)
        assert phase_mflops(n, self.P, "III") == pytest.approx(2.8, abs=0.1)

    def test_streaming_rate_matches_paper(self):
        # n/P = 128K points = 2 MB >> cache: phase I ~2.2.
        n = 131072 * self.P
        assert phase_mflops(n, self.P, "I") == pytest.approx(2.2, abs=0.1)

    def test_phase3_flat_at_all_sizes(self):
        rates = [
            phase_mflops(2**logn, self.P, "III") for logn in (14, 18, 22)
        ]
        assert max(rates) - min(rates) < 0.1

    def test_drop_occurs_past_cache_capacity(self):
        cache_points = 64 * 1024 // 16  # 4096 points fit
        small = phase_mflops(cache_points // 2 * self.P, self.P, "I")
        large = phase_mflops(cache_points * 8 * self.P, self.P, "I")
        assert small > 2.6
        assert large < 2.4

    def test_phase1_misses_grow_past_capacity(self):
        c = Cache(64 * 1024, 32)
        small = phase1_misses_per_node(2**18, self.P, c)
        large = phase1_misses_per_node(2**22, self.P, c)
        assert large > 5 * small

    def test_phase3_misses_constant(self):
        c = Cache(64 * 1024, 32)
        a = phase3_misses_per_node(2**16, self.P, c)
        b = phase3_misses_per_node(2**22, self.P, c)
        assert a == pytest.approx(b, rel=0.05)

    def test_associativity_ablation_reduces_phase1_misses(self):
        # Conflict misses in the direct-mapped cache partly explain the
        # drop; a 4-way cache of the same size misses less in-cache.
        n = 2**19  # 4096 points/proc = exactly cache-sized
        direct = phase1_misses_per_node(n, self.P, Cache(64 * 1024, 32, 1))
        assoc = phase1_misses_per_node(n, self.P, Cache(64 * 1024, 32, 4))
        assert assoc <= direct

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            phase_mflops(2**14, self.P, "II")


class TestMflopsModel:
    def test_calibration_endpoints(self):
        m = MflopsModel()
        assert m.mflops(m.cached_misses_per_node) == pytest.approx(2.8)
        assert m.mflops(m.streaming_misses_per_node) == pytest.approx(2.2)

    def test_monotone_decreasing_in_misses(self):
        m = MflopsModel()
        assert m.mflops(0.1) > m.mflops(0.3) > m.mflops(0.6)
