"""Tests for repro.machines: Table 1 database, CM-5 calibration,
Figure 2 trends, calibration helpers."""

import numpy as np
import pytest

from repro.machines import (
    CM5,
    CM5_FFT_CALIBRATION,
    FIGURE2_DATA,
    GaussianJitter,
    TABLE1,
    bandwidth_to_g,
    cm5,
    cycle_from_mflops,
    figure2_growth_rates,
    fit_growth_rate,
    normalize_to_cycle,
    table1_machine,
)


class TestTable1Database:
    def test_seven_rows(self):
        assert len(TABLE1) == 7

    def test_lookup(self):
        assert table1_machine("Dash").network == "Torus"

    def test_published_constants(self):
        ncube = table1_machine("nCUBE/2")
        assert (ncube.cycle_ns, ncube.w, ncube.r) == (25, 1, 40)
        assert ncube.send_recv_overhead == 6400
        cm = table1_machine("CM-5")
        assert cm.send_recv_overhead == 3600 and cm.avg_hops == 9.3

    def test_active_message_rows_cut_overhead(self):
        assert table1_machine("nCUBE/2 (AM)").send_recv_overhead == 1000
        assert table1_machine("CM-5 (AM)").send_recv_overhead == 132


class TestCM5Calibration:
    def test_cycle_is_4_5_us(self):
        assert CM5_FFT_CALIBRATION.cycle_us == 4.5

    def test_ticks_per_cycle_about_150(self):
        # "a cycle corresponds to 4.5 us, or 150 clock ticks"
        assert CM5_FFT_CALIBRATION.ticks_per_cycle == pytest.approx(148.5, abs=2)

    def test_logp_in_cycles(self):
        p = CM5_FFT_CALIBRATION.logp()
        assert p.o == pytest.approx(0.44, abs=0.01)
        assert p.L == pytest.approx(1.33, abs=0.01)
        assert p.g == pytest.approx(0.89, abs=0.01)
        assert p.P == 128

    def test_logp_in_microseconds(self):
        p = CM5_FFT_CALIBRATION.logp_us(P=16)
        assert (p.L, p.o, p.g) == (6.0, 2.0, 4.0)
        assert p.P == 16

    def test_predicted_remap_rate(self):
        # max(1 + 2*2, 4) = 5 us/point -> 16 bytes / 5 us = 3.2 MB/s.
        per_point = CM5_FFT_CALIBRATION.predicted_remap_us_per_point()
        assert per_point == 5.0
        assert CM5_FFT_CALIBRATION.bytes_per_point / per_point == pytest.approx(3.2)

    def test_unit_conversions_roundtrip(self):
        c = CM5_FFT_CALIBRATION
        assert c.us(c.cycles(7.3)) == pytest.approx(7.3)


class TestCM5Machine:
    def test_double_net_halves_g(self):
        assert cm5(P=8, double_net=True).params_us().g == 2.0

    def test_machine_units(self):
        m = cm5(P=4)
        assert m.machine(units="us").params.L == 6.0
        assert m.machine(units="cycles").params.L == pytest.approx(6.0 / 4.5)
        with pytest.raises(ValueError):
            m.machine(units="seconds")

    def test_node_cache_spec(self):
        cache = cm5().node_cache()
        assert cache.size_bytes == 64 * 1024
        assert cache.line_bytes == 32
        assert cache.associativity == 1

    def test_mb_per_second(self):
        assert cm5().mb_per_second(100.0, 50.0) == 2.0
        with pytest.raises(ValueError):
            cm5().mb_per_second(100.0, 0.0)

    def test_jitter_configured(self):
        m = cm5(P=4, jitter_sigma=0.2)
        machine = m.machine()
        assert machine.compute_jitter is not None


class TestGaussianJitter:
    def test_zero_sigma_identity(self):
        j = GaussianJitter(0.0)
        assert j(0, 10.0) == 10.0

    def test_never_negative(self):
        j = GaussianJitter(2.0, seed=9)
        assert all(j(0, 5.0) >= 0 for _ in range(500))

    def test_mean_preserved_roughly(self):
        j = GaussianJitter(0.1, seed=4)
        vals = [j(0, 10.0) for _ in range(2000)]
        assert np.mean(vals) == pytest.approx(10.0, rel=0.02)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianJitter(-0.1)


class TestFigure2Trends:
    def test_six_machines(self):
        assert len(FIGURE2_DATA) == 6
        assert FIGURE2_DATA[0].machine == "Sun 4/260"
        assert FIGURE2_DATA[-1].machine == "DEC alpha"

    def test_growth_rates_match_paper(self):
        rates = figure2_growth_rates()
        # "The floating point SPEC benchmarks improved at about 97% per
        # year since 1987, and integer ... about 54% per year."
        assert rates["floating"] == pytest.approx(0.97, abs=0.06)
        assert rates["integer"] == pytest.approx(0.54, abs=0.06)

    def test_fit_exact_exponential(self):
        years = np.arange(1987, 1993)
        values = 5.0 * 1.5 ** (years - 1987)
        assert fit_growth_rate(years, values) == pytest.approx(0.5)

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_growth_rate([1987], [1.0])
        with pytest.raises(ValueError):
            fit_growth_rate([1987, 1988], [1.0, -2.0])


class TestCalibrationHelpers:
    def test_cycle_from_mflops(self):
        # 2.2 Mflops, 10 flops per butterfly -> 4.5 us/cycle.
        assert cycle_from_mflops(2.2, 10) == pytest.approx(4.545, abs=0.01)

    def test_bandwidth_to_g(self):
        # 20 bytes / 5 MB/s -> 4 us.
        assert bandwidth_to_g(20, 5) == 4.0

    def test_normalize_to_cycle(self):
        p = normalize_to_cycle(6, 2, 4, 128, cycle_us=4.5)
        assert p.o == pytest.approx(0.444, abs=0.001)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cycle_from_mflops(0, 10)
        with pytest.raises(ValueError):
            bandwidth_to_g(16, 0)
        with pytest.raises(ValueError):
            normalize_to_cycle(1, 1, 1, 1, cycle_us=0)
