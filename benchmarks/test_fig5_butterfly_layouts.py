"""FIG5 — Figure 5: the 8-input butterfly and the hybrid layout.

Regenerates the layout analysis the figure illustrates: which butterfly
columns need remote data under the cyclic, blocked and hybrid layouts,
and the resulting communication costs (Section 4.1.1's formulas) —
the hybrid's single remap beats the others by a factor of ~log P.
"""

from repro.core import (
    LogPParams,
    fft_comm_time_cyclic,
    fft_comm_time_hybrid,
)
from repro.algorithms.fft import remote_reference_profile
from repro.viz import format_table


def test_fig5_paper_instance(benchmark, save_exhibit):
    """The figure's own instance: n=8, P=2, remap between columns 2, 3."""

    def profile_all():
        return {
            layout: remote_reference_profile(8, 2, layout)
            for layout in ("cyclic", "blocked", "hybrid")
        }

    profiles = benchmark(profile_all)
    rows = []
    for layout, prof in profiles.items():
        rows.append(
            [layout] + [("remote" if c.remote_nodes else "local") for c in prof]
        )
    table = format_table(
        ["layout", "col 1", "col 2", "col 3"],
        rows,
        title="Figure 5: butterfly column locality, n=8 P=2 "
        "(hybrid remaps between columns 2 and 3)",
    )
    save_exhibit("fig5_layouts_small", table)

    assert [c.remote_nodes for c in profiles["cyclic"]] == [0, 0, 8]
    assert [c.remote_nodes for c in profiles["blocked"]] == [8, 0, 0]
    assert all(c.remote_nodes == 0 for c in profiles["hybrid"])


def test_fig5_layout_cost_sweep(benchmark, save_exhibit):
    """Communication time per layout as n grows (P=16, L=6 g=4 o=2)."""
    p = LogPParams(L=6, o=2, g=4, P=16)

    def sweep():
        rows = []
        for logn in (8, 10, 12, 14, 16, 18):
            n = 2**logn
            cyc = fft_comm_time_cyclic(p, n)
            hyb = fft_comm_time_hybrid(p, n)
            rows.append([n, cyc, cyc, hyb, cyc / hyb])
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["n", "cyclic", "blocked", "hybrid", "cyclic/hybrid"],
        rows,
        floatfmt=".4g",
        title="Layout communication cost (cycles), P=16 — the hybrid's "
        "single remap wins by ~log2(P)/(1-1/P) = 4.27",
    )
    save_exhibit("fig5_layout_costs", table)
    assert rows[-1][4] > 4.0
