"""SEC7 — parameter determination, closed loop.

"This will require refining the process of parameter determination and
evaluating a large number of machines."  The microbenchmark suite of
`repro.machines.fit` measures a machine knowing nothing but its program
API; run against simulated machines with hidden parameters, it must
hand them back.
"""

import math

from repro.core import LogPParams
from repro.machines.fit import measure_logp
from repro.viz import format_table

MACHINES = [
    LogPParams(L=6, o=2, g=4, P=8, name="figure-3"),
    LogPParams(L=1.3, o=0.44, g=0.89, P=8, name="CM-5 (cycles)"),
    LogPParams(L=16, o=1, g=4, P=4, name="latency-heavy"),
    LogPParams(L=5, o=3, g=1, P=4, name="overhead-bound"),
]


def test_sec7_parameter_recovery(benchmark, save_exhibit):
    def sweep():
        rows = []
        for p in MACHINES:
            m = measure_logp(p)
            rows.append(
                [
                    p.name,
                    f"{p.L:g}/{m.L:g}",
                    f"{p.o:g}/{m.o:g}",
                    f"{max(p.g, p.o):g}/{m.effective_g:g}",
                    m.pipeline_depth,
                    math.ceil((p.L + 2 * p.o) / max(p.g, p.o)),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["machine", "L true/measured", "o true/measured",
         "eff. g true/measured", "knee measured", "knee predicted"],
        rows,
        title="Section 7: LogP parameter determination by microbenchmark "
        "(send clock, empty RTT, receiver saturation, outstanding-ops "
        "knee) — closed loop against hidden parameters",
    )
    save_exhibit("sec7_parameter_fit", table)
    for row in rows:
        for cell in row[1:4]:
            true, measured = cell.split("/")
            assert abs(float(true) - float(measured)) < 1e-6
        assert abs(row[4] - row[5]) <= 1
