"""PERF — throughput of the reproduction's own machinery.

Not a paper exhibit: these benchmarks time the simulation substrate
itself (event-engine dispatch, message round-trips through the LogP
machine, cache-simulator block processing, packet-level network steps)
so regressions in the infrastructure are visible.  These use
pytest-benchmark's statistical timing directly.
"""

import numpy as np

from repro.core import LogPParams
from repro.memory.cache import Cache
from repro.sim import Engine, Recv, Send, run_programs
from repro.topology import grid_route, simulate_load


def test_perf_engine_dispatch(benchmark):
    """Raw event-queue throughput."""

    def run():
        e = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for t in range(20_000):
            e.schedule(float(t), tick)
        e.run()
        return count

    assert benchmark(run) == 20_000


def test_perf_machine_message_stream(benchmark):
    """End-to-end simulated messages per second (trace off)."""
    p = LogPParams(L=6, o=2, g=4, P=2)
    k = 2_000

    def prog(rank, P):
        if rank == 0:
            for _ in range(k):
                yield Send(1)
        else:
            for _ in range(k):
                yield Recv()
        return None

    def run():
        return run_programs(p, prog, trace=False).total_messages

    assert benchmark(run) == k


def test_perf_cache_block_path(benchmark):
    """Vectorized direct-mapped cache throughput."""
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 22, 200_000)

    def run():
        c = Cache(64 * 1024, 32)
        c.access_block(addrs)
        return c.stats.accesses

    assert benchmark(run) == 200_000


def test_perf_machine_many_to_one_stalls(benchmark):
    """Stall-heavy many-to-one flood: the wait-graph wakeup path.

    Every sender parks repeatedly under the ``ceil(L/g)`` capacity
    constraint and every drain at the hot destination scans the waiter
    list, so this tracks the overhead of the stall/wakeup machinery
    itself (trace off, like the stream benchmark above).
    """
    p = LogPParams(L=8, o=1, g=4, P=16)
    k = 150
    n = k * (p.P - 1)

    def prog(rank, P):
        if rank == 0:
            for _ in range(n):
                yield Recv()
            return None
        for _ in range(k):
            yield Send(0)
        return None

    def run():
        res = run_programs(p, prog, trace=False)
        assert res.total_stall_time > 0
        return res.total_messages

    assert benchmark(run) == n


def test_perf_fuzz_smoke_profile(benchmark):
    """Fixed-seed fuzz smoke sweep (deterministic latency), timed so the
    correctness net itself stays cheap enough for tier-1."""
    from repro.sim.fuzz import fuzz_sweep

    def run():
        summary = fuzz_sweep(range(60), ("fixed",))
        assert summary.ok, summary.failures[:5]
        return summary.cases

    assert benchmark(run) == 60


def test_perf_packet_network(benchmark):
    """Packet-level network simulator step rate."""
    K = 8

    def route(s, d):
        return [
            c[0] * K + c[1]
            for c in grid_route((s // K, s % K), (d // K, d % K), (K, K), wrap=True)
        ]

    def run():
        return simulate_load(
            64, route, 0.3, horizon=400, warmup=100, seed=1
        ).delivered

    assert benchmark(run) > 0
