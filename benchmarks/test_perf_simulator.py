"""PERF — throughput of the reproduction's own machinery.

Not a paper exhibit: these benchmarks time the simulation substrate
itself (event-engine dispatch, message round-trips through the LogP
machine, cache-simulator block processing, packet-level network steps)
so regressions in the infrastructure are visible.  These use
pytest-benchmark's statistical timing directly.
"""

import numpy as np

from repro.core import LogPParams
from repro.memory.cache import Cache
from repro.sim import Engine, Recv, Send, run_programs
from repro.topology import grid_route, simulate_load


def test_perf_engine_dispatch(benchmark):
    """Raw event-queue throughput."""

    def run():
        e = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for t in range(20_000):
            e.schedule(float(t), tick)
        e.run()
        return count

    assert benchmark(run) == 20_000


def test_perf_machine_message_stream(benchmark):
    """End-to-end simulated messages per second (trace off)."""
    p = LogPParams(L=6, o=2, g=4, P=2)
    k = 2_000

    def prog(rank, P):
        if rank == 0:
            for _ in range(k):
                yield Send(1)
        else:
            for _ in range(k):
                yield Recv()
        return None

    def run():
        return run_programs(p, prog, trace=False).total_messages

    assert benchmark(run) == k


def test_perf_cache_block_path(benchmark):
    """Vectorized direct-mapped cache throughput."""
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 22, 200_000)

    def run():
        c = Cache(64 * 1024, 32)
        c.access_block(addrs)
        return c.stats.accesses

    assert benchmark(run) == 200_000


def test_perf_packet_network(benchmark):
    """Packet-level network simulator step rate."""
    K = 8

    def route(s, d):
        return [
            c[0] * K + c[1]
            for c in grid_route((s // K, s % K), (d // K, d % K), (K, K), wrap=True)
        ]

    def run():
        return simulate_load(
            64, route, 0.3, horizon=400, warmup=100, seed=1
        ).delivered

    assert benchmark(run) > 0
