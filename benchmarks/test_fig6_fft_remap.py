"""FIG6 — Figure 6: FFT execution time vs size; naive vs staggered remap.

The paper ran a 128-processor CM-5 up to 16M points; the reproduction
runs the same phase structure on the simulated machine at P=64 and
n up to 2^16 (the phenomena are P- and n-scalable; EXPERIMENTS.md
records the scale substitution).  Series:

* computation — the two all-local phases, ``(n/P) log2 n`` butterflies
  at the calibrated 4.5 us each;
* staggered remap — simulated, contention-free;
* naive remap — simulated, destination-ordered, capacity-stalled.

Shape to match: both remaps linear in n; naive several times the
staggered (an order of magnitude on the real machine, where fat-tree
internal saturation adds to what LogP models); staggered a small
fraction of computation.
"""

import math

from repro.machines import cm5
from repro.algorithms.fft import simulate_remap
from repro.viz import format_table

MACHINE = cm5(P=64)
SIZES = [2**12, 2**13, 2**14, 2**15, 2**16]


def _series():
    p = MACHINE.params_us()
    cal = MACHINE.calibration
    rows = []
    for n in SIZES:
        compute_s = (n / p.P) * math.log2(n) * cal.cycle_us * 1e-6
        stag = simulate_remap(p, n, "staggered", point_cost=cal.point_us)
        naive = simulate_remap(p, n, "naive", point_cost=cal.point_us)
        rows.append(
            [
                n,
                compute_s,
                naive.makespan * 1e-6,
                stag.makespan * 1e-6,
                naive.makespan / stag.makespan,
                compute_s / (stag.makespan * 1e-6),
            ]
        )
    return rows


def test_fig6_remap_schedules(benchmark, save_exhibit):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    table = format_table(
        ["n", "compute (s)", "naive remap (s)", "staggered remap (s)",
         "naive/staggered", "compute/staggered"],
        rows,
        floatfmt=".3g",
        title="Figure 6 (P=64 simulated CM-5): naive vs staggered remap "
        "(paper at P=128: naive ~1.5x compute, staggered ~1/7x; ratios "
        "grow with P)",
    )
    save_exhibit("fig6_fft_remap", table)

    for n, compute_s, naive_s, stag_s, ratio, comp_ratio in rows:
        # Staggered remap is a small fraction of computation.
        assert stag_s < compute_s / 4
        # Naive is several times staggered.
        assert ratio > 1.8
    # The naive penalty grows with n (stall pile-up deepens).
    ratios = [r[4] for r in rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3.5
    # The staggered remap scales linearly with n (within 15%).
    per_point = [r[3] / r[0] for r in rows]
    assert max(per_point) / min(per_point) < 1.2
