"""SEC423 — Section 4.2.3: connected components and contention.

"Processors owning [component-representative] nodes are the target of
increasing numbers of pointer-jumping queries as the algorithm
progresses.  This leads to high contention, which the CRCW PRAM ignores,
but LogP makes apparent" — and careful implementation (request
combining) "considerably mitigates" it.

Runs the distributed hook-and-jump algorithm on real graphs (answers
verified against networkx) in both the naive and combining variants, and
reports receive-load distributions and makespans.
"""

import networkx as nx
import numpy as np

from repro.core import LogPParams
from repro.algorithms.components import (
    hotspot_factor,
    labels_to_sets,
    run_connected_components,
)
from repro.viz import format_table

P8 = LogPParams(L=6, o=2, g=4, P=8)


def test_sec423_contention_mitigation(benchmark, save_exhibit):
    G = nx.gnm_random_graph(96, 400, seed=42)
    edges = list(G.edges())
    truth = sorted((frozenset(c) for c in nx.connected_components(G)), key=min)

    def run_both():
        naive = run_connected_components(P8, 96, edges, combining=False)
        comb = run_connected_components(P8, 96, edges, combining=True)
        return naive, comb

    naive, comb = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert labels_to_sets(naive.labels) == truth
    assert labels_to_sets(comb.labels) == truth

    table = format_table(
        ["variant", "makespan", "total msgs received", "max at one proc",
         "hot-spot factor", "rounds"],
        [
            ["naive (one query per lookup)", naive.makespan,
             int(naive.receive_load.sum()), int(naive.receive_load.max()),
             round(hotspot_factor(naive.receive_load), 2), naive.rounds],
            ["request combining", comb.makespan,
             int(comb.receive_load.sum()), int(comb.receive_load.max()),
             round(hotspot_factor(comb.receive_load), 2), comb.rounds],
        ],
        floatfmt=".6g",
        title="Section 4.2.3: connected components of G(96, 400) on "
        "L=6 o=2 g=4 P=8 (single giant component -> root queries "
        "concentrate)",
    )
    save_exhibit("sec423_components", table)

    # The contention-growth signature: per-round pointer-jumping query
    # concentration at the busiest owner rises toward 1 as components
    # merge ("increasing numbers of pointer-jumping queries").
    conc = naive.query_concentration()
    vols_naive = [int(c.sum()) for c in naive.queries_by_round]
    vols_comb = [int(c.sum()) for c in comb.queries_by_round]
    growth = format_table(
        ["round", "jump-query concentration (naive)",
         "jump queries (naive)", "jump queries (combining)"],
        [
            [r + 1, conc[r], vols_naive[r], vols_comb[r]]
            for r in range(len(conc))
        ],
        floatfmt=".3g",
        title="Per-round pointer-jumping traffic: the funnel the paper "
        "describes, and what combining saves",
    )
    save_exhibit("sec423_contention_growth", growth)

    assert comb.receive_load.sum() < 0.8 * naive.receive_load.sum()
    assert comb.makespan < naive.makespan
    assert comb.receive_load.max() < naive.receive_load.max()
    assert conc[-1] > conc[0]
    assert vols_comb[-1] < vols_naive[-1] / 4


def test_sec423_density_sweep(benchmark, save_exhibit):
    """"For sufficiently dense graphs our connected components algorithm
    is compute-bound": the mitigated variant's win shrinks in relative
    message volume as density grows (queries amortize over edges)."""

    def sweep():
        rows = []
        for m_edges in (100, 300, 600):
            G = nx.gnm_random_graph(64, m_edges, seed=7)
            edges = list(G.edges())
            naive = run_connected_components(P8, 64, edges, combining=False)
            comb = run_connected_components(P8, 64, edges, combining=True)
            rows.append(
                [
                    m_edges,
                    naive.makespan,
                    comb.makespan,
                    round(naive.makespan / comb.makespan, 2),
                    int(naive.receive_load.sum()),
                    int(comb.receive_load.sum()),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["edges", "naive makespan", "combining makespan", "naive/combining",
         "naive msgs", "combining msgs"],
        rows,
        floatfmt=".6g",
        title="Components on G(64, m): combining's advantage vs density",
    )
    save_exhibit("sec423_density", table)
    for row in rows:
        assert row[3] >= 1.0
    # Combining's message saving grows with density in absolute terms.
    savings = [r[4] - r[5] for r in rows]
    assert savings[-1] > savings[0]
