"""SEC32/SEC415 — techniques the model rewards, measured.

1. **Multithreading (Section 3.2):** "the capacity constraint allows
   multithreading to be employed only up to a limit of L/g virtual
   processors."  A requester keeps v round-trip requests in flight to
   one server; throughput rises with v and saturates at the capacity
   knee.
2. **Overlapping communication with computation (Section 4.1.5):**
   "if o is small compared to g, each processor idles for g - 2o cycles
   between successive transmissions during the remap.  The remap can be
   merged into the computation phases ... this eliminates idling."
   We compare compute-then-remap against the merged schedule on a
   small-o machine.
3. **DRAM trend (Section 2):** "quadrupling in size every three years"
   — the 59 %/year fit over the DRAM generations.
"""

import pytest

from repro.core import LogPParams
from repro.machines import cm5
from repro.machines.trends import DRAM_CAPACITY_DATA, dram_growth_rate
from repro.algorithms.fft import simulate_remap
from repro.sim import Compute, Recv, Send, run_programs
from repro.viz import format_table


def _multithread_throughput(p: LogPParams, v: int, rounds: int) -> float:
    """``v`` virtual processors per physical one, each with a single
    outstanding remote operation (it resumes when its message is
    delivered, ``L + 2o`` after issue).  Returns operations per cycle —
    the paper's accounting for latency-masking multithreading.
    """
    import heapq

    op_latency = p.L + 2 * p.o

    def prog(rank, P):
        from repro.sim import Now, Sleep

        if rank == 0:
            total = v * rounds
            ready = [(0.0, vp) for vp in range(v)]
            heapq.heapify(ready)
            for _ in range(total):
                t_ready, vp = heapq.heappop(ready)
                now = yield Now()
                if t_ready > now:
                    yield Sleep(t_ready - now)
                yield Send(1, tag="op")
                now = yield Now()
                heapq.heappush(ready, (now - p.o + op_latency, vp))
            t = yield Now()
            return (total, t)
        else:
            for _ in range(v * rounds):
                yield Recv(tag="op")
        return None

    res = run_programs(p, prog)
    total, t = res.value(0)
    return total / t


def test_sec32_multithreading_limit(benchmark, save_exhibit):
    # The paper's idealization: negligible overhead, so a virtual
    # processor's operation completes L after issue and the knee sits
    # exactly at L/g in-flight operations.
    p = LogPParams(L=16, o=0, g=4, P=2)  # capacity L/g = 4

    def sweep():
        return [
            [v, _multithread_throughput(p, v, rounds=40)]
            for v in (1, 2, 3, 4, 6, 8, 12)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["virtual processors v", "remote ops per cycle"],
        rows,
        floatfmt=".4g",
        title="Section 3.2: multithreading masks latency only up to "
        f"L/g = {p.capacity} virtual processors (L=16 o=0 g=4; "
        "bandwidth ceiling 1/g = 0.25)",
    )
    save_exhibit("sec32_multithreading", table)
    tp = dict((int(v), x) for v, x in rows)
    # Linear growth region: v/L ops per cycle.
    assert tp[2] == pytest.approx(2 / 16, rel=0.1)
    # Knee at v = L/g = 4: the bandwidth ceiling 1/g.
    assert tp[4] == pytest.approx(1 / 4, rel=0.1)
    # Flat beyond the capacity limit.
    assert abs(tp[8] - tp[4]) < 0.05 * tp[4]
    assert abs(tp[12] - tp[4]) < 0.05 * tp[4]


def test_sec415_overlap_communication_computation(benchmark, save_exhibit):
    """Merged remap+compute vs sequential phases on a small-o machine."""
    machine = cm5(P=16)
    cal = machine.calibration
    # A future CM-5: o cut 8x, as Section 4.1.5 anticipates.
    p = LogPParams(L=6.0, o=0.25, g=4.0, P=16, name="small-o CM-5")
    n = 2**12
    per_point_compute = 3.0  # cycles of butterfly work folded per point

    def run_both():
        k = n // p.P - n // (p.P * p.P)
        # Sequential: all compute, then a bare remap.
        seq_remap = simulate_remap(p, n, "staggered", point_cost=0.0)
        sequential = (n // p.P) * per_point_compute + seq_remap.makespan
        # Merged: the same compute interleaved into the send loop.
        merged = simulate_remap(
            p, n, "staggered", point_cost=per_point_compute
        ).makespan
        return sequential, merged, seq_remap.makespan, k

    sequential, merged, remap_only, k = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    idle_per_msg = max(0.0, p.g - 2 * p.o)
    table = format_table(
        ["schedule", "total time (us)"],
        [
            ["compute phase then remap (sequential)", sequential],
            ["remap merged into computation", merged],
            ["bare remap alone", remap_only],
            [f"idle per message in bare remap (g - 2o)", idle_per_msg],
        ],
        floatfmt=".5g",
        title="Section 4.1.5: overlapping communication with computation "
        "(o=0.25, g=4): merging hides compute in the g - 2o gaps",
    )
    save_exhibit("sec415_overlap", table)
    assert merged < sequential
    # The merged schedule hides a large share of the compute.
    hidden = sequential - merged
    assert hidden > 0.5 * (n // p.P) * per_point_compute


def test_sec2_dram_trend(benchmark, save_exhibit):
    rate = benchmark(dram_growth_rate)
    rows = [[y, b // 1024] for y, b in DRAM_CAPACITY_DATA]
    rows.append(["fit", f"{rate:.0%}/yr (4x per 3yr = 59%)"])
    table = format_table(
        ["year", "DRAM Kbit per chip"],
        rows,
        title="Section 2: 'quadrupling in size every three years'",
    )
    save_exhibit("sec2_dram_trend", table)
    assert abs(rate - (4 ** (1 / 3) - 1)) < 0.03
