"""SEC6 — Section 6: what the other models predict for the same problems.

One table per problem (broadcast, summation, FFT), with every model's
prediction side by side on the same physical machine:

* PRAM — free communication: cost in synchronous steps, independent of
  L, o, g (the loophole of Section 6.1);
* delay model — latency only;
* postal — latency + sender occupation (o=0, g=1);
* BSP — superstep-charged (whole h-relation + barrier per step);
* LogP — the analytic optimum;
* simulation — the LogP machine actually executing the schedule.

The exhibit makes Section 6's argument quantitative: models that ignore
overhead/bandwidth underestimate wildly, BSP overestimates by charging
synchronization, and LogP's analysis matches its machine exactly.
"""

import numpy as np

from repro.core import LogPParams, fft_total_time
from repro.algorithms.broadcast import broadcast_program, optimal_broadcast_tree
from repro.algorithms.summation import (
    distribute_inputs,
    optimal_summation_tree,
    summation_program,
    summation_time,
)
from repro.models import (
    bsp_fft_cost,
    bsp_from_logp,
    bsp_sum_cost,
    delay_broadcast_time,
    delay_fft_time,
    delay_sum_time,
    logp_scan_time,
    postal_broadcast_time,
    pram_broadcast_steps,
    pram_sum_steps,
    scan_model_scan_steps,
)
from repro.sim import run_programs
from repro.viz import format_table

MACHINE = LogPParams(L=6, o=2, g=4, P=16)


def test_sec6_broadcast_comparison(benchmark, save_exhibit):
    def build():
        tree = optimal_broadcast_tree(MACHINE)
        sim = run_programs(MACHINE, broadcast_program(tree, 0)).makespan
        return [
            ["PRAM (steps)", pram_broadcast_steps(MACHINE.P)],
            ["delay model (d=L)", delay_broadcast_time(MACHINE.P, MACHINE.L)],
            ["postal (lam=L)", postal_broadcast_time(MACHINE.P, int(MACHINE.L))],
            ["LogP analytic optimum", tree.completion_time],
            ["LogP simulated", sim],
        ]

    rows = benchmark(build)
    table = format_table(
        ["model", "predicted broadcast time (cycles)"],
        rows,
        floatfmt=".4g",
        title=f"Broadcast to P={MACHINE.P} on L=6 o=2 g=4: model by model",
    )
    save_exhibit("sec6_broadcast", table)
    by = dict(rows)
    assert by["LogP analytic optimum"] == by["LogP simulated"]
    assert by["PRAM (steps)"] < by["postal (lam=L)"] <= by["LogP analytic optimum"]


def test_sec6_summation_comparison(benchmark, save_exhibit, rng):
    n = 300

    def build():
        t_opt = summation_time(MACHINE, n)
        tree = optimal_summation_tree(MACHINE, t_opt)
        values = rng.standard_normal(tree.total_values)
        sim = run_programs(
            MACHINE, summation_program(tree, distribute_inputs(tree, values))
        ).makespan
        return [
            ["PRAM (steps)", pram_sum_steps(n)],
            ["delay model (d=L)", delay_sum_time(n, MACHINE.P, MACHINE.L)],
            ["BSP", bsp_sum_cost(bsp_from_logp(MACHINE), n)],
            ["LogP analytic optimum", t_opt],
            ["LogP simulated", sim],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["model", f"predicted time to sum n={n} (cycles)"],
        rows,
        floatfmt=".5g",
        title="Summation: the PRAM's log(n) fantasy vs BSP's barrier tax "
        "vs LogP",
    )
    save_exhibit("sec6_summation", table)
    by = dict(rows)
    assert by["PRAM (steps)"] < by["LogP analytic optimum"] / 3
    assert by["LogP simulated"] <= by["LogP analytic optimum"]
    assert by["BSP"] > by["LogP analytic optimum"]


def test_sec6_fft_comparison(benchmark, save_exhibit):
    n = 2**12

    def build():
        return [
            ["delay model (d=L)", delay_fft_time(n, MACHINE.P, MACHINE.L)],
            ["BSP", bsp_fft_cost(bsp_from_logp(MACHINE), n)],
            ["LogP (hybrid layout)", fft_total_time(MACHINE, n, "hybrid")],
            ["LogP (cyclic layout)", fft_total_time(MACHINE, n, "cyclic")],
        ]

    rows = benchmark(build)
    table = format_table(
        ["model", f"predicted FFT time, n={n} (cycles)"],
        rows,
        floatfmt=".6g",
        title="FFT: the delay model sees no bandwidth at all; BSP cannot "
        "rank remap schedules; LogP separates layouts and schedules",
    )
    save_exhibit("sec6_fft", table)
    by = dict(rows)
    assert by["delay model (d=L)"] < by["LogP (hybrid layout)"]
    assert by["LogP (hybrid layout)"] < by["LogP (cyclic layout)"]


def test_sec6_pram_simulation_cost(benchmark, save_exhibit):
    """Section 6.1: general-purpose PRAM simulation on a distributed
    machine 'may be unacceptably slow, especially when network bandwidth
    and processor overhead ... are properly accounted' — here it is,
    properly accounted."""
    from repro.models import pram_slowdown, pram_sum_program

    n = 32

    def build():
        rows = []
        for machine in (
            LogPParams(L=2, o=1, g=1, P=16, name="cheap network"),
            MACHINE,
            LogPParams(L=40, o=8, g=8, P=16, name="costly network"),
        ):
            ideal, emulated, per_step = pram_slowdown(
                machine, pram_sum_program(n), n, initial=list(range(n))
            )
            assert emulated.memory[0] == sum(range(n))
            rows.append(
                [
                    machine.name or f"L{machine.L} o{machine.o} g{machine.g}",
                    ideal.steps,
                    emulated.makespan,
                    per_step,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["machine", "PRAM steps", "LogP cycles (measured)",
         "cycles per PRAM step"],
        rows,
        floatfmt=".4g",
        title=f"Section 6.1: summing {n} values by faithfully emulating "
        "the EREW PRAM program on the LogP machine (every reference a "
        "message, every step two fences)",
    )
    save_exhibit("sec6_pram_simulation", table)
    per_steps = [r[3] for r in rows]
    assert all(s > 20 for s in per_steps)  # never close to "unit time"
    assert per_steps[2] > 3 * per_steps[0]  # worse on worse networks


def test_sec6_scan_model_comparison(benchmark, save_exhibit):
    """Section 6.2's scan-model: unit-time scans vs their LogP price —
    verified against a real recursive-doubling scan on the simulator."""

    def build():
        from repro.sim import prefix_scan, run_programs

        def prog(rank, P):
            v = yield from prefix_scan(rank, P, rank)
            return v

        sim = run_programs(MACHINE, prog)
        assert sim.values() == [r * (r + 1) // 2 for r in range(MACHINE.P)]
        return [
            ["scan-model (assumed)", scan_model_scan_steps(MACHINE.P)],
            ["LogP closed form", logp_scan_time(MACHINE)],
            ["LogP simulated (recursive doubling)", sim.makespan],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["model", f"one prefix scan over P={MACHINE.P} (cycles)"],
        rows,
        floatfmt=".4g",
        title="Section 6.2: the scan-model's unit-time scan vs what "
        "messages actually cost under LogP",
    )
    save_exhibit("sec6_scan_model", table)
    by = dict(rows)
    assert by["scan-model (assumed)"] == 1
    assert by["LogP simulated (recursive doubling)"] >= 0.8 * by["LogP closed form"]
    assert by["LogP simulated (recursive doubling)"] > 10 * by["scan-model (assumed)"]
