"""SEC51 — the Section 5.1 average-distance table at P=1024.

Regenerates all seven rows from the closed forms, cross-checks the
formulas against exact BFS on explicit graphs at a smaller P, and
verifies the section's conclusion: topology changes average distance by
at most a factor of ~2 among the non-primitive networks.
"""

import pytest

from repro.topology import (
    PAPER_TOPOLOGIES,
    Butterfly,
    FatTree,
    Hypercube,
    Mesh2D,
    Mesh3D,
    Torus2D,
    Torus3D,
)
from repro.viz import format_table

PAPER = {
    "Hypercube": ("log2(p)/2", 5.0),
    "Butterfly": ("log2(p)", 10.0),
    "4deg Fat Tree": ("2 log4(p) - 2/3", 9.33),
    "3D Torus": ("3/4 p^(1/3)", 7.5),
    "3D Mesh": ("p^(1/3)", 10.0),
    "2D Torus": ("1/2 sqrt(p)", 16.0),
    "2D Mesh": ("2/3 sqrt(p)", 21.0),
}


def test_sec51_average_distance_table(benchmark, save_exhibit):
    def build():
        return [
            [t.name, t.formula, t.average_distance(), PAPER[t.name][1]]
            for t in PAPER_TOPOLOGIES(1024)
        ]

    rows = benchmark(build)
    table = format_table(
        ["network", "formula", "reproduced (P=1024)", "paper"],
        rows,
        floatfmt=".4g",
        title="Section 5.1: average inter-node distance at P=1024",
    )
    save_exhibit("sec51_avg_distance", table)
    for _, _, got, want in rows:
        assert got == pytest.approx(want, rel=0.02)


def test_sec51_bfs_crosscheck(benchmark, save_exhibit):
    """Closed forms vs exact BFS on explicit graphs (P=64)."""

    def build():
        topos = [
            Hypercube(64), Butterfly(64), FatTree(64),
            Torus3D(64), Mesh3D(64), Torus2D(64), Mesh2D(64),
        ]
        return [
            [t.name, t.average_distance(), t.average_distance_bfs()]
            for t in topos
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["network", "closed form (P=64)", "exact BFS (P=64)"],
        rows,
        floatfmt=".4g",
        title="Formula vs explicit-graph BFS cross-check",
    )
    save_exhibit("sec51_bfs_crosscheck", table)
    for _, formula, bfs in rows:
        assert formula == pytest.approx(bfs, rel=0.15)


def test_sec51_factor_of_two_conclusion(benchmark, save_exhibit):
    def ratios():
        values = {t.name: t.average_distance() for t in PAPER_TOPOLOGIES(1024)}
        rich = {k: v for k, v in values.items() if not k.startswith("2D")}
        return values, max(rich.values()) / min(rich.values())

    (values, ratio) = benchmark(ratios)
    text = (
        "Section 5.1 conclusion: 'for configurations of practical interest "
        "the difference between topologies is a factor of two, except for "
        f"very primitive networks.'  Non-2D spread at P=1024: {ratio:.2f}x; "
        f"full spread including 2D mesh: "
        f"{max(values.values()) / min(values.values()):.2f}x."
    )
    save_exhibit("sec51_conclusion", text)
    assert ratio <= 2.0
