"""SEC53 — Section 5.3: latency vs offered load, and the saturation knee.

"There is typically a saturation point at which the latency increases
sharply; below the saturation point the latency is fairly insensitive to
the load.  This characteristic is captured by the capacity constraint in
LogP."

Packet-level simulation on an 8x8 torus with dimension-order routing,
uniform traffic; plus the hot-spot pattern, which saturates far earlier —
the degenerate case the LogP capacity constraint throttles.
"""

import math

from repro.topology import find_knee, grid_route, latency_vs_load
from repro.viz import format_table

K = 8  # 8x8 torus


def torus_route(s, d):
    return [
        c[0] * K + c[1]
        for c in grid_route((s // K, s % K), (d // K, d % K), (K, K), wrap=True)
    ]


LOADS = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5, 2.5]


def test_sec53_saturation_curve(benchmark, save_exhibit):
    def run():
        # workers=None honours REPRO_SWEEP_WORKERS; each load level is an
        # independent seeded run, so the curve is identical either way.
        return latency_vs_load(
            K * K, torus_route, LOADS, horizon=1500, warmup=400, seed=9,
            workers=None,
        )

    pts = benchmark.pedantic(run, rounds=1, iterations=1)
    knee = find_knee(pts)
    rows = [
        [q.offered_load, q.mean_latency, q.p95_latency, q.throughput]
        for q in pts
    ]
    table = format_table(
        ["offered load (pkts/node/cycle)", "mean latency", "p95 latency",
         "throughput"],
        rows,
        floatfmt=".3g",
        title=f"Section 5.3: 8x8 torus, uniform traffic — saturation knee "
        f"at ~{knee:.2g} pkts/node/cycle",
    )
    save_exhibit("sec53_saturation", table)

    base = pts[0].mean_latency
    # Flat below the knee...
    low = [q for q in pts if q.offered_load <= 0.2]
    assert all(q.mean_latency < 1.6 * base for q in low)
    # ...sharply up past it.
    assert pts[-1].mean_latency > 4 * base
    assert math.isfinite(knee)


def test_sec53_hotspot_saturates_early(benchmark, save_exhibit):
    def run():
        def hotspot(src, rng):
            return 0 if src != 0 else 1

        uniform = latency_vs_load(
            K * K, torus_route, [0.1, 0.3], horizon=1000, warmup=250, seed=3
        )
        hot = latency_vs_load(
            K * K, torus_route, [0.1, 0.3], horizon=1000, warmup=250,
            pattern=hotspot, seed=3,
        )
        return uniform, hot

    uniform, hot = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [q.offered_load, u.mean_latency, q.mean_latency]
        for u, q in zip(uniform, hot)
    ]
    table = format_table(
        ["offered load", "uniform latency", "hot-spot latency"],
        rows,
        floatfmt=".3g",
        title="Hot-spot traffic saturates far below uniform — the case the "
        "LogP capacity constraint back-pressures",
    )
    save_exhibit("sec53_hotspot", table)
    assert hot[1].mean_latency > 3 * uniform[1].mean_latency
