"""ABL — ablations of the design choices DESIGN.md calls out.

1. Capacity constraint on/off under the naive remap schedule — without
   it the destination contention cost disappears (showing the clause is
   load-bearing, Section 5.3's claim).
2. The Section 3.1 simplification o := max(o, g): measured inflation of
   the point-to-point stream across the parameter grid, against the
   paper's "conservative by at most a factor of two".
3. Barrier-interval sweep for the drifting remap: too-frequent barriers
   pay synchronization, too-rare ones readmit drift.
"""

import numpy as np

from repro.core import LogPParams, pipelined_stream_exact
from repro.machines import GaussianJitter, cm5
from repro.algorithms.fft import simulate_remap
from repro.sim import LogPMachine, Recv, Send, run_programs
from repro.viz import format_table


def test_ablation_capacity_constraint(benchmark, save_exhibit):
    """Naive remap with and without the ceil(L/g) constraint."""
    machine = cm5(P=32)
    p = machine.params_us()
    cal = machine.calibration
    n = 2**13

    def run():
        on = simulate_remap(p, n, "naive", point_cost=cal.point_us)
        # Re-run the same program with enforcement off.
        from repro.algorithms import fft as fft_mod

        per_dst = n // (p.P * p.P)
        k = on.messages_per_proc

        def factory(rank, P):
            def prog():
                from repro.sim.program import Compute, Poll

                order = [d for d in range(P) if d != rank]
                for dst in order:
                    for _ in range(per_dst):
                        yield Compute(cal.point_us)
                        yield Poll()
                        yield Send(dst, tag="remap")
                for _ in range(k):
                    yield Recv(tag="remap")
                return None

            return prog()

        off = LogPMachine(p, enforce_capacity=False, trace=False).run(factory)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["capacity constraint", "naive remap makespan (us)", "stall time"],
        [
            ["enforced (ceil(L/g))", on.makespan, on.total_stall],
            ["disabled", off.makespan, off.total_stall_time],
        ],
        floatfmt=".6g",
        title="Ablation: the capacity constraint is what makes the naive "
        "schedule expensive",
    )
    save_exhibit("ablation_capacity", table)
    assert off.makespan < 0.55 * on.makespan
    assert off.total_stall_time == 0


def test_ablation_merge_overhead_into_gap(benchmark, save_exhibit):
    """Section 3.1's o := max(o, g) rule: measured inflation factors."""

    def sweep():
        rows = []
        for L, o, g in [(6, 2, 4), (5, 2, 4), (20, 1, 2), (2, 4, 1),
                        (1, 1, 8), (0, 0, 4), (12, 3, 3)]:
            p = LogPParams(L=L, o=o, g=g, P=2)
            m = p.merge_overhead_into_gap()
            k = 10
            orig = pipelined_stream_exact(p, k)
            merged = pipelined_stream_exact(m, k)
            regime = "2g<=L+4o" if 2 * g <= L + 4 * o else "outside"
            rows.append(
                [f"L{L} o{o} g{g}", orig, merged,
                 round(merged / orig, 3) if orig else float("inf"), regime]
            )
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["machine", "10-msg stream", "with o:=max(o,g)", "inflation",
         "factor-2 regime"],
        rows,
        floatfmt=".4g",
        title="Ablation: the o := max(o, g) simplification "
        "('conservative by at most a factor of two' holds whenever "
        "2g <= L + 4o)",
    )
    save_exhibit("ablation_merge_o_g", table)
    for row in rows:
        if row[4] == "2g<=L+4o" and np.isfinite(row[3]):
            assert row[3] <= 2.0 + 1e-9


def test_ablation_barrier_interval(benchmark, save_exhibit):
    """Sweep the resynchronization interval of the drifting remap."""
    machine = cm5(P=16)
    p = machine.params_us()
    cal = machine.calibration
    n = 2**13
    natural = n // (p.P * p.P)  # the paper's choice: every n/P^2 sends

    def sweep():
        rows = []
        for every in (natural // 4, natural, natural * 4, None):
            r = simulate_remap(
                p, n, "staggered", point_cost=cal.point_us,
                jitter=GaussianJitter(0.5, seed=11), barrier_every=every,
            )
            label = "none" if every is None else str(every)
            rows.append([label, r.makespan, r.total_stall])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["barrier every (sends)", "makespan (us)", "stall (us)"],
        rows,
        floatfmt=".6g",
        title=f"Ablation: barrier interval for the drifting remap "
        f"(paper barriers every n/P^2 = {natural})",
    )
    save_exhibit("ablation_barrier_interval", table)
    # Barriers cap stall relative to no barriers.
    none_stall = rows[-1][2]
    paper_stall = rows[1][2]
    assert paper_stall <= none_stall + 1e-9
