"""FIG4 — Figure 4: optimal summation for T=28, P=8, L=5, g=4, o=2.

Regenerates the communication tree with per-node deadlines (the figure's
node labels 28; 18, 14, 10, 6; 8, 4; 4), the unequal input distribution,
and the capacity function C(T), all cross-checked by simulation with
real data.
"""

import numpy as np

from repro.core import LogPParams
from repro.algorithms.summation import (
    balanced_reduction_time,
    distribute_inputs,
    optimal_summation_tree,
    summation_capacity,
    summation_program,
)
from repro.sim import run_programs
from repro.viz import format_table, render_summation_tree

FIG4 = LogPParams(L=5, o=2, g=4, P=8)


def test_fig4_summation_schedule(benchmark, save_exhibit, rng):
    tree = benchmark(optimal_summation_tree, FIG4, 28)
    values = rng.standard_normal(tree.total_values)
    res = run_programs(FIG4, summation_program(tree, distribute_inputs(tree, values)))

    sections = [
        "Figure 4: optimal summation tree, T=28 P=8 L=5 g=4 o=2",
        "",
        render_summation_tree(tree),
        "",
        format_table(
            ["quantity", "paper", "reproduced"],
            [
                ["child deadlines of root", "18,14,10,6",
                 ",".join(f"{tree.nodes[c].deadline:g}" for c in tree.nodes[0].children)],
                ["values summed C(28)", "(not stated)", tree.total_values],
                ["simulated makespan", 28, res.makespan],
                ["sum correct", True, bool(np.isclose(res.value(0), values.sum()))],
                ["balanced-baseline time for same n", "-",
                 balanced_reduction_time(FIG4, tree.total_values)],
            ],
        ),
    ]
    save_exhibit("fig4_summation", "\n".join(sections))

    assert res.makespan == 28
    assert tree.total_values == 79


def test_fig4_capacity_function(benchmark, save_exhibit):
    def sweep():
        return [[T, summation_capacity(FIG4, T)] for T in range(0, 61, 4)]

    rows = benchmark(sweep)
    table = format_table(
        ["T", "C(T)"],
        rows,
        title="Summation capacity C(T) on the Figure 4 machine "
        "(serial below L+2o+1=10, exponential beyond)",
    )
    save_exhibit("fig4_capacity", table)
    caps = [c for _, c in rows]
    assert all(a <= b for a, b in zip(caps, caps[1:]))
    # Parallel growth well past the serial bound of T+1 values.
    assert caps[-1] > 4 * 61
