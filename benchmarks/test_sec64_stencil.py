"""SEC64 — Section 6.4: the surface-to-volume argument, measured.

"Wherever problems have a local, regular communication pattern, such as
stencil calculation on a grid, it is easy to lay the data out so that
only a diminishing fraction of the communication is external ... with
large enough problem sizes, the cost of communication becomes trivial."

Sweeps the block side of a 2-D five-point stencil and reports the
measured communication share of each iteration (on the simulator with
verified numerics at the sizes that fit, the closed form beyond).
"""

import numpy as np

from repro.core import Activity, LogGPParams
from repro.algorithms.stencil import (
    communication_share,
    reference_stencil2d,
    run_stencil2d,
    stencil2d_iteration_time,
)
from repro.viz import format_table

GP = LogGPParams(L=6, o=2, g=4, G=0.25, P=4)


def test_sec64_surface_to_volume(benchmark, save_exhibit, rng):
    def sweep():
        rows = []
        for b in (4, 8, 16, 32):
            n = 2 * b  # 2x2 processor grid
            grid = rng.standard_normal((n, n))
            out, res = run_stencil2d(GP, grid, iterations=3)
            assert np.allclose(out, reference_stencil2d(grid, 3))
            sched = res.schedule
            compute = sched.total_time_in(Activity.COMPUTE)
            comm = sched.total_time_in(Activity.SEND) + sched.total_time_in(
                Activity.RECV
            )
            rows.append(
                [
                    b,
                    res.makespan,
                    comm / (comm + compute),
                    communication_share(GP, b, G=GP.G),
                ]
            )
        for b in (128, 512):
            rows.append(
                [b, stencil2d_iteration_time(GP, b, G=GP.G) * 3, "-",
                 communication_share(GP, b, G=GP.G)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["block side b", "3-iteration time", "measured comm share",
         "closed-form comm share"],
        rows,
        floatfmt=".3g",
        title="Section 6.4: 2-D stencil halo cost vanishes like "
        "surface/volume as blocks grow (2x2 grid, bulk halo edges)",
    )
    save_exhibit("sec64_stencil", table)

    measured = [r[2] for r in rows if r[2] != "-"]
    assert all(a > b for a, b in zip(measured, measured[1:]))
    assert rows[-1][3] < 0.005
