"""EXT — the paper's extension hooks, made concrete and measured.

1. **Long messages (Section 5.4 / LogGP).**  "The processor overhead for
   setting up that [DMA] device is paid once and a part of sending and
   receiving long messages can be overlapped with computation ...
   Providing a separate network processor ... can at best double the
   performance of each node."  We compare sending k words as k small
   messages vs one bulk message, and verify the at-best-2x claim for a
   balanced compute/communicate node.

2. **Multiple g's (Section 5.6).**  "A possible extension of the LogP
   model ... would be to provide multiple g's, where the one appropriate
   to the particular communication pattern is used in the analysis."
   We *measure* per-pattern effective gaps on the packet-level network
   substrate and feed them back into the standard h-relation analysis.

3. **SUMMA matrix multiply** (Section 6.6 names matrix multiplication
   among the examples) — panels as long messages; panel-width sweep.
"""

import numpy as np

from repro.core import (
    LogGPParams,
    LogPParams,
    h_relation,
    long_message_time,
    pipelined_stream_exact,
)
from repro.algorithms.matmul import run_summa, summa_time
from repro.sim import Compute, Recv, Send, run_programs
from repro.topology import (
    PatternGaps,
    bit_reverse_pattern,
    effective_gap,
    grid_route,
    hotspot_pattern,
    hypercube_route,
    shift_pattern,
    transpose_pattern,
    uniform_pattern,
)
from repro.viz import format_table

GP = LogGPParams(L=6, o=2, g=4, G=0.5, P=2)


def test_ext_long_messages(benchmark, save_exhibit):
    def sweep():
        rows = []
        for k in (1, 4, 16, 64, 256):
            rows.append(
                [
                    k,
                    pipelined_stream_exact(GP, k),
                    long_message_time(GP, k),
                    k * GP.o,
                    GP.o,
                ]
            )
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["words", "k small msgs (time)", "one bulk msg (time)",
         "small: processor cycles", "bulk: processor cycles"],
        rows,
        floatfmt=".5g",
        title="Section 5.4 extension: long messages via a network "
        "processor (L=6 o=2 g=4 G=0.5)",
    )
    save_exhibit("ext_long_messages", table)
    for k, frag_t, bulk_t, frag_o, bulk_o in rows:
        assert bulk_t <= frag_t
        assert bulk_o <= frag_o


def test_ext_network_processor_at_best_doubles(benchmark, save_exhibit):
    """A node alternating equal compute and per-word communication work:
    offloading the words to the network processor at most halves its
    busy time — the paper's "can at best double the performance".

    The claim is about processor occupancy, so the machine here is
    overhead-bound (g <= o): each small message costs the processor o.
    """
    k = 64
    gp = LogGPParams(L=6, o=2, g=2, G=0.05, P=2)

    def run_both():
        def frag(rank, P):
            if rank == 0:
                # compute matched to the communication processor time.
                yield Compute(k * gp.o)
                for _ in range(k):
                    yield Send(1, tag="w")
            else:
                for _ in range(k):
                    yield Recv(tag="w")
            return None

        def bulk(rank, P):
            if rank == 0:
                yield Compute(k * gp.o)
                yield Send(1, words=k, tag="w")
            else:
                yield Recv(tag="w")
            return None

        return run_programs(gp, frag), run_programs(gp, bulk)

    res_f, res_b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = res_f.makespan / res_b.makespan
    table = format_table(
        ["strategy", "makespan", "speedup vs per-word"],
        [
            ["per-word overhead (basic model)", res_f.makespan, 1.0],
            ["network processor (bulk send)", res_b.makespan, speedup],
        ],
        floatfmt=".4g",
        title="Section 5.4: 'a separate network processor ... can at "
        "best double the performance of each node'",
    )
    save_exhibit("ext_network_processor", table)
    assert 1.0 < speedup <= 2.0 + 1e-9


def test_ext_multiple_gaps_measured(benchmark, save_exhibit):
    """Per-pattern effective gaps measured on an 8x8 torus."""
    K = 8

    def route(s, d):
        return [
            c[0] * K + c[1]
            for c in grid_route((s // K, s % K), (d // K, d % K), (K, K), wrap=True)
        ]

    patterns = {
        "shift(+1)": shift_pattern(64),
        "uniform-perm": uniform_pattern(64, seed=4),
        "transpose": transpose_pattern(64),
        "bit-reverse": bit_reverse_pattern(64),
        "hot-spot": hotspot_pattern(64),
    }

    def measure():
        out = {}
        for name, pat in patterns.items():
            out[name] = effective_gap(64, route, pat, seed=5)
        return out

    gaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = LogPParams(L=6, o=2, g=gaps["shift(+1)"], P=64)
    pg = PatternGaps(base, gaps)
    rows = [
        [name, g, h_relation(pg.params_for(name), 16)]
        for name, g in gaps.items()
    ]
    table = format_table(
        ["pattern", "measured effective g (cycles/msg)",
         "16-relation cost with that g"],
        rows,
        floatfmt=".3g",
        title="Section 5.6 extension: multiple g's measured on an 8x8 "
        "torus (dimension-order routing)",
    )
    save_exhibit("ext_multiple_gaps", table)
    assert gaps["hot-spot"] > 3 * gaps["shift(+1)"]
    assert gaps["transpose"] >= gaps["shift(+1)"] - 1e-9
    assert pg.worst_pattern() == "hot-spot"


def test_ext_summa_panel_sweep(benchmark, save_exhibit, rng):
    gp = LogGPParams(L=6, o=2, g=4, G=0.25, P=4)
    A = rng.standard_normal((32, 32))
    B = rng.standard_normal((32, 32))

    def sweep():
        rows = []
        for b in (1, 2, 4, 8, 16):
            C, res = run_summa(gp, A, B, b=b)
            assert np.allclose(C, A @ B)
            rows.append(
                [b, res.makespan, summa_time(gp, 32, b), res.total_messages]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["panel width b", "simulated cycles", "predicted cycles", "messages"],
        rows,
        floatfmt=".6g",
        title="SUMMA 32x32 on a 2x2 grid, panels as long messages "
        "(blocking amortizes o and L — the paper's footnote 9 theme)",
    )
    save_exhibit("ext_summa_panels", table)
    times = [r[1] for r in rows]
    # Blocking never loses meaningfully (compute dominates at this
    # size; the message-count reduction is the real win).
    assert times[-1] <= times[0] * 1.01
    assert rows[-1][3] < rows[0][3] / 4
    for b, sim, pred, _ in rows:
        assert 0.7 * pred <= sim <= 1.15 * pred
