"""FIG8 — Figure 8: remap communication rates, MB/s per processor.

The paper's five series, reproduced on the simulated CM-5 (P=32, n up to
2^16; the paper used P=128 up to 16M points):

* predicted — 16 bytes / max(1us + 2o, g) = 3.2 MB/s, flat;
* staggered — the contention-free schedule on a deterministic machine;
* drifting — the same schedule with per-processor compute jitter (the
  paper's "processors ... gradually drift out of sync", which "disturbs
  the communication schedule");
* synchronized — drift plus a hardware barrier every n/P**2 messages
  (the paper's fix: "this eliminates the performance drop");
* naive — the contention-bound schedule, far below everything;
* double net — both fat-tree networks, g/2: "the performance increases
  by only 15% because the network interface overhead (o) and the loop
  processing dominate" (in the pure model the gain is ~0).
"""

from repro.machines import GaussianJitter, cm5
from repro.algorithms.fft import simulate_remap
from repro.viz import format_table

MACHINE = cm5(P=32)
SIZES = [2**12, 2**13, 2**14, 2**15, 2**16]
SIGMA = 0.5


def _rate(result):
    cal = MACHINE.calibration
    return result.rate(cal.bytes_per_point, 1e-6) / 1e6


def _series():
    p = MACHINE.params_us()
    cal = MACHINE.calibration
    predicted = cal.bytes_per_point / cal.predicted_remap_us_per_point()
    rows = []
    for i, n in enumerate(SIZES):
        barrier_k = n // (p.P * p.P)
        stag = simulate_remap(p, n, "staggered", point_cost=cal.point_us)
        drift = simulate_remap(
            p, n, "staggered", point_cost=cal.point_us,
            jitter=GaussianJitter(SIGMA, seed=100 + i),
        )
        sync = simulate_remap(
            p, n, "staggered", point_cost=cal.point_us,
            jitter=GaussianJitter(SIGMA, seed=100 + i),
            barrier_every=barrier_k,
        )
        naive = simulate_remap(p, n, "naive", point_cost=cal.point_us)
        dbl = simulate_remap(
            p, n, "staggered", point_cost=cal.point_us, double_net=True
        )
        rows.append(
            [
                n,
                predicted,
                _rate(stag),
                _rate(drift),
                _rate(sync),
                _rate(naive),
                _rate(dbl),
            ]
        )
    return rows


def test_fig8_comm_rates(benchmark, save_exhibit):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    table = format_table(
        ["n", "predicted", "staggered", "drifting", "synchronized",
         "naive", "double net"],
        rows,
        floatfmt=".3g",
        title="Figure 8 (P=32 simulated CM-5): remap rates in MB/s per "
        "processor (paper: predicted 3.2, measured ~2, naive lowest, "
        "barriers flatten the drift droop, double net ~ +15%)",
    )
    save_exhibit("fig8_comm_rates", table)

    for n, predicted, stag, drift, sync, naive, dbl in rows:
        assert stag <= predicted + 0.05  # prediction is an upper bound
        assert stag >= 0.9 * predicted  # and the clean schedule nears it
        assert drift <= stag + 1e-9  # drift only hurts
        assert sync >= drift - 0.05  # barriers recover
        assert naive < 0.5 * stag  # contention collapse
        assert abs(dbl - stag) < 0.25  # o-bound: doubling g^-1 ~ no-op
