"""NET — the in-machine §5.3 saturation knee, cross-checked analytically.

The standalone packet simulator of ``repro.topology.saturation`` is the
paper-faithful exhibit of the Section 5.3 latency/load curve.  The
network-fabric subsystem claims to reproduce the *same physics inside
the LogP machine*: a :class:`~repro.sim.net.ContentionFabric` over the
4-ary fat tree, driven by open-loop Poisson traffic from real simulated
processors, must show the same unloaded latency and the same saturation
knee as the analytical simulator run on the identical topology — two
independently-written store-and-forward simulators agreeing on where
the network breaks.

Machine side: ``o = g = 0`` and the capacity constraint disabled, so
injection times are exactly the pre-drawn Poisson plan and every cycle
of measured flight comes from the fabric.  Flights are measured
post-warmup as ``arrive - inject`` straight off the message records.
"""

import math

import numpy as np

from repro.core import LogPParams
from repro.sim import ContentionFabric, LogPMachine, Recv, Send, Sleep
from repro.sim.net import router_for
from repro.topology import find_knee, simulate_load
from repro.topology.topologies import FatTree
from repro.viz import format_table

TOPOLOGY = FatTree(16)
R = 1.0  # link service time, cycles per hop
HORIZON = 600.0
WARMUP = 150.0
LOADS = [0.05, 0.1, 0.2, 0.35, 0.5, 0.7]


def _fat_tree_plan(lam: float, seed: int):
    """Pre-drawn open-loop traffic: per-rank [(sleep_delta, dst), ...]
    Poisson injections up to HORIZON, uniform destinations."""
    rng = np.random.default_rng(seed)
    P = TOPOLOGY.P
    plan = []
    incoming = [0] * P
    for src in range(P):
        t, prev, entries = 0.0, 0.0, []
        while True:
            t += float(rng.exponential(1.0 / lam))
            if t >= HORIZON:
                break
            dst = int(rng.integers(P - 1))
            if dst >= src:
                dst += 1
            entries.append((t - prev, dst))
            prev = t
            incoming[dst] += 1
        plan.append(entries)
    return plan, incoming


def _machine_mean_latency(lam: float, seed: int) -> float:
    """Mean post-warmup flight over the contended fat-tree fabric."""
    plan, incoming = _fat_tree_plan(lam, seed)
    fab = ContentionFabric.for_topology(TOPOLOGY, hop_delay=R)
    p = LogPParams(L=fab.bound, o=0.0, g=0.0, P=TOPOLOGY.P)
    machine = LogPMachine(p, fabric=fab, enforce_capacity=False)

    def prog(rank, P):
        for delta, dst in plan[rank]:
            yield Sleep(delta)
            yield Send(dst)
        for _ in range(incoming[rank]):
            yield Recv()

    res = machine.run(prog)
    flights = [
        m.arrive - m.inject
        for m in res.schedule.messages
        if m.inject >= WARMUP
    ]
    return float(np.mean(flights))


def _analytic_mean_latency(lam: float, seed: int) -> float:
    route = router_for(TOPOLOGY)
    point = simulate_load(
        TOPOLOGY.P,
        route,
        lam,
        r=R,
        horizon=HORIZON,
        warmup=WARMUP,
        seed=seed,
    )
    return point.mean_latency


class _Point:
    """Duck-typed LoadPoint so find_knee works on both curves."""

    def __init__(self, load, latency):
        self.offered_load = load
        self.mean_latency = latency


def test_net_fabric_knee_matches_analytic_saturation(benchmark, save_exhibit):
    def run():
        machine_curve = [_machine_mean_latency(lam, seed=100) for lam in LOADS]
        analytic_curve = [_analytic_mean_latency(lam, seed=7) for lam in LOADS]
        return machine_curve, analytic_curve

    machine_curve, analytic_curve = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        [lam, mach, ana, mach / ana]
        for lam, mach, ana in zip(LOADS, machine_curve, analytic_curve)
    ]
    machine_knee = find_knee(
        [_Point(lam, q) for lam, q in zip(LOADS, machine_curve)]
    )
    analytic_knee = find_knee(
        [_Point(lam, q) for lam, q in zip(LOADS, analytic_curve)]
    )
    table = format_table(
        ["offered load", "fabric mean latency", "analytic mean latency",
         "ratio"],
        rows,
        floatfmt=".3g",
        title=f"Section 5.3 inside the machine: 4-ary fat tree knee — "
        f"fabric ~{machine_knee:.2g}, analytic ~{analytic_knee:.2g} "
        f"pkts/node/cycle",
    )
    save_exhibit("net_fabric_saturation", table)

    # Unloaded latency: both simulators should sit near the topology's
    # mean routed distance (x R) at the lightest load.
    assert machine_curve[0] < 1.3 * analytic_curve[0]
    assert analytic_curve[0] < 1.3 * machine_curve[0]

    # Both curves rise steeply past saturation...
    assert machine_curve[-1] > 3.0 * machine_curve[0]
    assert analytic_curve[-1] > 3.0 * analytic_curve[0]

    # ...and the knees land within one grid step of each other.
    assert math.isfinite(machine_knee) and math.isfinite(analytic_knee)
    grid = {lam: i for i, lam in enumerate(LOADS)}
    assert abs(grid[machine_knee] - grid[analytic_knee]) <= 1
