"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures (as an
aligned text table / series) and both prints it and writes it to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can cite concrete runs.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def save_exhibit():
    """Returns ``save(name, text)``: print and persist a reproduced
    exhibit."""

    def save(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260704)
