"""FIG3 — Figure 3: the optimal broadcast tree for P=8, L=6, g=4, o=2.

Regenerates both panels — the tree with its per-node receive times
(left) and the per-processor activity timeline (right) — plus the
completion-time row the paper quotes (last value received at t=24),
cross-checked by full simulation.
"""

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    binomial_tree,
    broadcast_program,
    broadcast_schedule,
    flat_tree,
    linear_tree,
    optimal_broadcast_tree,
    tree_delivery_times,
)
from repro.sim import run_programs
from repro.viz import format_table, render_broadcast_tree, render_gantt

FIG3 = LogPParams(L=6, o=2, g=4, P=8)


def test_fig3_optimal_tree(benchmark, save_exhibit):
    tree = benchmark(optimal_broadcast_tree, FIG3)
    res = run_programs(FIG3, broadcast_program(tree, "datum"))

    sections = [
        "Figure 3: optimal broadcast tree, P=8 L=6 g=4 o=2",
        "",
        render_broadcast_tree(tree),
        "",
        render_gantt(broadcast_schedule(tree), width=72, show_flight=True),
        "",
        format_table(
            ["quantity", "paper", "reproduced"],
            [
                ["completion time (analysis)", 24, tree.completion_time],
                ["completion time (simulated)", 24, res.makespan],
                ["root children recv times", "10,14,18,22",
                 ",".join(f"{tree.recv_time[c]:g}" for c in tree.children[0])],
            ],
        ),
    ]
    save_exhibit("fig3_broadcast", "\n".join(sections))

    assert tree.completion_time == 24
    assert res.makespan == 24


def test_fig3_tree_family_sweep(benchmark, save_exhibit):
    """How the optimal tree compares with oblivious trees as P grows."""

    def sweep():
        rows = []
        for P in (2, 4, 8, 16, 32, 64, 128):
            p = LogPParams(L=6, o=2, g=4, P=P)
            opt = optimal_broadcast_tree(p).completion_time
            rows.append(
                [
                    P,
                    opt,
                    max(tree_delivery_times(p, binomial_tree(P))),
                    max(tree_delivery_times(p, flat_tree(P))),
                    max(tree_delivery_times(p, linear_tree(P))),
                ]
            )
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["P", "optimal", "binomial", "flat", "linear"],
        rows,
        title="Broadcast completion times by tree family (L=6 g=4 o=2)",
    )
    save_exhibit("fig3_tree_family", table)
    for row in rows:
        assert row[1] <= min(row[2:]) + 1e-9
