"""SEC421 — Section 4.2.1: LU decomposition data layouts.

Reproduces the section's chain of layout improvements on a real
factorization (numerics verified against the serial kernel):

* bad layout -> column layout: communication halves;
* column -> grid: a further ~sqrt(P) gain;
* blocked grid -> scattered grid: load balance ("the fastest Linpack
  benchmark programs actually employ a scattered grid layout").

Plus a message-passing execution of column-cyclic LU on the simulator.
"""

import numpy as np

from repro.core import LogPParams
from repro.algorithms.lu import (
    distributed_lu,
    lu_factor,
    make_layout,
    predict_lu_time,
    run_lu_on_machine,
)
from repro.viz import format_table

N = 48
P = 16
PARAMS = LogPParams(L=6, o=2, g=4, P=P)
KINDS = ("bad", "column-blocked", "column-cyclic", "grid-blocked", "grid-scattered")


def test_sec421_layout_comparison(benchmark, save_exhibit, rng):
    A = rng.standard_normal((N, N))
    piv0, L0, U0 = lu_factor(A)

    def run_all():
        rows = []
        for kind in KINDS:
            lay = make_layout(kind, N, P)
            piv, L, U, stats = distributed_lu(A, lay)
            assert np.allclose(L, L0) and np.allclose(U, U0)
            comm = sum(s.comm_values_received_max for s in stats.steps)
            rows.append(
                [
                    kind,
                    comm,
                    round(stats.load_imbalance, 3),
                    round(stats.mean_active, 2),
                    round(stats.tail_active(0.15), 2),
                    predict_lu_time(PARAMS, N, lay, from_stats=stats),
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["layout", "max recv values", "load imbalance", "mean active",
         "tail active", "predicted cycles"],
        rows,
        floatfmt=".5g",
        title=f"Section 4.2.1: LU layouts, n={N}, P={P} "
        "(numerics verified == serial partial-pivoting kernel)",
    )
    save_exhibit("sec421_lu_layouts", table)

    by = {r[0]: r for r in rows}
    # Column beats bad on communication; grid beats column.
    assert by["column-cyclic"][1] < by["bad"][1]
    assert by["grid-scattered"][1] < by["column-cyclic"][1]
    # Scattered keeps processors busy to the end; blocked does not.
    assert by["grid-scattered"][4] > 2 * by["grid-blocked"][4]
    # Overall predicted time: scattered grid wins.
    assert by["grid-scattered"][5] == min(r[5] for r in rows)


def test_sec421_simulated_column_cyclic(benchmark, save_exhibit, rng):
    A = rng.standard_normal((24, 24))

    def run():
        return run_lu_on_machine(LogPParams(L=6, o=2, g=4, P=4), A)

    piv, L, U, res = benchmark.pedantic(run, rounds=1, iterations=1)
    piv0, L0, U0 = lu_factor(A)
    ok = np.allclose(L, L0) and np.allclose(U, U0) and np.array_equal(piv, piv0)
    table = format_table(
        ["quantity", "value"],
        [
            ["matrix", "24 x 24 random normal"],
            ["machine", "L=6 o=2 g=4 P=4"],
            ["numerics == serial kernel", ok],
            ["simulated makespan (cycles)", res.makespan],
            ["messages", res.total_messages],
        ],
        title="Column-cyclic LU executed with real messages on the simulator",
    )
    save_exhibit("sec421_lu_simulated", table)
    assert ok


def test_sec421_scaling_with_P(benchmark, save_exhibit, rng):
    """Predicted time improves with P under the scattered grid."""

    def sweep():
        rows = []
        for PP in (4, 16, 64):
            p = LogPParams(L=6, o=2, g=4, P=PP)
            lay = make_layout("grid-scattered", 64, PP)
            rows.append([PP, predict_lu_time(p, 64, lay)])
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["P", "predicted cycles (n=64, scattered grid)"],
        rows,
        floatfmt=".6g",
        title="LU strong scaling under the scattered grid layout",
    )
    save_exhibit("sec421_lu_scaling", table)
    times = [t for _, t in rows]
    assert times[0] > times[1] > times[2]
