"""SEC33 — Section 3.3: optimal broadcast and summation across the
machine parameter space.

The paper's point is that the optimal communication structure *adapts*
to (L, o, g): latency-dominated machines want flat trees, gap-dominated
machines want deep ones.  This benchmark sweeps the space and reports
the optimal times, tree shapes, and the margins over oblivious trees —
plus the simulated-vs-analytic agreement for both primitives.
"""

import numpy as np

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    binomial_tree,
    broadcast_program,
    optimal_broadcast_tree,
    tree_delivery_times,
)
from repro.algorithms.summation import (
    balanced_reduction_time,
    distribute_inputs,
    optimal_summation_tree,
    summation_program,
    summation_time,
)
from repro.sim import run_programs
from repro.viz import format_table

SWEEP = [
    LogPParams(L=2, o=1, g=1, P=16),     # cheap network
    LogPParams(L=6, o=2, g=4, P=16),     # the Figure 3 regime
    LogPParams(L=40, o=1, g=2, P=16),    # latency-dominated
    LogPParams(L=4, o=1, g=16, P=16),    # bandwidth-starved
    LogPParams(L=10, o=8, g=2, P=16),    # overhead-dominated
]


def test_sec33_broadcast_adaptation(benchmark, save_exhibit):
    def sweep():
        rows = []
        for p in SWEEP:
            tree = optimal_broadcast_tree(p)
            sim = run_programs(p, broadcast_program(tree, 0)).makespan
            binom = max(tree_delivery_times(p, binomial_tree(p.P)))
            rows.append(
                [
                    f"L{p.L:g} o{p.o:g} g{p.g:g}",
                    tree.completion_time,
                    sim,
                    tree.fanout(0),
                    tree.depth(),
                    binom / tree.completion_time,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["machine (P=16)", "optimal time", "simulated", "root fanout",
         "depth", "binomial/optimal"],
        rows,
        floatfmt=".3g",
        title="Section 3.3: optimal broadcast adapts its tree to (L,o,g)",
    )
    save_exhibit("sec33_broadcast_sweep", table)
    for row in rows:
        assert row[1] == row[2]  # analysis == simulation, exactly
        assert row[5] >= 1.0  # optimal never loses to binomial
    fanouts = {r[0]: r[3] for r in rows}
    assert fanouts["L40 o1 g2"] > fanouts["L4 o1 g16"]


def test_sec33_summation_adaptation(benchmark, save_exhibit):
    rng = np.random.default_rng(5)

    def sweep():
        rows = []
        for p in SWEEP:
            n = 200
            t_opt = summation_time(p, n)
            t_bal = balanced_reduction_time(p, n)
            tree = optimal_summation_tree(p, t_opt)
            values = rng.standard_normal(tree.total_values)
            res = run_programs(
                p, summation_program(tree, distribute_inputs(tree, values))
            )
            rows.append(
                [
                    f"L{p.L:g} o{p.o:g} g{p.g:g}",
                    t_opt,
                    res.makespan,
                    t_bal,
                    tree.processors_used,
                    bool(np.isclose(res.value(0), values.sum())),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["machine (P=16)", "optimal T for n=200", "simulated makespan",
         "balanced baseline", "procs used", "sum exact"],
        rows,
        floatfmt=".4g",
        title="Section 3.3: optimal summation of 200 values vs the "
        "oblivious balanced reduction",
    )
    save_exhibit("sec33_summation_sweep", table)
    for row in rows:
        assert row[2] <= row[1] + 1e-9
        assert row[1] <= row[3] + 1e-9
        assert row[5]
