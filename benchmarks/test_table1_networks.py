"""TAB1 — Table 1: network timing parameters and T(M=160).

Recomputes the unloaded one-way message time ``T(M,H) = Tsnd+Trcv +
ceil(M/w) + H*r`` for every machine row from its published constants,
checks it against the printed column, and derives each machine's LogP
parameters per the Section 5.2 recipe.
"""

from repro.machines import TABLE1, TABLE1_PRINTED_T160
from repro.topology import logp_from_hardware, unloaded_time
from repro.viz import format_table


def _recompute():
    rows = []
    for hw in TABLE1:
        t = unloaded_time(hw, 160)
        rows.append(
            [
                hw.name,
                hw.network,
                hw.cycle_ns,
                hw.w,
                hw.send_recv_overhead,
                hw.r,
                hw.avg_hops,
                t,
                TABLE1_PRINTED_T160[hw.name],
            ]
        )
    return rows


def test_table1_unloaded_times(benchmark, save_exhibit):
    rows = benchmark(_recompute)
    table = format_table(
        ["machine", "network", "cycle ns", "w", "Tsnd+Trcv", "r",
         "avg H", "T(160) recomputed", "T(160) printed"],
        rows,
        floatfmt=".5g",
        title="Table 1: one-way 160-bit message time (cycles), "
        "recomputed from published constants",
    )
    save_exhibit("table1_networks", table)
    for row in rows:
        assert abs(row[7] - row[8]) <= 1.0  # paper rounds to integers


def test_table1_overhead_domination(benchmark, save_exhibit):
    """The table's message: commercial machines are overhead-dominated;
    the Active Message layer exposes the hardware's real cost."""

    def fractions():
        return [
            [hw.name, hw.send_recv_overhead / unloaded_time(hw, 160)]
            for hw in TABLE1
        ]

    rows = benchmark(fractions)
    table = format_table(
        ["machine", "overhead fraction of T(160)"],
        rows,
        floatfmt=".2f",
        title="Overhead share of unloaded message time "
        "('dominated by the send and receive overheads')",
    )
    save_exhibit("table1_overhead_share", table)
    shares = dict(rows)
    assert shares["nCUBE/2"] > 0.9 and shares["CM-5"] > 0.9
    assert shares["Monsoon"] < 0.5
    assert shares["CM-5 (AM)"] < shares["CM-5"]


def test_table1_logp_extraction(benchmark, save_exhibit):
    def extract():
        return [
            [hw.name, p.o, p.L, round(p.g, 2), p.capacity]
            for hw in TABLE1
            for p in [logp_from_hardware(hw)]
        ]

    rows = benchmark(extract)
    table = format_table(
        ["machine", "o (cycles)", "L (cycles)", "g (cycles)", "ceil(L/g)"],
        rows,
        floatfmt=".4g",
        title="LogP parameters extracted per the Section 5.2 recipe",
    )
    save_exhibit("table1_logp_params", table)
    by_name = {r[0]: r for r in rows}
    assert by_name["nCUBE/2"][1] == 3200  # (Tsnd+Trcv)/2
    assert by_name["CM-5 (AM)"][1] == 66
