"""FIG7 — Figure 7: per-processor Mflops for the two FFT compute phases.

The paper's curves: ~2.8 Mflops while the local FFT fits the 64 KB
direct-mapped cache, dropping to ~2.2 for phase I (one large local FFT)
once it overflows, while phase III (many small FFTs, one P-point
transform per block) stays fast at every size.

Reproduced with the cache simulator driving the exact per-stage address
streams of both phases at P=128.
"""

from repro.machines import cm5
from repro.memory import Cache, phase_mflops
from repro.viz import format_table

P = 128
SIZES = [2**14, 2**16, 2**18, 2**19, 2**20, 2**22, 2**24]


def _series():
    rows = []
    for n in SIZES:
        kb = 16 * (n // P) // 1024
        rows.append(
            [n, kb, phase_mflops(n, P, "I"), phase_mflops(n, P, "III")]
        )
    return rows


def test_fig7_phase_mflops(benchmark, save_exhibit):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    table = format_table(
        ["n", "local KB", "phase I Mflops", "phase III Mflops"],
        rows,
        floatfmt=".3g",
        title="Figure 7 (P=128, 64KB direct-mapped cache): the drop from "
        "2.8 to 2.2 Mflops when the local FFT exceeds cache capacity",
    )
    save_exhibit("fig7_fft_mflops", table)

    small = [r for r in rows if r[1] <= 32]
    large = [r for r in rows if r[1] >= 512]
    # In-cache: both phases near 2.8.
    for _, _, p1, p3 in small:
        assert abs(p1 - 2.8) < 0.15 and abs(p3 - 2.8) < 0.15
    # Out of cache: phase I near 2.2, phase III unchanged.
    for _, _, p1, p3 in large:
        assert abs(p1 - 2.2) < 0.15
        assert abs(p3 - 2.8) < 0.15


def test_fig7_associativity_ablation(benchmark, save_exhibit):
    """Design-choice ablation: how much of phase I's drop is conflict
    misses (direct-mapped, the CM-5's choice) vs pure capacity."""

    def sweep():
        rows = []
        for ways in (1, 2, 4):
            cache = Cache(64 * 1024, 32, associativity=ways)
            rows.append(
                [ways]
                + [
                    phase_mflops(n, P, "I", cache=cache)
                    for n in (2**18, 2**20, 2**22)
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["ways", "n=2^18", "n=2^20", "n=2^22"],
        rows,
        floatfmt=".3g",
        title="Ablation: phase I Mflops vs cache associativity "
        "(same 64 KB capacity)",
    )
    save_exhibit("fig7_associativity_ablation", table)
    # Higher associativity never hurts phase I here.
    for col in (1, 2, 3):
        assert rows[2][col] >= rows[0][col] - 0.05
