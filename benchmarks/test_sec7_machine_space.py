"""SEC7 — machine families as curves in the parameter space.

"The product line offered by a particular vendor may be identified with
a curve in this space, characterizing the system scalability ... a
machine with large gap g is only effective for algorithms with a large
ratio of computation to communication."

Two families — a full-bisection fat tree and a 2-D mesh with the same
node interface — evaluated at P = 16 .. 1024, and what each curve does
to the FFT (bandwidth-hungry) vs the stencil (surface-to-volume
friendly).
"""

from repro.core import fft_comm_time_hybrid, fft_compute_time
from repro.machines.scaling import FAT_TREE_FAMILY, MESH_FAMILY
from repro.algorithms.stencil import communication_share
from repro.viz import format_table

SIZES = (16, 64, 256, 1024)


def test_sec7_family_curves(benchmark, save_exhibit):
    def build():
        rows = []
        for P in SIZES:
            ft = FAT_TREE_FAMILY.params(P)
            mesh = MESH_FAMILY.params(P)
            rows.append(
                [P, ft.L, round(ft.g, 2), mesh.L, round(mesh.g, 2)]
            )
        return rows

    rows = benchmark(build)
    table = format_table(
        ["P", "fat-tree L", "fat-tree g", "mesh L", "mesh g"],
        rows,
        floatfmt=".4g",
        title="Section 7: two product lines as curves in (L, g) — the "
        "mesh's gap grows like sqrt(P), the fat tree's stays flat",
    )
    save_exhibit("sec7_family_curves", table)
    ft_g = [r[2] for r in rows]
    mesh_g = [r[4] for r in rows]
    assert max(ft_g) == min(ft_g)  # full bisection: flat g
    assert mesh_g[-1] > 7 * mesh_g[0]  # sqrt(1024/16) = 8


def test_sec7_algorithm_suitability(benchmark, save_exhibit):
    """Large-g machines only suit high compute/communicate ratios.

    FFT: strong scaling at n = 2^20 (each butterfly node charged 10
    network cycles of arithmetic).  Stencil: weak scaling with a fixed
    256x256 block per processor, 10 cycles per cell.  The fat tree's
    flat g keeps the FFT's comm/compute ratio constant in P; the mesh's
    sqrt(P) gap makes the same algorithm communication-bound at scale —
    while the stencil barely notices either network.
    """
    n = 2**20
    flop = 10.0  # network cycles per butterfly node / stencil cell

    def build():
        rows = []
        for P in SIZES:
            ft = FAT_TREE_FAMILY.params(P)
            mesh = MESH_FAMILY.params(P)
            compute = flop * fft_compute_time(n, P)
            rows.append(
                [
                    P,
                    fft_comm_time_hybrid(ft, n) / compute,
                    fft_comm_time_hybrid(mesh, n) / compute,
                    communication_share(mesh, 256, flop_cost=flop),
                ]
            )
        return rows

    rows = benchmark(build)
    table = format_table(
        ["P", "FFT comm/compute (fat tree)", "FFT comm/compute (mesh)",
         "stencil comm share (mesh, 256^2 block)"],
        rows,
        floatfmt=".3g",
        title=f"What each curve does to the algorithms (FFT n={n}, "
        "10 cycles/op): the mesh's growing g drowns the FFT but barely "
        "touches the surface-to-volume stencil",
    )
    save_exhibit("sec7_suitability", table)
    ft_ratio = [r[1] for r in rows]
    mesh_ratio = [r[2] for r in rows]
    stencil_share = [r[3] for r in rows]
    # The fat tree's ratio is flat in P (constant-g curve)...
    assert max(ft_ratio) / min(ft_ratio) < 1.15
    assert all(x < 0.5 for x in ft_ratio)
    # ...while the mesh's grows ~sqrt(P) and ends communication-bound.
    assert mesh_ratio[-1] > 4 * mesh_ratio[0]
    assert mesh_ratio[-1] > 0.5
    # The weak-scaled stencil stays communication-light even on the
    # mesh at P=1024 — 4x below the FFT's share on the same machine.
    assert all(x <= 0.21 for x in stencil_share)
    assert stencil_share[-1] < mesh_ratio[-1] / 3