"""SEC422 — Section 4.2.2: parallel sorting.

"Sort algorithms can be designed with a basic structure of alternating
phases of local computation and general communication ... splitter
sort[7] follows this compute-remap-compute pattern even more closely."

Benchmarks splitter (sample) sort against bitonic sort, both executed
with real keys on the simulator and both predicted analytically; the
single-remap structure wins as P grows.
"""

import numpy as np

from repro.core import LogPParams
from repro.algorithms.sort import (
    bitonic_sort_time,
    column_sort_time,
    run_bitonic_sort,
    run_column_sort,
    run_splitter_sort,
    splitter_sort_time,
)
from repro.viz import format_table


def test_sec422_simulated_sorts(benchmark, save_exhibit, rng):
    p = LogPParams(L=6, o=2, g=4, P=8)
    data = rng.standard_normal(1024)
    truth = np.sort(data)

    def run():
        sp = run_splitter_sort(p, data)
        bi = run_bitonic_sort(p, data)
        cs = run_column_sort(p, data)
        return sp, bi, cs

    sp, bi, cs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["algorithm", "simulated cycles", "predicted cycles",
         "max bucket", "sorted correctly"],
        [
            ["splitter sort", sp.makespan, splitter_sort_time(p, 1024),
             sp.max_bucket, bool(np.array_equal(sp.sorted_values, truth))],
            ["column sort", cs.makespan, column_sort_time(p, 1024),
             cs.max_bucket, bool(np.array_equal(cs.sorted_values, truth))],
            ["bitonic sort", bi.makespan, bitonic_sort_time(p, 1024),
             bi.max_bucket, bool(np.array_equal(bi.sorted_values, truth))],
        ],
        floatfmt=".5g",
        title="Section 4.2.2: sorting 1024 keys on L=6 o=2 g=4 P=8 "
        "(the compute-remap-compute pattern vs the bitonic network)",
    )
    save_exhibit("sec422_sort_sim", table)
    assert np.array_equal(sp.sorted_values, truth)
    assert np.array_equal(bi.sorted_values, truth)
    assert np.array_equal(cs.sorted_values, truth)
    assert sp.makespan < bi.makespan  # one remap beats log^2 P rounds


def test_sec422_analytic_crossover(benchmark, save_exhibit):
    """Where splitter sort's one remap overtakes bitonic's rounds."""

    def sweep():
        n = 2**16
        rows = []
        for P in (4, 16, 64, 256):
            p = LogPParams(L=6, o=2, g=4, P=P)
            rows.append(
                [P, splitter_sort_time(p, n), bitonic_sort_time(p, n)]
            )
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["P", "splitter (cycles)", "bitonic (cycles)"],
        rows,
        floatfmt=".5g",
        title="Sorting n=65536 keys: compute-remap-compute vs the "
        "bitonic network as P grows",
    )
    save_exhibit("sec422_sort_model", table)
    # Splitter's advantage grows with P.
    adv = [b / s for _, s, b in rows]
    assert adv[-1] > adv[0]
    assert adv[-1] > 2.0
