"""FIG2 — Figure 2: microprocessor performance 1987-1992.

Regenerates the two SPEC-vs-VAX series and their fitted annual growth
rates; the paper reports ~97 %/year floating point and ~54 %/year
integer.
"""

from repro.machines import FIGURE2_DATA, figure2_growth_rates
from repro.viz import format_table


def test_fig2_growth_rates(benchmark, save_exhibit):
    rates = benchmark(figure2_growth_rates)

    rows = [
        [p.year, p.machine, p.integer, p.floating] for p in FIGURE2_DATA
    ]
    rows.append(["fit", "annual growth", f"{rates['integer']:.0%}", f"{rates['floating']:.0%}"])
    table = format_table(
        ["year", "machine", "integer (xVAX)", "floating (xVAX)"],
        rows,
        title="Figure 2: microprocessor performance over time "
        "(paper: FP ~97 %/yr, int ~54 %/yr)",
    )
    save_exhibit("fig2_micro_trends", table)

    assert abs(rates["floating"] - 0.97) < 0.06
    assert abs(rates["integer"] - 0.54) < 0.06
