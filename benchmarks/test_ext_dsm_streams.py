"""EXT — shared memory costs (Section 3.2) and streamed broadcasts
(Section 3.1), measured on the simulator.

1. The remote-read cost ``2L + 4o`` and the prefetch pipeline: issuing
   reads ahead "can be issued every g cycles and cost 2o units of
   processing time", hiding latency up to the capacity limit.
2. The k-item broadcast structure crossover: the single-item optimal
   tree loses to a pipeline once the stream is long ("in some
   algorithms messages are sent in long streams which are pipelined
   through the network, so that message transmission time is dominated
   by the inter-message gaps").
"""

from repro.core import LogPParams
from repro.algorithms.broadcast import (
    best_pipelined_tree,
    binomial_tree,
    linear_tree,
    optimal_broadcast_tree,
    pipelined_broadcast_program,
    pipelined_tree_time,
)
from repro.sim import (
    AwaitPrefetch,
    Compute,
    Now,
    Prefetch,
    Read,
    run_dsm,
    run_programs,
)
from repro.viz import format_table


def test_ext_dsm_prefetch_pipeline(benchmark, save_exhibit):
    p = LogPParams(L=6, o=2, g=4, P=2)
    n_reads = 8

    def blocking(rank, P):
        if rank == 0:
            t0 = yield Now()
            acc = 0
            for i in range(8, 8 + n_reads):
                acc += (yield Read(i))
            t1 = yield Now()
            return t1 - t0
        return None
        yield

    def prefetched(rank, P):
        if rank == 0:
            t0 = yield Now()
            hs = []
            for i in range(8, 8 + n_reads):
                hs.append((yield Prefetch(i)))
            acc = 0
            for h in hs:
                acc += (yield AwaitPrefetch(h))
            t1 = yield Now()
            return t1 - t0
        return None
        yield

    def run_both():
        data = list(range(16))
        return (
            run_dsm(p, blocking, data).values[0],
            run_dsm(p, prefetched, data).values[0],
        )

    t_block, t_pref = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["strategy", f"cycles for {n_reads} remote reads", "per read"],
        [
            ["blocking (2L+4o each)", t_block, t_block / n_reads],
            ["prefetch pipeline", t_pref, t_pref / n_reads],
            ["model: one round trip", p.remote_read(), "-"],
        ],
        floatfmt=".4g",
        title="Section 3.2: shared-memory reads on LogP — prefetching "
        "pipelines the round trips",
    )
    save_exhibit("ext_dsm_prefetch", table)
    assert t_block == n_reads * p.remote_read()
    assert t_pref < 0.5 * t_block


def test_ext_stream_broadcast_crossover(benchmark, save_exhibit):
    p = LogPParams(L=6, o=2, g=4, P=16)
    trees = {
        "optimal-single": optimal_broadcast_tree(p).children,
        "binomial": binomial_tree(16),
        "chain": linear_tree(16),
    }

    def sweep():
        rows = []
        for k in (1, 2, 8, 32, 128):
            preds = {
                name: pipelined_tree_time(p, ch, k)
                for name, ch in trees.items()
            }
            sim = run_programs(
                p,
                pipelined_broadcast_program(
                    trees[best_pipelined_tree(p, k)[0]], list(range(k))
                ),
            ).makespan
            rows.append(
                [k, preds["optimal-single"], preds["binomial"],
                 preds["chain"], best_pipelined_tree(p, k)[0], sim]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["items k", "optimal-single", "binomial", "chain",
         "best structure", "best simulated"],
        rows,
        floatfmt=".5g",
        title="Section 3.1: k-item broadcast (P=16, L=6 o=2 g=4) — the "
        "right tree depends on the stream length",
    )
    save_exhibit("ext_stream_broadcast", table)
    assert rows[0][4] == "optimal-single"
    assert rows[-1][4] == "chain"
    for row in rows:
        # The chosen structure's simulation matches its prediction.
        predicted = {"optimal-single": row[1], "binomial": row[2],
                     "chain": row[3]}[row[4]]
        assert row[5] == predicted
