"""Shared memory on LogP, long messages, and per-pattern gaps.

Three shorter studies rounding out the model's reach:

1. **Shared memory** (Section 3.2): remote reads cost exactly
   ``2L + 4o``; prefetching hides that latency behind computation up to
   the capacity limit of ``L/g`` outstanding requests.
2. **Long messages** (Section 5.4): one bulk message vs per-word sends —
   the network-processor extension in action.
3. **Streams** (Section 3.1): broadcasting many items flips the optimal
   structure from the bushy single-item tree to a pipeline.

Run:  python examples/shared_memory_and_extensions.py
"""

import numpy as np

from repro.core import LogGPParams, LogPParams, long_message_time, pipelined_stream_exact
from repro.algorithms.broadcast import (
    best_pipelined_tree,
    binomial_tree,
    linear_tree,
    optimal_broadcast_tree,
    pipelined_tree_time,
)
from repro.sim import (
    AwaitPrefetch,
    Compute,
    Now,
    Prefetch,
    Read,
    run_dsm,
)
from repro.viz import format_table


def shared_memory_study() -> None:
    p = LogPParams(L=6, o=2, g=4, P=2)

    def eager(rank, P):
        """Read 8 remote values one blocking read at a time."""
        if rank == 0:
            t0 = yield Now()
            total = 0
            for i in range(8, 16):
                total += (yield Read(i))
                yield Compute(5)
            t1 = yield Now()
            return t1 - t0
        return None
        yield

    def prefetching(rank, P):
        """Issue all prefetches up front, then compute, then consume."""
        if rank == 0:
            t0 = yield Now()
            handles = []
            for i in range(8, 16):
                handles.append((yield Prefetch(i)))
            total = 0
            for h in handles:
                total += (yield AwaitPrefetch(h))
                yield Compute(5)
            t1 = yield Now()
            return t1 - t0
        return None
        yield

    data = list(range(16))
    t_eager = run_dsm(p, eager, data).values[0]
    t_pref = run_dsm(p, prefetching, data).values[0]
    print(
        format_table(
            ["strategy", "cycles for 8 remote reads + compute"],
            [
                ["blocking reads (2L+4o each)", t_eager],
                ["prefetch pipeline (2o issue each)", t_pref],
            ],
            title="Section 3.2: shared-memory reads on LogP (L=6 o=2 g=4)",
        )
    )
    print()


def long_message_study() -> None:
    gp = LogGPParams(L=6, o=2, g=4, G=0.5, P=2)
    rows = [
        [k, pipelined_stream_exact(gp, k), long_message_time(gp, k)]
        for k in (1, 8, 64, 512)
    ]
    print(
        format_table(
            ["words", "k small messages", "one bulk message (G=0.5)"],
            rows,
            floatfmt=".5g",
            title="Section 5.4: the long-message extension",
        )
    )
    print()


def stream_study() -> None:
    p = LogPParams(L=6, o=2, g=4, P=8)
    trees = {
        "optimal-single": optimal_broadcast_tree(p).children,
        "binomial": binomial_tree(8),
        "chain": linear_tree(8),
    }
    rows = []
    for k in (1, 4, 16, 64):
        row = [k] + [
            pipelined_tree_time(p, ch, k) for ch in trees.values()
        ]
        row.append(best_pipelined_tree(p, k)[0])
        rows.append(row)
    print(
        format_table(
            ["items k", *trees.keys(), "best structure"],
            rows,
            floatfmt=".5g",
            title="Section 3.1: streaming k items — the optimal structure "
            "flips from bushy tree to pipeline",
        )
    )


if __name__ == "__main__":
    shared_memory_study()
    long_message_study()
    stream_study()
