"""Writing your own LogP programs for the simulator.

A tour of the generator-based program API: point-to-point messages,
collectives, polling, barriers — ending with a small iterative stencil
(nearest-neighbour averaging on a ring) that demonstrates the paper's
surface-to-volume observation: with enough data per processor, the
communication share of a local, regular computation vanishes
(Section 6.4).

Run:  python examples/writing_programs.py
"""

import numpy as np

from repro.core import Activity, LogPParams
from repro.sim import (
    Compute,
    Now,
    Recv,
    Send,
    all_reduce,
    run_programs,
    software_barrier,
)
from repro.viz import format_table


# ----------------------------------------------------------------------
# 1. The basics: a ping-pong.
# ----------------------------------------------------------------------


def ping_pong(rank: int, P: int):
    """Two processors bounce a counter; everyone else idles."""
    if rank == 0:
        yield Send(1, payload=0, tag="pp")
        msg = yield Recv(tag="pp")
        t = yield Now()
        return (msg.payload, t)
    elif rank == 1:
        msg = yield Recv(tag="pp")
        yield Send(0, payload=msg.payload + 1, tag="pp")
    return None


# ----------------------------------------------------------------------
# 2. A ring stencil: compute, exchange halos, repeat.
# ----------------------------------------------------------------------


def stencil_program(chunks, iterations, flop_cost=1.0):
    """Jacobi-style averaging over a 1-D ring of processors.

    Each rank owns a block of cells; every iteration it trades one halo
    cell with each neighbour and then relaxes its block.  Real values
    flow, so the result can be compared with a serial reference.
    """

    def factory(rank: int, P: int):
        def run():
            left, right = (rank - 1) % P, (rank + 1) % P
            u = np.array(chunks[rank], dtype=float)
            for it in range(iterations):
                yield Send(left, payload=float(u[0]), tag=("halo", it, "L"))
                yield Send(right, payload=float(u[-1]), tag=("halo", it, "R"))
                from_right = yield Recv(tag=("halo", it, "L"))
                from_left = yield Recv(tag=("halo", it, "R"))
                padded = np.concatenate(
                    [[from_left.payload], u, [from_right.payload]]
                )
                u = 0.5 * padded[1:-1] + 0.25 * (padded[:-2] + padded[2:])
                yield Compute(flop_cost * len(u), label=f"relax-{it}")
            total = yield from all_reduce(rank, P, float(u.sum()))
            yield from software_barrier(rank, P, tag="done")
            return (u, total)

        return run()

    return factory


def serial_stencil(values, iterations):
    u = np.array(values, dtype=float)
    for _ in range(iterations):
        padded = np.concatenate([[u[-1]], u, [u[0]]])
        u = 0.5 * padded[1:-1] + 0.25 * (padded[:-2] + padded[2:])
    return u


# ----------------------------------------------------------------------


def main() -> None:
    machine = LogPParams(L=6, o=2, g=4, P=8, name="demo")

    # Ping-pong: the round trip costs 2(L + 2o).
    res = run_programs(machine, ping_pong)
    bounced, t = res.value(0)
    print(f"Ping-pong: payload came back as {bounced} at t={t:g} "
          f"(2(L+2o) = {2 * machine.point_to_point():g})\n")

    # Stencil: correctness plus the surface-to-volume effect.
    rng = np.random.default_rng(3)
    rows = []
    for cells_per_proc in (8, 64, 512):
        values = rng.standard_normal(cells_per_proc * machine.P)
        chunks = values.reshape(machine.P, -1)
        res = run_programs(machine, stencil_program(chunks, iterations=5))
        got = np.concatenate([res.value(r)[0] for r in range(machine.P)])
        want = serial_stencil(values, 5)
        assert np.allclose(got, want), "stencil numerics diverged"
        sched = res.schedule
        compute = sched.total_time_in(Activity.COMPUTE)
        overhead = sched.total_time_in(Activity.SEND) + sched.total_time_in(
            Activity.RECV
        )
        rows.append(
            [
                cells_per_proc,
                res.makespan,
                f"{overhead / (overhead + compute):.1%}",
                "yes",
            ]
        )
    print(
        format_table(
            ["cells/processor", "makespan (cycles)",
             "comm overhead share", "matches serial"],
            rows,
            floatfmt=".5g",
            title="Ring stencil, 5 iterations on 8 processors: "
            "'with large enough problem sizes, the cost of "
            "communication becomes trivial' (Section 6.4)",
        )
    )


if __name__ == "__main__":
    main()
