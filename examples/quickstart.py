"""Quickstart: the LogP model in five minutes.

Defines a machine by its four parameters, prices the communication
primitives, builds the paper's optimal broadcast tree (Figure 3), and
executes it on the discrete-event simulator to confirm that analysis and
machine agree to the cycle.

Run:  python examples/quickstart.py
"""

from repro.core import (
    LogPParams,
    point_to_point,
    remote_read,
    pipelined_stream_exact,
)
from repro.algorithms.broadcast import (
    broadcast_program,
    broadcast_schedule,
    optimal_broadcast_tree,
)
from repro.sim import run_programs, validate_schedule
from repro.viz import format_table, render_broadcast_tree, render_gantt


def main() -> None:
    # The machine of the paper's Figure 3: 8 processors, latency 6,
    # overhead 2, gap 4 (all in processor cycles).
    machine = LogPParams(L=6, o=2, g=4, P=8, name="figure-3")
    print(machine)
    print()

    # 1. Primitive costs fall straight out of the parameters.
    print(
        format_table(
            ["primitive", "cost (cycles)"],
            [
                ["one message (L + 2o)", point_to_point(machine)],
                ["remote read (2L + 4o)", remote_read(machine)],
                ["10-message stream", pipelined_stream_exact(machine, 10)],
                ["network capacity ceil(L/g)", machine.capacity],
            ],
            title="Primitive costs",
        )
    )
    print()

    # 2. The optimal broadcast adapts its tree to the parameters.
    tree = optimal_broadcast_tree(machine)
    print("Optimal broadcast tree (node labels are receive times):")
    print(render_broadcast_tree(tree))
    print(f"\nCompletion time: {tree.completion_time:g} cycles "
          "(the paper's Figure 3 says 24)\n")

    # 3. Execute it for real on the simulated machine.
    result = run_programs(machine, broadcast_program(tree, "hello"))
    assert result.makespan == tree.completion_time
    assert set(result.values()) == {"hello"}
    report = validate_schedule(result.schedule, exact_latency=True)
    print(f"Simulated makespan: {result.makespan:g} cycles "
          f"(LogP-semantics check: {'OK' if report.ok else 'VIOLATED'})\n")

    # 4. And look at what every processor was doing, Figure 3 style.
    print(render_gantt(broadcast_schedule(tree), width=72, show_flight=True))


if __name__ == "__main__":
    main()
