"""Exploring the four-dimensional machine space (Section 7).

"In effect, the model defines a four dimensional parameter space of
potential machines ... a machine with large gap g is only effective for
algorithms with a large ratio of computation to communication."

This example sweeps (L, o, g) around a base machine and shows how three
things shift: the optimal broadcast tree's shape, the summation
capacity, and the FFT's communication share — the kind of design
guidance the paper argues the model gives machine architects.

Run:  python examples/machine_design_space.py
"""

from repro.core import LogPParams, fft_comm_time_hybrid, fft_compute_time
from repro.algorithms.broadcast import optimal_broadcast_tree
from repro.algorithms.summation import summation_capacity
from repro.viz import format_table


def describe(p: LogPParams) -> list:
    tree = optimal_broadcast_tree(p)
    n = 2**14
    comm = fft_comm_time_hybrid(p, n)
    comp = fft_compute_time(n, p.P)
    return [
        f"L={p.L:g} o={p.o:g} g={p.g:g}",
        tree.completion_time,
        tree.fanout(0),
        tree.depth(),
        p.capacity,
        summation_capacity(p, 64),
        f"{comm / (comm + comp):.1%}",
    ]


def main() -> None:
    base = LogPParams(L=8, o=2, g=4, P=32)

    variants = [
        base,
        # Latency: what if the network were 4x slower end to end?
        LogPParams(L=32, o=2, g=4, P=32),
        # Overhead: what the paper hopes architectures will fix.
        LogPParams(L=8, o=0, g=4, P=32),
        LogPParams(L=8, o=8, g=4, P=32),
        # Bandwidth: a starved network vs a fat one.
        LogPParams(L=8, o=2, g=16, P=32),
        LogPParams(L=8, o=2, g=1, P=32),
    ]

    rows = [describe(p) for p in variants]
    print(
        format_table(
            [
                "machine (P=32)",
                "bcast time",
                "root fanout",
                "tree depth",
                "capacity L/g",
                "C_sum(T=64)",
                "FFT comm share (n=16K)",
            ],
            rows,
            floatfmt=".4g",
            title="How the optimal algorithms reshape across the "
            "(L, o, g) design space",
        )
    )
    print()
    print("Readings:")
    print(" - Raising L flattens the broadcast tree (relays can't help)")
    print("   and inflates every capacity figure's pipeline depth.")
    print(" - o is pure poison: it taxes both ends of every message;")
    print("   the o=0 row shows what the paper hopes hardware delivers.")
    print(" - Raising g starves bandwidth: deep chains beat wide trees,")
    print("   the summation capacity collapses toward serial, and the")
    print("   FFT's remap share grows toward the compute share.")


if __name__ == "__main__":
    main()
