"""The Section 4.1 FFT case study, end to end, on the simulated CM-5.

Walks through every step of the paper's argument:

1. data placement — remote-reference counts per butterfly column under
   the cyclic, blocked and hybrid layouts (Figure 5);
2. communication schedule — the naive destination order vs the
   staggered, contention-free one (Figure 6's gap);
3. the quantitative CM-5 prediction — remap rate bounded by
   max(1us + 2o, g) per point (Figure 8's 3.2 MB/s asymptote);
4. numerics — the whole distributed hybrid FFT executed with real
   complex data on the simulator, verified against numpy.

Run:  python examples/fft_cm5_study.py
"""

import math

import numpy as np

from repro.algorithms.fft import (
    remote_reference_profile,
    run_distributed_fft,
    simulate_remap,
)
from repro.machines import cm5
from repro.viz import format_table


def main() -> None:
    machine = cm5(P=16)
    params = machine.params_us()
    cal = machine.calibration
    print(f"Simulated CM-5: {params}  (1 cycle = 1 us here)")
    print(f"Calibration: o={cal.o_us}us L={cal.L_us}us g={cal.g_us}us, "
          f"{cal.cycle_us}us per 10-flop butterfly\n")

    # --- 1. Layouts (Figure 5) -------------------------------------
    n_small = 256
    rows = []
    for layout in ("cyclic", "blocked", "hybrid"):
        prof = remote_reference_profile(n_small, 16, layout)
        remote_cols = sum(1 for c in prof if c.remote_nodes)
        rows.append([layout, remote_cols, sum(c.remote_nodes for c in prof)])
    print(
        format_table(
            ["layout", "remote columns", "remote references"],
            rows,
            title=f"Butterfly locality, n={n_small}, P=16 (Figure 5): the "
            "hybrid layout trades log P exchange phases for one remap",
        )
    )
    print()

    # --- 2 & 3. Remap schedules and rates (Figures 6, 8) -----------
    n = 2**14
    stag = simulate_remap(params, n, "staggered", point_cost=cal.point_us)
    naive = simulate_remap(params, n, "naive", point_cost=cal.point_us)
    predicted = cal.bytes_per_point / cal.predicted_remap_us_per_point()
    print(
        format_table(
            ["schedule", "time (ms)", "MB/s per proc", "stall time (ms)"],
            [
                ["predicted bound", n / 16 * 5 / 1000, predicted, 0],
                ["staggered", stag.makespan / 1000,
                 stag.rate(cal.bytes_per_point, 1e-6) / 1e6,
                 stag.total_stall / 1000],
                ["naive", naive.makespan / 1000,
                 naive.rate(cal.bytes_per_point, 1e-6) / 1e6,
                 naive.total_stall / 1000],
            ],
            floatfmt=".3g",
            title=f"Remapping {n} points across 16 processors "
            "(Figures 6 and 8)",
        )
    )
    compute_ms = (n / 16) * math.log2(n) * cal.cycle_us / 1000
    print(f"\n(for scale: the two compute phases take {compute_ms:.1f} ms)\n")

    # --- 4. The real transform, distributed ------------------------
    rng = np.random.default_rng(0)
    x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    small = cm5(P=4).params_us()
    out, res = run_distributed_fft(small, x, cost_per_node=cal.cycle_us)
    ok = np.allclose(out, np.fft.fft(x))
    print(f"Distributed 256-point FFT on 4 simulated processors: "
          f"numerics {'match numpy.fft' if ok else 'WRONG'}; "
          f"makespan {res.makespan:.0f} us, {res.total_messages} messages.")


if __name__ == "__main__":
    main()
